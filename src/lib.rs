//! # pkgm — Pre-trained E-commerce Product Knowledge Graph Model
//!
//! A from-scratch Rust reproduction of *"Billion-scale Pre-trained
//! E-commerce Product Knowledge Graph Model"* (Zhang et al., ICDE 2021).
//!
//! PKGM pre-trains a product knowledge graph with two modules — a TransE
//! triple-query module (`f_T = ‖h + r − t‖₁`) and a relation-query module
//! (`f_R = ‖M_r·h − r‖₁`) — and then serves *knowledge service vectors*
//! (`S_T = h + r`, `S_R = M_r·h − r`) to downstream models, which consume
//! them instead of raw triples. Because `S_T` is defined whether or not the
//! triple exists, the service completes the KG while serving.
//!
//! ## Quickstart
//!
//! ```
//! use pkgm::prelude::*;
//!
//! // 1. A product catalog (synthetic stand-in for the proprietary PKG).
//! let catalog = Catalog::generate(&CatalogConfig::tiny(7));
//!
//! // 2. Pre-train PKGM on its triples.
//! let service = pkgm::pretrain(
//!     &catalog,
//!     PkgmConfig::new(16).with_seed(7),
//!     TrainConfig { epochs: 3, parallel: false, ..TrainConfig::default() },
//!     3, // k key relations per category
//! );
//!
//! // 3. Query knowledge in vector space — no triple access.
//! let item = EntityId(0);
//! let seq = service.sequence_service(item);     // 2k vectors for Fig.-2 models
//! let one = service.condensed_service(item);    // single 2d vector for Fig.-3 models
//! assert_eq!(seq.len(), 2 * service.k());
//! assert_eq!(one.len(), 2 * service.dim());
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`store`] | `pkgm-store` | triple store, interning, key-relation selection |
//! | [`tensor`] | `pkgm-tensor` | autodiff engine, optimizers |
//! | [`synth`] | `pkgm-synth` | synthetic catalog / tasks data (proprietary-data substitute) |
//! | [`core`] | `pkgm-core` | PKGM model, trainer, evaluation, serving |
//! | [`text`] | `pkgm-text` | Transformer text encoder (BERT substitute) |
//! | [`tasks`] | `pkgm-tasks` | item classification, alignment, recommendation |

pub use pkgm_core as core;
pub use pkgm_store as store;
pub use pkgm_synth as synth;
pub use pkgm_tasks as tasks;
pub use pkgm_tensor as tensor;
pub use pkgm_text as text;

use pkgm_core::{KnowledgeService, PkgmConfig, PkgmModel, TrainConfig, Trainer};
use pkgm_synth::Catalog;

/// Pre-train PKGM on a catalog's knowledge graph and bundle it with the
/// catalog's key-relation selector into a ready-to-serve
/// [`KnowledgeService`].
///
/// This is the "pre-training stage" of the paper condensed into one call;
/// use [`Trainer`] directly for epoch-level control.
pub fn pretrain(
    catalog: &Catalog,
    model_cfg: PkgmConfig,
    train_cfg: TrainConfig,
    k: usize,
) -> KnowledgeService {
    let mut model = PkgmModel::new(
        catalog.store.n_entities() as usize,
        catalog.store.n_relations() as usize,
        model_cfg,
    );
    let mut trainer = Trainer::new(&model, train_cfg);
    trainer.train(&mut model, &catalog.store);
    KnowledgeService::new(model, catalog.key_relation_selector(k))
}

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::pretrain;
    pub use pkgm_core::{
        CachedService, KnowledgeService, NegativeSampler, PkgmConfig, PkgmModel, ServiceScratch,
        ServiceSnapshot, TrainConfig, Trainer,
    };
    pub use pkgm_store::{EntityId, KgStats, RelationId, Triple, TripleStore};
    pub use pkgm_synth::{
        AlignmentDataset, Catalog, CatalogConfig, ClassificationDataset, InteractionConfig,
        InteractionData,
    };
    pub use pkgm_tasks::{
        AlignmentModel, AlignmentTrainConfig, ClassifierTrainConfig, ItemClassifier, NcfModel,
        NcfTrainConfig, PkgmVariant,
    };
    pub use pkgm_text::{EncoderConfig, TextEncoder, Vocab};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pretrain_helper_produces_working_service() {
        let catalog = Catalog::generate(&CatalogConfig::tiny(3));
        let service = crate::pretrain(
            &catalog,
            PkgmConfig::new(8).with_seed(3),
            TrainConfig {
                epochs: 2,
                batch_size: 128,
                lr: 0.05,
                parallel: false,
                ..TrainConfig::default()
            },
            3,
        );
        assert_eq!(service.k(), 3);
        assert_eq!(service.dim(), 8);
        let seq = service.sequence_service(EntityId(0));
        assert_eq!(seq.len(), 6);
    }
}

//! Item recommendation (paper §III-D): NCF vs NCF_PKGM-T/R/all with
//! leave-one-out HR@k / NDCG@k.
//!
//! ```sh
//! cargo run --release --example recommendation
//! ```

use pkgm::prelude::*;

fn main() {
    let catalog = Catalog::generate(&CatalogConfig::small(21));
    let icfg = InteractionConfig {
        n_users: 600,
        ..InteractionConfig::bench(21)
    };
    let data = InteractionData::generate(&catalog, &icfg);
    println!(
        "Interactions: {} users × {} items, {} interactions (≥10 per user, leave-one-out)",
        data.n_users,
        data.n_items,
        data.n_interactions()
    );

    println!("Pre-training PKGM…");
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(32).with_seed(21),
        TrainConfig {
            epochs: 6,
            lr: 5e-3,
            margin: 4.0,
            ..TrainConfig::default()
        },
        10,
    );

    let cfg = NcfTrainConfig {
        epochs: 15,
        lr: 3e-3,
        ..NcfTrainConfig::default()
    };
    let ks = [1, 3, 5, 10, 30];

    println!("\n| Model | HR@1 | HR@3 | HR@5 | HR@10 | HR@30 | NDCG@10 |");
    println!("|---|---|---|---|---|---|---|");
    for variant in PkgmVariant::ALL {
        let model = NcfModel::train(
            &data,
            variant.uses_service().then_some(&service),
            variant,
            &cfg,
        );
        let m = model.evaluate(&data, &data.test, &ks, 100, 5);
        print!("| {} ", variant.label("NCF"));
        for k in ks {
            print!("| {:.2} ", m.hr_at(k).unwrap());
        }
        println!("| {:.4} |", m.ndcg_at(10).unwrap());
    }
}

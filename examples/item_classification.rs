//! Item classification (paper §III-B): BERT-substitute encoder, Base vs the
//! three PKGM variants, on a low-data synthetic classification set.
//!
//! ```sh
//! cargo run --release --example item_classification
//! ```

use pkgm::prelude::*;
use pkgm::synth::ClassificationDataset;

fn main() {
    let catalog = Catalog::generate(&CatalogConfig::small(7));
    // The paper caps each category at < 100 labeled items, stressing the
    // low-data regime where pre-trained knowledge helps most.
    let dataset = ClassificationDataset::build(&catalog, 100, 7);
    println!(
        "Classification: {} classes | train {} / test {} / dev {}",
        dataset.n_classes,
        dataset.train.len(),
        dataset.test.len(),
        dataset.dev.len()
    );

    println!("Pre-training PKGM…");
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(64).with_seed(7),
        TrainConfig {
            epochs: 6,
            lr: 5e-3,
            margin: 4.0,
            ..TrainConfig::default()
        },
        10,
    );

    let cfg = ClassifierTrainConfig {
        epochs: 3,
        batch_size: 32,
        lr: 1e-3,
        max_len: 48,
        seed: 7,
        encoder: None, // EncoderConfig::small → hidden 64, matching d
    };

    println!("\n| Model | Hit@1 | Hit@3 | Hit@10 | AC |");
    println!("|---|---|---|---|---|");
    for variant in PkgmVariant::ALL {
        let svc = variant.uses_service().then(|| service.clone());
        let model = ItemClassifier::train(&dataset, svc, variant, &cfg);
        let m = model.evaluate(&dataset.dev);
        println!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            variant.label("BERT"),
            m.hit1,
            m.hit3,
            m.hit10,
            m.accuracy
        );
    }
}

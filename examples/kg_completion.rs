//! Knowledge-graph completion: PKGM's triple module vs TransE / TransH /
//! DistMult baselines on held-out facts, plus the relation module's
//! existence AUC — the two capabilities §II-D claims for serving time.
//!
//! ```sh
//! cargo run --release --example kg_completion
//! ```

use pkgm::core::baselines::{DistMult, KgeBaseline, TransH};
use pkgm::core::eval;
use pkgm::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let catalog = Catalog::generate(&CatalogConfig::small(13));
    let test: Vec<Triple> = catalog.heldout.iter().copied().take(300).collect();
    println!(
        "KG: {} triples; evaluating completion on {} held-out facts\n",
        catalog.store.len(),
        test.len()
    );
    let ks = [1, 3, 10];

    // --- PKGM (joint objective) -----------------------------------------
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(32).with_seed(13),
        TrainConfig {
            epochs: 8,
            lr: 5e-3,
            margin: 4.0,
            ..TrainConfig::default()
        },
        10,
    );
    let pkgm_report = eval::rank_tails(service.model(), &test, Some(&catalog.store), &ks)
        .expect("held-out facts come from the catalog's entity/relation space");

    // --- TransE ablation (triple module only) ----------------------------
    let mut transe = PkgmModel::new(
        catalog.store.n_entities() as usize,
        catalog.store.n_relations() as usize,
        PkgmConfig::transe(32).with_seed(13),
    );
    Trainer::new(
        &transe,
        TrainConfig {
            epochs: 8,
            lr: 5e-3,
            margin: 4.0,
            ..TrainConfig::default()
        },
    )
    .train(&mut transe, &catalog.store);
    let transe_report = eval::rank_tails(&transe, &test, Some(&catalog.store), &ks)
        .expect("held-out facts come from the catalog's entity/relation space");

    // --- TransH / DistMult baselines -------------------------------------
    let mut rng = SmallRng::seed_from_u64(13);
    let sampler = NegativeSampler::new(&catalog.store).with_relation_prob(0.0);
    let ne = catalog.store.n_entities() as usize;
    let nr = catalog.store.n_relations() as usize;

    let mut transh = TransH::new(ne, nr, 32, 13);
    for _ in 0..10 {
        transh.train_epoch(&catalog.store, &sampler, 4.0, 0.01, &mut rng);
    }
    let transh_report = transh.rank_tails(&test, Some(&catalog.store), &ks);

    // DistMult wants a small margin and larger SGD steps.
    let mut distmult = DistMult::new(ne, nr, 32, 13);
    for _ in 0..20 {
        distmult.train_epoch(&catalog.store, &sampler, 1.0, 0.05, &mut rng);
    }
    let distmult_report = distmult.rank_tails(&test, Some(&catalog.store), &ks);

    println!("| Model | MRR | Hits@1 | Hits@3 | Hits@10 | MeanRank |");
    println!("|---|---|---|---|---|---|");
    for (name, r) in [
        ("PKGM (joint)", &pkgm_report),
        ("TransE (ablation)", &transe_report),
        ("TransH", &transh_report),
        ("DistMult", &distmult_report),
    ] {
        println!(
            "| {name} | {:.3} | {:.1}% | {:.1}% | {:.1}% | {:.1} |",
            r.mrr,
            r.hits_at(1).unwrap() * 100.0,
            r.hits_at(3).unwrap() * 100.0,
            r.hits_at(10).unwrap() * 100.0,
            r.mean_rank
        );
    }

    // --- Relation-existence AUC (relation module) -------------------------
    let mut rng = SmallRng::seed_from_u64(99);
    let auc = eval::relation_existence_auc(service.model(), &catalog.store, 2000, &mut rng);
    println!(
        "\nRelation module: existence AUC {:.3} (mean f_R: has {:.2} vs lacks {:.2})",
        auc.auc, auc.mean_pos_score, auc.mean_neg_score
    );
}

//! Quickstart: generate a product catalog, pre-train PKGM, and query the two
//! knowledge services — including completion of a held-out fact.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pkgm::prelude::*;

fn main() {
    // A small synthetic product world: categories, products, items, and an
    // incomplete knowledge graph (some true facts are held out).
    let cfg = CatalogConfig::small(42);
    let catalog = Catalog::generate(&cfg);
    let stats = KgStats::of(&catalog.store);
    println!(
        "Catalog: {} items, {} entities, {} relations, {} triples",
        stats.n_items, stats.n_entities, stats.n_relations, stats.n_triples
    );
    println!(
        "Held-out (true but missing) facts: {}",
        catalog.heldout.len()
    );

    // Pre-train the two PKGM modules with the margin loss.
    println!("\nPre-training PKGM (d = 32)…");
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(32).with_seed(42),
        TrainConfig {
            epochs: 8,
            lr: 5e-3,
            margin: 4.0,
            ..TrainConfig::default()
        },
        10, // k = 10 key relations per category, as in the paper
    );

    // --- Triple-query service: S_T(h, r) = h + r -----------------------
    let item = catalog.items[0].entity;
    let rel = catalog.store.relations_of(item)[0];
    let known_tail = catalog.store.tails(item, rel)[0];
    let predictions = service.predict_tail(item, rel, 5);
    println!("\nTriple query S_T({item}, {rel}): top-5 candidate tails");
    for (e, dist) in &predictions {
        let name = catalog.entities.name(e.0).unwrap_or("?");
        let marker = if *e == known_tail {
            "  ← true tail"
        } else {
            ""
        };
        println!("  {name:<28} L1 distance {dist:.3}{marker}");
    }

    // --- Completion during serving --------------------------------------
    // Rank the true tail of each held-out fact (absent from the KG!).
    let sample: Vec<Triple> = catalog.heldout.iter().copied().take(200).collect();
    let report =
        pkgm::core::eval::rank_tails(service.model(), &sample, Some(&catalog.store), &[1, 10])
            .expect("held-out facts come from the catalog's entity/relation space");
    println!(
        "\nCompletion of {} held-out facts: MRR {:.3}, Hits@1 {:.1}%, Hits@10 {:.1}%",
        report.n,
        report.mrr,
        report.hits_at(1).unwrap() * 100.0,
        report.hits_at(10).unwrap() * 100.0
    );

    // --- Relation-query service: S_R(h, r) = M_r·h − r ------------------
    // Compare a relation the item has against one that is *inapplicable* —
    // a category-specific property of a different category. (A relation the
    // item merely lost to KG incompleteness would rightly still score low:
    // that is the paper's "should have" completion case.)
    let mut f_has = 0.0f64;
    let mut f_inapplicable = 0.0f64;
    let mut n_rel = 0;
    for meta in catalog.items.iter().take(500) {
        let rels = catalog.store.relations_of(meta.entity);
        if rels.is_empty() {
            continue;
        }
        let other_cat = (meta.category + 1) % catalog.n_categories as u32;
        let inapplicable = RelationId(catalog.category_props(other_cat)[cfg.n_shared_props] as u32);
        f_has += service.relation_exists_score(meta.entity, rels[0]) as f64;
        f_inapplicable += service.relation_exists_score(meta.entity, inapplicable) as f64;
        n_rel += 1;
    }
    println!(
        "\nRelation query f_R over {n_rel} items: mean ‖S_R(·, has)‖₁ = {:.3}  vs  mean ‖S_R(·, inapplicable)‖₁ = {:.3}  (smaller = EXISTS)",
        f_has / n_rel as f64,
        f_inapplicable / n_rel as f64,
    );

    // --- The two downstream-facing shapes --------------------------------
    let seq = service.sequence_service(item);
    let one = service.condensed_service(item);
    println!(
        "\nService shapes: sequence = {}×{} vectors (Fig. 2), condensed = {} dims (Fig. 3)",
        seq.len(),
        service.dim(),
        one.len()
    );
}

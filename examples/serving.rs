//! Deployment-style serving: snapshot a trained service, reload it, fan out
//! cached vector queries from many threads, and contrast with the symbolic
//! pattern-query path the vectors replace.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use pkgm::core::{serialize, CachedService};
use pkgm::prelude::*;
use pkgm::store::query::{Pattern, Term};
use rayon::prelude::*;

fn main() {
    let catalog = Catalog::generate(&CatalogConfig::small(77));
    println!("Pre-training PKGM…");
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(32).with_seed(77),
        TrainConfig {
            epochs: 5,
            lr: 5e-3,
            margin: 4.0,
            ..TrainConfig::default()
        },
        10,
    );

    // --- Snapshot round-trip (what a model registry would store) --------
    let bytes = serialize::service_to_bytes(&service);
    println!(
        "Snapshot: {:.1} MiB for {} entities × d={} (+ {} transfer matrices)",
        bytes.len() as f64 / (1024.0 * 1024.0),
        service.model().n_entities(),
        service.dim(),
        service.model().n_relations(),
    );
    let service = serialize::service_from_bytes(&bytes).expect("reload");

    // --- Cached fan-out --------------------------------------------------
    let cached = CachedService::new(service, 8192);
    let start = std::time::Instant::now();
    let hot_items: Vec<u32> = (0..200u32).collect();
    // Simulate three downstream consumers sweeping the same hot items.
    let total_vectors: usize = (0..3u32)
        .into_par_iter()
        .map(|_| {
            hot_items
                .par_iter()
                .map(|&i| cached.sequence_service(EntityId(i)).len())
                .sum::<usize>()
        })
        .sum();
    let stats = cached.stats();
    println!(
        "Served {total_vectors} vectors in {:.1} ms — cache: {} hits / {} misses",
        start.elapsed().as_secs_f64() * 1000.0,
        stats.hits,
        stats.misses,
    );

    // --- The symbolic path the vectors replace ---------------------------
    // "Which other items share item 0's brand AND color?" as a conjunctive
    // pattern query (what a downstream team ran before PKGM):
    let item0 = EntityId(0);
    let brand = catalog.store.relations_of(item0)[0];
    let color = catalog.store.relations_of(item0)[1];
    let brand_val = catalog.store.tails(item0, brand)[0];
    let color_val = catalog.store.tails(item0, color)[0];
    let matches = pkgm::store::query::solve(
        &catalog.store,
        &[
            Pattern::new(Term::Var(0), Term::rel(brand.0), Term::ent(brand_val.0)),
            Pattern::new(Term::Var(0), Term::rel(color.0), Term::ent(color_val.0)),
        ],
    );
    println!(
        "Symbolic query: {} items share item 0's {} and {}",
        matches.len(),
        catalog.relations.name(brand.0).unwrap_or("?"),
        catalog.relations.name(color.0).unwrap_or("?"),
    );
    println!(
        "Vector path: those items' condensed services are nearest neighbours of item 0's \
         — and it also answers for items whose brand/color triples are missing."
    );
}

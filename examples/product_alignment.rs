//! Product alignment (paper §III-C): sentence-pair model, Base vs PKGM-all,
//! accuracy + Hit@k over 100 candidates.
//!
//! ```sh
//! cargo run --release --example product_alignment
//! ```

use pkgm::prelude::*;

fn main() {
    let catalog = Catalog::generate(&CatalogConfig::small(31));
    println!("Pre-training PKGM…");
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(64).with_seed(31),
        TrainConfig {
            epochs: 6,
            lr: 5e-3,
            margin: 4.0,
            ..TrainConfig::default()
        },
        10,
    );

    let cfg = AlignmentTrainConfig {
        epochs: 4,
        batch_size: 32,
        lr: 1e-3,
        per_side: 24,
        seed: 31,
        encoder: None, // small encoder, hidden 64 = d
    };

    // Three per-category datasets, as in Table V.
    println!("\n| Dataset | Model | Hit@1 | Hit@3 | Hit@10 | AC |");
    println!("|---|---|---|---|---|---|");
    for (i, category) in [0u32, 1, 2].into_iter().enumerate() {
        let dataset = AlignmentDataset::build(&catalog, category, 31);
        for variant in [PkgmVariant::Base, PkgmVariant::PkgmAll] {
            let svc = variant.uses_service().then(|| service.clone());
            let model = AlignmentModel::train(&catalog, &dataset, svc, variant, &cfg);
            let m = model.evaluate(&catalog, &dataset, 99);
            println!(
                "| category-{} | {} | {:.2} | {:.2} | {:.2} | {:.2} |",
                i + 1,
                variant.label("BERT"),
                m.hit1,
                m.hit3,
                m.hit10,
                m.accuracy
            );
        }
    }
}

//! Offline vendored stand-in for `parking_lot` (see `vendor/rand` for why).
//!
//! Wraps `std::sync` primitives behind parking_lot's Result-free API:
//! `lock()` / `read()` / `write()` return guards directly, recovering the
//! inner data if a previous holder panicked (parking_lot has no poisoning).
//! The perf characteristics are std's, not parking_lot's, which is fine
//! here: the serving hot path is lock-free reads on sharded `RwLock`s, so
//! the primitive's uncontended fast-path cost is what matters and std's
//! futex-based locks are comparable.

use std::sync::{self, TryLockError};

/// Mutual exclusion lock; `lock` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader–writer lock; `read` / `write` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader–writer lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(r1.len() + r2.len(), 6);
        drop((r1, r2));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}

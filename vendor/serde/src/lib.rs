//! Offline vendored stand-in for `serde` (see `vendor/rand` for why).
//!
//! Instead of serde's visitor architecture, this stub round-trips through a
//! JSON-shaped [`Value`] tree: [`Serialize`] renders a type into a `Value`,
//! [`Deserialize`] rebuilds it from one. `vendor/serde_json` handles the
//! text encoding. This covers the workspace's uses (config round-trips, the
//! key-relation selector inside model files, CLI metadata) at the cost of
//! an intermediate tree — acceptable for the small payloads involved.
//!
//! Numbers are stored as `f64`, so integers above 2^53 would lose
//! precision; the workspace only serializes seeds, dimensions, counts and
//! metrics, all far below that.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (see module docs for the `f64` precision caveat).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered, no duplicate-key handling.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Construct from a message.
    pub fn new(msg: String) -> Self {
        Self(msg)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render into a value tree.
    fn to_json_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

/// Look up `name` in an object and deserialize it; missing fields read as
/// `Null` (so `Option` fields default to `None` and everything else reports
/// a typed error naming the field). Used by derived `Deserialize` impls.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let field = match v {
        Value::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, x)| x)
            .unwrap_or(&Value::Null),
        _ => return Err(Error(format!("expected an object with field `{name}`"))),
    };
    T::from_json_value(field).map_err(|e| Error(format!("field `{name}`: {e}")))
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error("expected a boolean".into()))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error("expected a string".into()))
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let x = v
                    .as_f64()
                    .ok_or_else(|| Error(concat!("expected a ", stringify!($t)).into()))?;
                if x.fract() != 0.0 || x < <$t>::MIN as f64 || x > <$t>::MAX as f64 {
                    return Err(Error(format!(
                        concat!("number {} is not a valid ", stringify!($t)),
                        x
                    )));
                }
                Ok(x as $t)
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error(concat!("expected a ", stringify!($t)).into()))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error("expected an array".into()))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error("expected an array".into()))?;
                if items.len() != $len {
                    return Err(Error(format!(
                        "expected a {}-element array, got {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_json_value(&42u32.to_json_value()).unwrap(), 42);
        assert_eq!(f32::from_json_value(&1.5f32.to_json_value()).unwrap(), 1.5);
        assert!(u32::from_json_value(&Value::Number(-1.0)).is_err());
        assert!(u32::from_json_value(&Value::Number(0.5)).is_err());
        assert_eq!(
            <(usize, f64)>::from_json_value(&(3usize, 0.25f64).to_json_value()).unwrap(),
            (3, 0.25)
        );
    }

    #[test]
    fn option_and_missing_fields() {
        let obj = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(de_field::<u32>(&obj, "a").unwrap(), 1);
        assert_eq!(de_field::<Option<u32>>(&obj, "absent").unwrap(), None);
        assert!(de_field::<u32>(&obj, "absent").is_err());
    }

    #[test]
    fn u32_max_is_exact() {
        // The NO_CATEGORY sentinel (u32::MAX) must survive the f64 detour.
        let v = u32::MAX.to_json_value();
        assert_eq!(u32::from_json_value(&v).unwrap(), u32::MAX);
    }
}

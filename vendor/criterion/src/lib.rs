//! Offline vendored stand-in for `criterion` (see `vendor/rand` for why).
//!
//! A minimal wall-clock harness behind criterion's surface: calibrated
//! iteration counts, a handful of timed samples, and a one-line
//! median/min/max report per benchmark. No statistical regression analysis
//! or HTML reports — CI uses this as a smoke check that hot paths run and
//! how fast, not as an A/B detector.
//!
//! The `CRITERION_SAMPLE_MILLIS` environment variable bounds the measured
//! time per sample (default 10ms), so full bench runs stay fast in CI.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub times each routine
/// call individually, so the variants only affect drop timing (all are
/// treated alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every call, dropped outside the timing window.
    PerIteration,
}

/// Benchmark harness configuration and registry.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Apply CLI arguments: the first non-flag argument is a substring
    /// filter on benchmark names (flags like `--bench` from cargo are
    /// ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--bench" || arg == "--test" {
                continue;
            }
            if let Some(flag) = arg.strip_prefix("--") {
                // Consume `--flag value` pairs (e.g. --save-baseline x).
                if !flag.contains('=') {
                    args.next();
                }
                continue;
            }
            if self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &b.samples);
        self
    }
}

fn sample_budget() -> Duration {
    let millis = std::env::var("CRITERION_SAMPLE_MILLIS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(10);
    Duration::from_millis(millis)
}

fn report(name: &str, samples: &[f64]) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    println!(
        "{name:<45} time: [{} {} {}]",
        fmt_ns(sorted[0]),
        fmt_ns(median),
        fmt_ns(*sorted.last().expect("non-empty samples")),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Mean ns-per-iteration of each timed sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmark `routine`, timing batches of calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many calls fit in the per-sample budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = sample_budget();
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`; setup time is kept
    /// outside the timing window.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = sample_budget();
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                let out = black_box(routine(input));
                total += start.elapsed();
                drop(out);
            }
            self.samples.push(total.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Declare a benchmark group function (both the positional and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        std::env::set_var("CRITERION_SAMPLE_MILLIS", "1");
        let mut c = Criterion::default().sample_size(3);
        let mut x = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| x = x.wrapping_add(1)));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("match-me".into()),
        };
        c.bench_function("other/bench", |_b| {
            panic!("filtered benchmark must not run");
        });
    }

    #[test]
    fn format_scales() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5e4).ends_with("µs"));
        assert!(fmt_ns(5e7).ends_with("ms"));
        assert!(fmt_ns(5e10).ends_with('s'));
    }
}

//! Offline vendored stand-in for `serde_json` (see `vendor/rand` for why).
//!
//! Text encoding for the vendored `serde` [`Value`] tree: a recursive-
//! descent parser, compact and pretty writers, and the [`json!`] literal
//! macro (object/array literals with expression values — the subset the
//! CLI uses).

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Render any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_json_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialize to a human-readable JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_json_value(&v)
}

/// Deserialize from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::new(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] literal.
///
/// Supports `json!(null)`, object literals with string-literal keys and
/// expression values, array literals of expressions, and a bare expression
/// (serialized via [`to_value`]). Nested object literals inside values are
/// not supported — bind them to a variable first.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(x) => write_number(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("expected low surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + lo.checked_sub(0xDC00)
                                        .ok_or_else(|| self.err("invalid low surrogate"))?;
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.25",
            "1e3",
            "\"hi\\n\"",
        ] {
            let v: Value = from_str(json).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn nested_round_trip_preserves_order() {
        let src = r#"{"b": [1, 2.5, {"x": null}], "a": "text with \"quotes\" and é"}"#;
        let v: Value = from_str(src).unwrap();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(pairs[1].1.as_str().unwrap(), "text with \"quotes\" and é");
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_shapes() {
        let title = ["deep", "blue", "kettle"].join(" ");
        let v = json!({
            "entity": 7u32,
            "title": title,
        });
        assert_eq!(v.get("entity").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("title").unwrap().as_str(), Some("deep blue kettle"));
        let arr = json!([1u32, 2u32]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&(u32::MAX)).unwrap(), "4294967295");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("true false").is_err());
    }
}

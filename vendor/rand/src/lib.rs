//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so every external dependency is vendored as a minimal local
//! implementation of exactly the API subset the workspace uses (see
//! `DESIGN.md` §6). This crate provides:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same family the real `SmallRng`
//!   uses on 64-bit targets), seeded via SplitMix64;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer/float
//!   ranges), `gen_bool`;
//! * [`seq::SliceRandom`] — `shuffle`, `choose`.
//!
//! Determinism is guaranteed *within this implementation* (same seed, same
//! stream); streams do not match the real `rand` crate, which no code in
//! this workspace relies on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f32`/`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by widening multiply (Lemire); `n > 0`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening multiply maps the 64-bit stream onto [0, n) with negligible
    // bias for the range sizes used here; one rejection round removes the
    // rest.
    let mut m = (rng.next_u64() as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator behind the real crate's
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion: guarantees a non-zero state and good
            // bit diffusion from consecutive integer seeds.
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(5usize..=5);
            assert_eq!(z, 5);
            let w = rng.gen_range(-4i64..9);
            assert!((-4..9).contains(&w));
        }
    }

    #[test]
    fn unit_floats_cover_and_stay_in_01() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = heads as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Offline vendored stand-in for `rayon` (see `vendor/rand` for why).
//!
//! Provides genuine data parallelism — contiguous index ranges fanned out
//! over `std::thread::scope` — behind the parallel-iterator API subset the
//! workspace uses: `par_iter`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter` on integer ranges, and the `map` / `enumerate` /
//! `collect` / `sum` / `reduce` / `for_each` combinators.
//!
//! Differences from real rayon: no work stealing (work is split into one
//! contiguous block per thread) and no persistent pool (threads are scoped
//! per call). Both are fine at this workspace's scales; the
//! `RAYON_NUM_THREADS` environment variable is honored for thread-count
//! sweeps.

use std::ops::Range;

/// Everything needed for `.par_iter().map(...).sum()`-style call chains.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Number of worker threads for a workload of `len` items.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn threads_for(len: usize) -> usize {
    current_num_threads().min(len).max(1)
}

/// Run `f` over `0..len` split into one contiguous range per thread and
/// return the per-thread results in range order.
fn map_ranges<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let k = threads_for(len);
    if k <= 1 {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(k);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..k)
            .map(|t| {
                let range = (t * chunk).min(len)..((t + 1) * chunk).min(len);
                let f = &f;
                s.spawn(move || f(range))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// A parallel iterator over an indexable source.
///
/// The indexed model (`len` + random access) is what makes deterministic
/// contiguous splitting possible without channels or work stealing.
pub trait ParallelIterator: Sized + Sync {
    /// Item type produced.
    type Item: Send;

    /// Total number of items.
    fn p_len(&self) -> usize;

    /// Produce the item at index `i` (pure; called once per index).
    fn p_get(&self, i: usize) -> Self::Item;

    /// Map every item through `f` in parallel.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> T + Sync,
    {
        Map { base: self, f }
    }

    /// Pair every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Collect into a container, preserving order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sum all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        map_ranges(self.p_len(), |r| r.map(|i| self.p_get(i)).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Apply `f` to every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        map_ranges(self.p_len(), |r| {
            for i in r {
                f(self.p_get(i));
            }
        });
    }

    /// Fold all items with `op`, seeding every thread from `identity`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        map_ranges(self.p_len(), |r| {
            let mut acc = identity();
            for i in r {
                acc = op(acc, self.p_get(i));
            }
            acc
        })
        .into_iter()
        .fold(identity(), &op)
    }
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, T, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    T: Send,
    F: Fn(B::Item) -> T + Sync,
{
    type Item = T;

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn p_get(&self, i: usize) -> T {
        (self.f)(self.base.p_get(i))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn p_get(&self, i: usize) -> (usize, B::Item) {
        (i, self.base.p_get(i))
    }
}

/// Containers buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Collect, preserving item order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts = map_ranges(iter.p_len(), |r| {
            r.map(|i| iter.p_get(i)).collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(iter.p_len());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// Borrowed-slice parallel iterator (`par_iter`).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn p_len(&self) -> usize {
        self.slice.len()
    }

    fn p_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Borrowed-chunks parallel iterator (`par_chunks`).
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];

    fn p_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn p_get(&self, i: usize) -> &'a [T] {
        let start = i * self.size;
        &self.slice[start..(start + self.size).min(self.slice.len())]
    }
}

/// `par_iter` / `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> SliceIter<'_, T>;

    /// Parallel iterator over non-overlapping chunks of `size`.
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        assert!(size > 0, "par_chunks requires a positive chunk size");
        ChunksIter { slice: self, size }
    }
}

/// Parallel iterator over mutable chunks.
///
/// Mutable chunks cannot go through the shared-`&self` indexed model, so
/// this type pre-splits the slice and hands each thread an owned set of
/// disjoint chunks.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<(usize, &'a mut [T])>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index (chunks are already indexed
    /// internally, so this is the identity — it exists for call-site
    /// compatibility).
    pub fn enumerate(self) -> Self {
        self
    }

    /// Run `f` on every `(index, chunk)` pair across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let mut chunks = self.chunks;
        let k = threads_for(chunks.len());
        if k <= 1 {
            for pair in chunks {
                f(pair);
            }
            return;
        }
        let per = chunks.len().div_ceil(k);
        let mut batches: Vec<Vec<(usize, &'a mut [T])>> = Vec::with_capacity(k);
        while !chunks.is_empty() {
            let rest = chunks.split_off(chunks.len().min(per));
            batches.push(std::mem::replace(&mut chunks, rest));
        }
        std::thread::scope(|s| {
            for batch in batches {
                let f = &f;
                s.spawn(move || {
                    for pair in batch {
                        f(pair);
                    }
                });
            }
        });
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut requires a positive chunk size");
        ParChunksMut {
            chunks: self.chunks_mut(size).enumerate().collect(),
        }
    }
}

/// Owning parallel iterator over an integer range (`into_par_iter`).
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The produced iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;

    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn p_len(&self) -> usize {
                self.len
            }

            fn p_get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }
    )*};
}
impl_range_into_par!(u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_and_range_into_par() {
        let total: u64 = (0..100u64).into_par_iter().map(|x| x).sum();
        assert_eq!(total, 4950);
        let n: usize = [1usize, 2, 3].par_iter().map(|&x| x).sum();
        assert_eq!(n, 6);
    }

    #[test]
    fn chunks_enumerate_reduce() {
        let v: Vec<u32> = (0..257u32).collect();
        let (count, sum) = v
            .par_chunks(16)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum::<u32>()))
            .reduce(|| (0, 0), |a, b| (a.0.max(b.0), a.1 + b.1));
        assert_eq!(count, 16); // 17 chunks, max index 16
        assert_eq!(sum, (0..257).sum::<u32>());
    }

    #[test]
    fn chunks_mut_writes_disjointly() {
        let mut v = vec![0u32; 100];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, (j / 7) as u32);
        }
    }

    #[test]
    fn nested_parallelism() {
        let grid: usize = (0..4u32)
            .into_par_iter()
            .map(|_| {
                (0..50usize)
                    .collect::<Vec<_>>()
                    .par_iter()
                    .map(|&x| x)
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(grid, 4 * 1225);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let s: u32 = (5u32..5).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 0);
    }
}

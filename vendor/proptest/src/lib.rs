//! Offline vendored stand-in for `proptest` (see `vendor/rand` for why).
//!
//! Covers the strategy subset the workspace's property tests use: numeric
//! ranges, tuples of strategies, `prop::collection::vec`, and
//! `prop::sample::select`. Each `proptest!` function runs
//! `ProptestConfig::cases` generated cases with an RNG seeded
//! deterministically from the test's module path and case index, so runs
//! are reproducible without a persistence file. No shrinking: a failing
//! case reports its case index instead of a minimized input.

use rand::rngs::SmallRng;
use rand::Rng;

/// Everything the `use proptest::prelude::*;` sites need.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Strategy trait and implementations for ranges and tuples.
pub mod strategy {
    use super::*;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
    }
}

/// `prop::collection` — container strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Element count for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::sample` — choosing from explicit options.
pub mod sample {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy drawing uniformly from a fixed option list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)` — one of the given values.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Config, case RNG derivation, and the failure type the assert macros use.
pub mod test_runner {
    use super::*;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG for one test case: FNV-1a over the test path,
    /// mixed with the case index.
    pub fn case_rng(test_path: &str, case: u32) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written at the call site, matching
/// real proptest) that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            a in 3u32..17,
            b in -2.0f32..2.0,
            pair in (0usize..4, 10u64..20),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..5, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn select_draws_from_options(x in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!(x == 2 || x == 4 || x == 8, "got {}", x);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::case_rng("mod::t", 3);
        let mut r2 = crate::test_runner::case_rng("mod::t", 3);
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        let mut r3 = crate::test_runner::case_rng("mod::t", 4);
        assert_ne!(s.generate(&mut r1), s.generate(&mut r3));
    }
}

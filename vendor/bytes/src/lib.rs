//! Offline vendored stand-in for `bytes` (see `vendor/rand` for why).
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer (`Arc<[u8]>`
//! internally — no sub-slicing views, which this workspace never needs),
//! [`BytesMut`] is a growable builder, and [`Buf`] / [`BufMut`] provide the
//! little-endian cursor accessors used by the store/model serializers.

use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// Growable byte buffer for building serialized payloads.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, where each
/// accessor consumes from the front of the slice.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Borrow the remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Copy out exactly `dst.len()` bytes. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "cannot advance past end of buffer");
        *self = &self[n..];
    }
}

/// Write cursor that appends to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 7);
        buf.put_f32_le(std::f32::consts::PI);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();

        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 4 + 8 + 4 + 4);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX - 7);
        assert_eq!(cur.get_f32_le(), std::f32::consts::PI);
        assert_eq!(cur, b"tail");
    }

    #[test]
    fn advance_skips_prefix() {
        let data = [0u8, 1, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut cur: &[u8] = &data;
        cur.advance(8);
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.get_u8(), 8);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::from(vec![1u8; 1024]);
        let c = b.clone();
        assert_eq!(b.as_ref().as_ptr(), c.as_ref().as_ptr());
        assert_eq!(&b[..4], &[1, 1, 1, 1]);
    }
}

//! Offline vendored stand-in for `serde_derive` (see `vendor/rand` for why).
//!
//! Derives `serde::Serialize` / `serde::Deserialize` for the shapes this
//! workspace actually uses — named-field structs (with `#[serde(skip)]`),
//! tuple structs, and unit-variant enums — by walking the raw
//! `proc_macro::TokenTree` stream and emitting the impl as a source string.
//! No `syn`/`quote`: those crates are unavailable offline, and the grammar
//! subset here is small enough to parse by hand. Generics are not
//! supported; deriving on a generic type is a compile error.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Ser)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Ser,
    De,
}

enum Shape {
    /// Named-field struct: `(field_name, is_serde_skip)` in declaration order.
    Named {
        name: String,
        fields: Vec<(String, bool)>,
    },
    /// Tuple struct with `n` fields.
    Tuple { name: String, n: usize },
    /// Enum whose variants are all unit variants.
    UnitEnum { name: String, variants: Vec<String> },
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let code = match parse_shape(input) {
        Ok(shape) => match dir {
            Direction::Ser => gen_ser(&shape),
            Direction::De => gen_de(&shape),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i, &mut false);

    let kw = ident_at(&toks, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&toks, i).ok_or("expected a type name")?;
    i += 1;

    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive stub: generic type `{name}` unsupported"
        ));
    }

    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) => g,
        _ => return Err(format!("unsupported definition shape for `{name}`")),
    };
    match (kw.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Ok(Shape::Named {
            fields: parse_named_fields(body)?,
            name,
        }),
        ("struct", Delimiter::Parenthesis) => Ok(Shape::Tuple {
            n: count_tuple_fields(body),
            name,
        }),
        ("enum", Delimiter::Brace) => Ok(Shape::UnitEnum {
            variants: parse_unit_variants(body, &name)?,
            name,
        }),
        _ => Err(format!("unsupported definition shape for `{name}`")),
    }
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advance `i` past `#[...]` attributes and `pub` / `pub(...)` visibility,
/// setting `skip` if a `#[serde(skip)]` attribute was seen.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize, skip: &mut bool) {
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(attr)))
                if p.as_char() == '#' && attr.delimiter() == Delimiter::Bracket =>
            {
                if attr_is_serde_skip(attr) {
                    *skip = true;
                }
                *i += 2;
            }
            (Some(TokenTree::Ident(id)), _) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn attr_is_serde_skip(attr: &Group) -> bool {
    let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

fn parse_named_fields(body: &Group) -> Result<Vec<(String, bool)>, String> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut skip = false;
        skip_attrs_and_vis(&toks, &mut i, &mut skip);
        let fname = ident_at(&toks, i).ok_or("expected a field name")?;
        i += 1;
        if !matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{fname}`"));
        }
        i += 1;
        // Consume the type up to a comma at angle-bracket depth 0. Parens and
        // brackets are single `Group` tokens, so only `<`/`>` need tracking.
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push((fname, skip));
    }
    Ok(fields)
}

fn count_tuple_fields(body: &Group) -> usize {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 && j + 1 < toks.len() => n += 1,
                _ => {}
            }
        }
    }
    n
}

fn parse_unit_variants(body: &Group, name: &str) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i, &mut false);
        let v = ident_at(&toks, i)
            .ok_or_else(|| format!("expected a variant name in enum `{name}`"))?;
        i += 1;
        match toks.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            _ => {
                return Err(format!(
                    "serde derive stub: enum `{name}` has a non-unit variant `{v}`"
                ))
            }
        }
        variants.push(v);
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_ser(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let mut pushes = String::new();
            for (f, skip) in fields {
                if *skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "fields.push(({f:?}.to_string(), \
                     ::serde::Serialize::to_json_value(&self.{f})));"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_json_value(&self) -> ::serde::Value {{ \
                     let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                       ::std::vec::Vec::new(); \
                     {pushes} \
                     ::serde::Value::Object(fields) \
                   }} \
                 }}"
            )
        }
        Shape::Tuple { name, n } => {
            let body = if *n == 1 {
                "::serde::Serialize::to_json_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|j| format!("::serde::Serialize::to_json_value(&self.{j})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(","))
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_json_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string())"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                   fn to_json_value(&self) -> ::serde::Value {{ \
                     match self {{ {} }} \
                   }} \
                 }}",
                arms.join(",")
            )
        }
    }
}

fn gen_de(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let mut inits = String::new();
            for (f, skip) in fields {
                if *skip {
                    inits.push_str(&format!("{f}: ::std::default::Default::default(),"));
                } else {
                    inits.push_str(&format!("{f}: ::serde::de_field(v, {f:?})?,"));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_json_value(v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ \
                     ::std::result::Result::Ok(Self {{ {inits} }}) \
                   }} \
                 }}"
            )
        }
        Shape::Tuple { name, n } => {
            let body = if *n == 1 {
                "::std::result::Result::Ok(Self(::serde::Deserialize::from_json_value(v)?))"
                    .to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|j| format!("::serde::Deserialize::from_json_value(&items[{j}])?"))
                    .collect();
                format!(
                    "match v {{ \
                       ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok(Self({})), \
                       _ => ::std::result::Result::Err(::serde::Error::new(\
                         format!(\"expected a {n}-element array for {name}\"))) \
                     }}",
                    items.join(",")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_json_value(v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                   fn from_json_value(v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ \
                     match v {{ \
                       ::serde::Value::String(s) => match s.as_str() {{ \
                         {arms}, \
                         other => ::std::result::Result::Err(::serde::Error::new(\
                           format!(\"unknown {name} variant `{{other}}`\"))) \
                       }}, \
                       _ => ::std::result::Result::Err(::serde::Error::new(\
                         \"expected a string for {name}\".to_string())) \
                     }} \
                   }} \
                 }}",
                arms = arms.join(",")
            )
        }
    }
}

//! Offline vendored stand-in for `rand_distr` (see `vendor/rand`).
//!
//! Implements the three distributions this workspace samples from:
//! [`Normal`] (Box–Muller), [`Uniform`] over `f64`, and the 1-based [`Zipf`]
//! law used for long-tail attribute-value frequencies in the synthetic
//! catalog.

use rand::{Rng, RngCore, Standard};

/// A distribution samplable with any [`Rng`].
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Gaussian `N(mean, std²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// `std` must be finite and non-negative.
    pub fn new(mean: f64, std: f64) -> Result<Self, ParamError> {
        if !(std.is_finite() && std >= 0.0 && mean.is_finite()) {
            return Err(ParamError("Normal requires finite mean and std >= 0"));
        }
        Ok(Self { mean, std })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 is shifted away from 0 so ln() stays finite.
        let u1: f64 = 1.0 - <f64 as Standard>::sample(rng);
        let u2: f64 = <f64 as Standard>::sample(rng);
        let mag = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std * mag * (std::f64::consts::TAU * u2).cos()
    }
}

/// Uniform over `[lo, hi)` or `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
    inclusive: bool,
}

impl Uniform {
    /// Half-open `[lo, hi)`; panics if `lo >= hi` (matching `rand` 0.8).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform::new requires lo < hi");
        Self {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Closed `[lo, hi]`; panics if `lo > hi`.
    pub fn new_inclusive(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
        Self {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        if self.inclusive {
            rng.gen_range(self.lo..=self.hi)
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Zipf law over `{1, …, n}` with exponent `s`:
/// `P(k) ∝ 1 / k^s`. Samples are returned as `f64` (1-based), matching
/// `rand_distr` 0.4.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative unnormalized weights; `cdf[k-1] = Σ_{j<=k} j^-s`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// `n` must be positive and `s` finite and non-negative.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError("Zipf requires n > 0"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ParamError("Zipf requires finite s >= 0"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        Ok(Self { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let total = *self.cdf.last().expect("non-empty cdf");
        let u: f64 = <f64 as Standard>::sample(rng) * total;
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Normal::new(2.0, 3.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let half = Uniform::new(-1.0, 1.0);
        let closed = Uniform::new_inclusive(-0.5, 0.5);
        for _ in 0..5_000 {
            let x = half.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
            let y = closed.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&y));
        }
    }

    #[test]
    fn zipf_is_one_based_and_monotone() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = Zipf::new(10, 1.1).unwrap();
        let mut counts = [0usize; 10];
        for _ in 0..30_000 {
            let k = d.sample(&mut rng);
            assert!((1.0..=10.0).contains(&k));
            counts[k as usize - 1] += 1;
        }
        // Long tail: rank 1 clearly dominates rank 10.
        assert!(counts[0] > 3 * counts[9], "counts {counts:?}");
        assert!(Zipf::new(0, 1.0).is_err());
    }
}

//! Cross-crate property-based tests (proptest).

use pkgm::prelude::*;
use pkgm::store::io;
use pkgm::store::StoreBuilder;
use pkgm::tensor::{graph::softmax_in_place, Graph, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Store: anything inserted is queryable; indexes agree with the triple
    /// list; dedup means contains() ⇔ membership.
    #[test]
    fn store_insert_query_consistency(
        triples in prop::collection::vec((0u32..40, 0u32..6, 0u32..40), 1..120)
    ) {
        let mut b = StoreBuilder::new();
        for &(h, r, t) in &triples {
            b.add_raw(h, r, t);
        }
        let store = b.build();
        for &(h, r, t) in &triples {
            let triple = Triple::from_raw(h, r, t);
            prop_assert!(store.contains(triple));
            prop_assert!(store.tails(EntityId(h), RelationId(r)).contains(&EntityId(t)));
            prop_assert!(store.heads(RelationId(r), EntityId(t)).contains(&EntityId(h)));
            prop_assert!(store.relations_of(EntityId(h)).contains(&RelationId(r)));
        }
        // Triple count equals the deduplicated input size.
        let mut dedup = triples.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(store.len(), dedup.len());
        // Relation counts sum to the triple count.
        let total: u64 = store.relation_counts().iter().sum();
        prop_assert_eq!(total as usize, store.len());
    }

    /// Store binary serialization is lossless.
    #[test]
    fn store_binary_roundtrip(
        triples in prop::collection::vec((0u32..30, 0u32..4, 0u32..30), 0..60)
    ) {
        let mut b = StoreBuilder::new();
        for &(h, r, t) in &triples {
            b.add_raw(h, r, t);
        }
        let store = b.build();
        let bytes = io::to_bytes(&store);
        let back = io::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.triples(), store.triples());
        prop_assert_eq!(back.n_entities(), store.n_entities());
    }

    /// Softmax outputs a probability vector for arbitrary finite input.
    #[test]
    fn softmax_is_a_distribution(xs in prop::collection::vec(-50.0f32..50.0, 1..40)) {
        let mut row = xs;
        softmax_in_place(&mut row);
        let sum: f32 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(
        a in prop::collection::vec(-2.0f32..2.0, 6),
        b in prop::collection::vec(-2.0f32..2.0, 6),
        c in prop::collection::vec(-2.0f32..2.0, 6),
    ) {
        let ta = Tensor::from_vec(2, 3, a);
        let tb = Tensor::from_vec(2, 3, b);
        let tc = Tensor::from_vec(3, 2, c);
        let mut sum = ta.clone();
        sum.add_assign(&tb);
        let left = sum.matmul(&tc);
        let mut right = ta.matmul(&tc);
        right.add_assign(&tb.matmul(&tc));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Graph add/sub/mul forward values match scalar math elementwise.
    #[test]
    fn graph_elementwise_ops_match_scalar_math(
        a in prop::collection::vec(-5.0f32..5.0, 8),
        b in prop::collection::vec(-5.0f32..5.0, 8),
    ) {
        let ta = Tensor::from_vec(2, 4, a.clone());
        let tb = Tensor::from_vec(2, 4, b.clone());
        let mut g = Graph::new();
        let va = g.input(ta);
        let vb = g.input(tb);
        let add = g.add(va, vb);
        let sub = g.sub(va, vb);
        let mul = g.mul(va, vb);
        for i in 0..8 {
            prop_assert!((g.value(add).as_slice()[i] - (a[i] + b[i])).abs() < 1e-6);
            prop_assert!((g.value(sub).as_slice()[i] - (a[i] - b[i])).abs() < 1e-6);
            prop_assert!((g.value(mul).as_slice()[i] - (a[i] * b[i])).abs() < 1e-5);
        }
    }

    /// PKGM scores are non-negative and service identities hold:
    /// f_T(h,r,t) = ‖S_T(h,r) − t‖₁ and f_R(h,r) = ‖S_R(h,r)‖₁.
    #[test]
    fn pkgm_score_service_identities(seed in 0u64..500, h in 0u32..8, r in 0u32..3, t in 0u32..8) {
        let model = PkgmModel::new(8, 3, PkgmConfig::new(8).with_seed(seed));
        let triple = Triple::from_raw(h, r, t);
        let ft = model.score_triple(triple);
        prop_assert!(ft >= 0.0);
        let st = model.service_t(EntityId(h), RelationId(r));
        let recomputed: f32 = st
            .iter()
            .zip(model.ent(EntityId(t)))
            .map(|(a, b)| (a - b).abs())
            .sum();
        prop_assert!((ft - recomputed).abs() < 1e-4);
        let fr = model.score_relation(EntityId(h), RelationId(r));
        let sr = model.service_r(EntityId(h), RelationId(r));
        let norm: f32 = sr.iter().map(|x| x.abs()).sum();
        prop_assert!((fr - norm).abs() < 1e-4);
    }

    /// Catalog generation is deterministic and id-dense for any seed.
    #[test]
    fn catalog_generation_invariants(seed in 0u64..50) {
        let cfg = CatalogConfig::tiny(seed);
        let a = Catalog::generate(&cfg);
        let b = Catalog::generate(&cfg);
        prop_assert_eq!(a.store.triples(), b.store.triples());
        prop_assert_eq!(a.items.len(), cfg.n_items());
        for t in a.store.triples() {
            prop_assert!(t.head.0 < a.store.n_entities());
            prop_assert!(t.tail.0 < a.store.n_entities());
            prop_assert!(t.relation.0 < a.store.n_relations());
        }
        // Held-out facts never leak into the store.
        for t in &a.heldout {
            prop_assert!(!a.store.contains(*t));
        }
    }

    /// Model snapshots are lossless for arbitrary shapes.
    #[test]
    fn model_snapshot_roundtrip(n_e in 1usize..12, n_r in 1usize..5, seed in 0u64..100) {
        let model = PkgmModel::new(n_e, n_r, PkgmConfig::new(4).with_seed(seed));
        let bytes = pkgm::core::serialize::model_to_bytes(&model);
        let (back, consumed) = pkgm::core::serialize::model_from_bytes(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back.score(Triple::from_raw(0, 0, 0)),
                        model.score(Triple::from_raw(0, 0, 0)));
    }
}

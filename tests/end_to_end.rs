//! End-to-end integration tests: catalog → pre-train → serve → downstream.

use pkgm::core::{eval, serialize};
use pkgm::prelude::*;
use pkgm::synth::ClassificationDataset;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn quick_train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 256,
        lr: 0.02,
        margin: 2.0,
        negatives: 1,
        seed: 1,
        normalize_entities: true,
        parallel: true,
        chunk_size: None,
    }
}

#[test]
fn pretrain_then_complete_heldout_facts() {
    let catalog = Catalog::generate(&CatalogConfig::tiny(1));
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(16).with_seed(1),
        quick_train_cfg(),
        4,
    );

    // Held-out facts are absent from the KG but true in the world; the
    // triple module should rank their tails far better than chance.
    let test: Vec<Triple> = catalog.heldout.clone();
    assert!(!test.is_empty());
    let report = eval::rank_tails(service.model(), &test, Some(&catalog.store), &[1, 10])
        .expect("held-out facts come from the catalog's entity/relation space");
    let chance_mrr = 2.0 / catalog.store.n_entities() as f64;
    assert!(
        report.mrr > chance_mrr * 4.0,
        "completion MRR {} not above chance {}",
        report.mrr,
        chance_mrr
    );
}

#[test]
fn relation_module_separates_existence_end_to_end() {
    let catalog = Catalog::generate(&CatalogConfig::tiny(2));
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(16).with_seed(2),
        quick_train_cfg(),
        4,
    );
    let mut rng = SmallRng::seed_from_u64(2);
    let auc = eval::relation_existence_auc(service.model(), &catalog.store, 300, &mut rng);
    assert!(
        auc.auc > 0.7,
        "existence AUC {} too close to chance",
        auc.auc
    );
}

#[test]
fn service_roundtrips_through_binary_snapshot() {
    let catalog = Catalog::generate(&CatalogConfig::tiny(3));
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(8).with_seed(3),
        quick_train_cfg(),
        3,
    );
    let bytes = serialize::service_to_bytes(&service);
    let back = serialize::service_from_bytes(&bytes).expect("roundtrip");
    for item in [0u32, 5, 17] {
        assert_eq!(
            back.sequence_service(EntityId(item)),
            service.sequence_service(EntityId(item))
        );
        assert_eq!(
            back.condensed_service(EntityId(item)),
            service.condensed_service(EntityId(item))
        );
    }
}

#[test]
fn same_product_items_get_similar_service_vectors() {
    // Items of the same product share attribute values, so their condensed
    // triple-service vectors should be closer than cross-product pairs.
    let catalog = Catalog::generate(&CatalogConfig::tiny(4));
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(16).with_seed(4),
        quick_train_cfg(),
        4,
    );
    let groups = catalog.product_groups();
    let l2 = |a: &[f32], b: &[f32]| -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    };
    let mut same = 0.0f32;
    let mut cross = 0.0f32;
    let mut n = 0;
    for pair in groups.windows(2).take(10) {
        let (g1, g2) = (&pair[0], &pair[1]);
        if g1.len() < 2 || g2.is_empty() {
            continue;
        }
        let a = service.condensed_triple(g1[0].entity);
        let b = service.condensed_triple(g1[1].entity);
        let c = service.condensed_triple(g2[0].entity);
        same += l2(&a, &b);
        cross += l2(&a, &c);
        n += 1;
    }
    assert!(n > 0);
    assert!(
        same < cross,
        "same-product service distance {same} ≥ cross-product {cross}"
    );
}

#[test]
fn classification_pipeline_runs_with_service() {
    let catalog = Catalog::generate(&CatalogConfig::tiny(5));
    let dataset = ClassificationDataset::build(&catalog, 100, 5);
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(16).with_seed(5),
        quick_train_cfg(),
        3,
    );
    let cfg = ClassifierTrainConfig {
        epochs: 4,
        batch_size: 16,
        lr: 3e-3,
        max_len: 32,
        seed: 5,
        encoder: Some(EncoderConfig {
            vocab_size: Vocab::build(dataset.train.iter().map(|e| e.title.as_slice()), 1).len(),
            hidden: 16,
            n_layers: 1,
            n_heads: 2,
            ff_dim: 32,
            max_len: 48,
            dropout: 0.0,
        }),
    };
    let model = ItemClassifier::train(&dataset, Some(service), PkgmVariant::PkgmAll, &cfg);
    let metrics = model.evaluate(&dataset.test);
    assert!(metrics.hit10 >= metrics.hit1);
    // The tiny test split is high-variance; memorization of the training
    // split is the robust learnability check here.
    let train_metrics = model.evaluate(&dataset.train);
    assert!(
        train_metrics.accuracy > 100.0 / dataset.n_classes as f64 * 1.5,
        "train accuracy {} shows no learning",
        train_metrics.accuracy
    );
}

#[test]
fn recommendation_pipeline_runs_with_service() {
    let catalog = Catalog::generate(&CatalogConfig::tiny(6));
    let icfg = InteractionConfig {
        n_users: 40,
        ..InteractionConfig::tiny(6)
    };
    let data = InteractionData::generate(&catalog, &icfg);
    let service = pkgm::pretrain(
        &catalog,
        PkgmConfig::new(8).with_seed(6),
        quick_train_cfg(),
        3,
    );
    let cfg = NcfTrainConfig {
        gmf_dim: 8,
        mlp_dim: 16,
        hidden: vec![16, 8],
        lr: 8e-3,
        l2: 1e-4,
        epochs: 10,
        batch_size: 64,
        neg_ratio: 3,
        seed: 6,
    };
    let model = NcfModel::train(&data, Some(&service), PkgmVariant::PkgmR, &cfg);
    let m = model.evaluate(&data, &data.test, &[1, 10], 20, 6);
    assert_eq!(m.n, data.n_users);
    assert!(m.hr_at(10).unwrap() >= m.hr_at(1).unwrap());
}

#[test]
fn tsv_export_import_preserves_catalog_graph() {
    let catalog = Catalog::generate(&CatalogConfig::tiny(7));
    let mut out = Vec::new();
    pkgm::store::io::write_tsv(
        &catalog.store,
        &catalog.entities,
        &catalog.relations,
        &mut out,
    )
    .expect("export");
    let (store2, ..) = pkgm::store::io::read_tsv(out.as_slice()).expect("import");
    assert_eq!(store2.len(), catalog.store.len());
    let s1 = KgStats::of(&catalog.store);
    let s2 = KgStats::of(&store2);
    assert_eq!(s1.n_items, s2.n_items);
    assert_eq!(s1.n_relations, s2.n_relations);
}

//! End-to-end tests of the `pkgm` binary: generate → pretrain → serve → eval.

use std::path::PathBuf;
use std::process::Command;

fn pkgm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pkgm"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pkgm-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = pkgm().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("USAGE"));
    assert!(text.contains("pretrain"));
}

#[test]
fn unknown_subcommand_fails_with_help() {
    let out = pkgm().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn stats_reports_counts() {
    let out = pkgm()
        .args(["stats", "--preset", "tiny", "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# Triples"));
    assert!(text.contains("held-out"));
}

#[test]
fn generate_writes_tsv_and_items_json() {
    let dir = tmpdir("gen");
    let kg = dir.join("kg.tsv");
    let items = dir.join("items.json");
    let out = pkgm()
        .args([
            "generate",
            "--preset",
            "tiny",
            "--seed",
            "4",
            "--out",
            kg.to_str().unwrap(),
            "--items-out",
            items.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tsv = std::fs::read_to_string(&kg).unwrap();
    assert!(tsv.lines().count() > 100);
    assert!(tsv.lines().all(|l| l.split('\t').count() == 3));
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&items).unwrap()).unwrap();
    assert_eq!(parsed.as_array().unwrap().len(), 60); // tiny = 60 items
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn pretrain_serve_eval_roundtrip() {
    let dir = tmpdir("roundtrip");
    let svc = dir.join("svc.bin");
    let out = pkgm()
        .args([
            "pretrain",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--dim",
            "8",
            "--epochs",
            "2",
            "--k",
            "3",
            "--out",
            svc.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(svc.exists());

    let out = pkgm()
        .args([
            "serve",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--service",
            svc.to_str().unwrap(),
            "--item",
            "0",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("key relations (k = 3)"));
    assert!(text.contains("condensed service (live compute): 16 dims"));
    let live_norm = text
        .split("‖S‖₂ = ")
        .nth(1)
        .map(str::trim)
        .unwrap()
        .to_string();

    let snap = dir.join("serving.snap");
    let out = pkgm()
        .args([
            "snapshot",
            "--service",
            svc.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(snap.exists());
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote serving snapshot"));

    let out = pkgm()
        .args([
            "serve",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--service",
            svc.to_str().unwrap(),
            "--item",
            "0",
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("condensed service (precomputed snapshot): 16 dims"));
    let snap_norm = text.split("‖S‖₂ = ").nth(1).map(str::trim).unwrap();
    assert_eq!(snap_norm, live_norm, "snapshot must match live compute");

    let out = pkgm()
        .args([
            "eval",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--service",
            svc.to_str().unwrap(),
            "--max-facts",
            "50",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MRR"));
    assert!(text.contains("relation-existence AUC"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn missing_required_flag_is_reported() {
    let out = pkgm()
        .args(["pretrain", "--preset", "tiny"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

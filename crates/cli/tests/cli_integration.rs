//! End-to-end tests of the `pkgm` binary: generate → pretrain → serve → eval.

use std::path::PathBuf;
use std::process::Command;

fn pkgm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pkgm"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pkgm-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = pkgm().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("USAGE"));
    assert!(text.contains("pretrain"));
}

#[test]
fn unknown_subcommand_fails_with_help() {
    let out = pkgm().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn stats_reports_counts() {
    let out = pkgm()
        .args(["stats", "--preset", "tiny", "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# Triples"));
    assert!(text.contains("held-out"));
}

#[test]
fn generate_writes_tsv_and_items_json() {
    let dir = tmpdir("gen");
    let kg = dir.join("kg.tsv");
    let items = dir.join("items.json");
    let out = pkgm()
        .args([
            "generate",
            "--preset",
            "tiny",
            "--seed",
            "4",
            "--out",
            kg.to_str().unwrap(),
            "--items-out",
            items.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tsv = std::fs::read_to_string(&kg).unwrap();
    assert!(tsv.lines().count() > 100);
    assert!(tsv.lines().all(|l| l.split('\t').count() == 3));
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&items).unwrap()).unwrap();
    assert_eq!(parsed.as_array().unwrap().len(), 60); // tiny = 60 items
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn pretrain_serve_eval_roundtrip() {
    let dir = tmpdir("roundtrip");
    let svc = dir.join("svc.bin");
    let out = pkgm()
        .args([
            "pretrain",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--dim",
            "8",
            "--epochs",
            "2",
            "--k",
            "3",
            "--out",
            svc.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(svc.exists());

    let out = pkgm()
        .args([
            "serve",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--service",
            svc.to_str().unwrap(),
            "--item",
            "0",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("key relations (k = 3)"));
    assert!(text.contains("condensed service (live compute): 16 dims"));
    let live_norm = text
        .split("‖S‖₂ = ")
        .nth(1)
        .map(str::trim)
        .unwrap()
        .to_string();

    let snap = dir.join("serving.snap");
    let out = pkgm()
        .args([
            "snapshot",
            "--service",
            svc.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(snap.exists());
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote serving snapshot"));

    let out = pkgm()
        .args([
            "serve",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--service",
            svc.to_str().unwrap(),
            "--item",
            "0",
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("condensed service (precomputed snapshot, resident): 16 dims"));
    let snap_norm = text.split("‖S‖₂ = ").nth(1).map(str::trim).unwrap();
    assert_eq!(snap_norm, live_norm, "snapshot must match live compute");

    let out = pkgm()
        .args([
            "eval",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--service",
            svc.to_str().unwrap(),
            "--max-facts",
            "50",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MRR"));
    assert!(text.contains("relation-existence AUC"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn checkpoint_resume_matches_straight_run() {
    let dir = tmpdir("ckpt-resume");
    // --parallel false: a fixed gradient order is what makes the straight
    // and resumed runs comparable bit-for-bit.
    let base: Vec<String> = [
        "train",
        "--preset",
        "tiny",
        "--seed",
        "6",
        "--dim",
        "8",
        "--k",
        "3",
        "--parallel",
        "false",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Straight 4-epoch run.
    let svc_a = dir.join("a.bin");
    let out = pkgm()
        .args(&base)
        .args(["--epochs", "4", "--out", svc_a.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 2 epochs with checkpoints, then resume to 4.
    let svc_b = dir.join("b.bin");
    let ckpts = dir.join("ckpts");
    let out = pkgm()
        .args(&base)
        .args([
            "--epochs",
            "2",
            "--out",
            svc_b.to_str().unwrap(),
            "--checkpoint-dir",
            ckpts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpts.join("ckpt-00002.pkgm").exists());
    let out = pkgm()
        .args(&base)
        .args([
            "--epochs",
            "4",
            "--out",
            svc_b.to_str().unwrap(),
            "--resume",
            ckpts.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("resuming from"));

    // Same artifact bytes: the resumed run is bit-for-bit the straight run.
    let a = std::fs::read(&svc_a).unwrap();
    let b = std::fs::read(&svc_b).unwrap();
    assert_eq!(a, b, "resumed service differs from straight run");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn resume_from_empty_dir_warns_and_starts_fresh() {
    let dir = tmpdir("ckpt-fresh");
    let svc = dir.join("svc.bin");
    let out = pkgm()
        .args([
            "train",
            "--preset",
            "tiny",
            "--seed",
            "7",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--k",
            "3",
            "--out",
            svc.to_str().unwrap(),
            "--resume",
            dir.join("nonexistent").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("starting fresh"));
    assert!(svc.exists());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn corrupt_service_file_is_a_typed_error_not_a_panic() {
    let dir = tmpdir("corrupt-svc");
    let svc = dir.join("svc.bin");
    std::fs::write(&svc, b"PKGMAF1\0garbage that is not a valid artifact").unwrap();
    let out = pkgm()
        .args([
            "serve",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--service",
            svc.to_str().unwrap(),
            "--item",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "stderr: {err}");
    assert!(!err.contains("panicked"), "loader panicked: {err}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn serve_degrades_gracefully_for_unknown_items() {
    let dir = tmpdir("degraded-serve");
    let svc = dir.join("svc.bin");
    let out = pkgm()
        .args([
            "train",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--dim",
            "8",
            "--epochs",
            "1",
            "--k",
            "3",
            "--out",
            svc.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    // An item id far beyond the catalog must be answered, not crash.
    let out = pkgm()
        .args([
            "serve",
            "--preset",
            "tiny",
            "--seed",
            "5",
            "--service",
            svc.to_str().unwrap(),
            "--item",
            "4000000000",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("serving fallback"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("zero fallback"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn faultcheck_passes_and_reports_scenarios() {
    let dir = tmpdir("faultcheck");
    let out = pkgm()
        .args(["faultcheck", "--dir", dir.to_str().unwrap(), "--seed", "42"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kill-during-checkpoint-resumes"));
    assert!(text.contains("degraded-serving-no-panic"));
    assert!(text.contains("all") && text.contains("scenarios passed"));
    assert!(!text.contains("FAIL"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn missing_required_flag_is_reported() {
    let out = pkgm()
        .args(["pretrain", "--preset", "tiny"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn bench_eval_reports_speedup_and_writes_json() {
    let dir = tmpdir("bench_eval");
    let json = dir.join("bench_eval.json");
    let out = pkgm()
        .args([
            "bench-eval",
            "--preset",
            "tiny",
            "--seed",
            "7",
            "--dim",
            "16",
            "--epochs",
            "1",
            "--tails",
            "16",
            "--heads",
            "8",
            "--out",
            json.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fused vs baseline (tails, filtered)"));
    assert!(text.contains("fused vs baseline (heads, filtered)"));
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(
        report.get("benchmark").unwrap().as_str().unwrap(),
        "bench-eval"
    );
    assert_eq!(report.get("results").unwrap().as_array().unwrap().len(), 4);
    assert!(
        report
            .get("fused_vs_baseline_tails")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn bench_eval_quantized_adds_kernel_rows_and_prune_stats() {
    let dir = tmpdir("bench_eval_quant");
    let json = dir.join("bench_eval.json");
    let out = pkgm()
        .args([
            "bench-eval",
            "--preset",
            "tiny",
            "--seed",
            "7",
            "--dim",
            "16",
            "--epochs",
            "1",
            "--tails",
            "16",
            "--heads",
            "8",
            "--quantized",
            "true",
            "--out",
            json.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quantized vs fused (tails, filtered)"));
    assert!(text.contains("quantized vs fused (heads, filtered)"));
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let results = report.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 6, "baseline/fused/quantized × tails/heads");
    let quant_rows: Vec<_> = results
        .iter()
        .filter(|r| r.get("kernel").unwrap().as_str().unwrap() == "quantized")
        .collect();
    assert_eq!(quant_rows.len(), 2);
    for row in &quant_rows {
        assert!(row.get("prune_rate").unwrap().as_f64().unwrap() >= 0.0);
        assert!(row.get("candidates").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            row.get("scanned_bytes_per_candidate")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }
    // The quantized kernel must agree with fused on the ranking metrics —
    // two-phase pruning is exact.
    for mode in ["tails", "heads"] {
        let mrr = |kernel: &str| {
            results
                .iter()
                .find(|r| {
                    r.get("kernel").unwrap().as_str().unwrap() == kernel
                        && r.get("mode").unwrap().as_str().unwrap() == mode
                })
                .unwrap()
                .get("mrr")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(mrr("quantized"), mrr("fused"), "{mode} MRR must match");
    }
    assert!(
        report
            .get("quantized_vs_fused_tails")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn quantized_snapshot_roundtrip_and_legacy_serving() {
    let dir = tmpdir("quant_snap");
    let svc = dir.join("svc.bin");
    let out = pkgm()
        .args([
            "train",
            "--preset",
            "tiny",
            "--seed",
            "11",
            "--dim",
            "8",
            "--epochs",
            "2",
            "--k",
            "3",
            "--out",
            svc.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Dense (legacy PKGMSS1) and quantized (PKGMSS2) snapshots of the
    // same service.
    let dense = dir.join("dense.snap");
    let quant = dir.join("quant.snap");
    let out = pkgm()
        .args([
            "snapshot",
            "--service",
            svc.to_str().unwrap(),
            "--out",
            dense.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = pkgm()
        .args([
            "snapshot",
            "--service",
            svc.to_str().unwrap(),
            "--out",
            quant.to_str().unwrap(),
            "--quantize",
            "true",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wrote quantized serving snapshot"));
    assert!(text.contains("quantized table:"));
    // The quantized file must be materially smaller on disk.
    let dense_len = std::fs::metadata(&dense).unwrap().len();
    let quant_len = std::fs::metadata(&quant).unwrap().len();
    assert!(
        quant_len * 10 < dense_len * 4,
        "quantized snapshot {quant_len} B should be well under 40% of dense {dense_len} B"
    );

    let serve_norm = |snapshot: Option<&std::path::Path>| -> (String, String) {
        let mut args = vec![
            "serve".to_string(),
            "--preset".into(),
            "tiny".into(),
            "--seed".into(),
            "11".into(),
            "--service".into(),
            svc.to_str().unwrap().into(),
            "--item".into(),
            "0".into(),
        ];
        if let Some(p) = snapshot {
            args.push("--snapshot".into());
            args.push(p.to_str().unwrap().into());
        }
        let out = pkgm().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        let norm = text.split("‖S‖₂ = ").nth(1).map(str::trim).unwrap();
        (text.clone(), norm.to_string())
    };

    let (live_text, live_norm) = serve_norm(None);
    assert!(live_text.contains("condensed service (live compute): 16 dims"));
    // Legacy PKGMSS1 snapshots keep serving bit-identically.
    let (dense_text, dense_norm) = serve_norm(Some(&dense));
    assert!(dense_text.contains("condensed service (precomputed snapshot, resident): 16 dims"));
    assert_eq!(dense_norm, live_norm, "dense snapshot must match live");
    // The quantized table serves within quantization tolerance and is
    // labeled as such.
    let (quant_text, quant_norm) = serve_norm(Some(&quant));
    assert!(quant_text.contains("condensed service (quantized snapshot, resident): 16 dims"));
    let live: f64 = live_norm.parse().unwrap();
    let q: f64 = quant_norm.parse().unwrap();
    assert!(
        (live - q).abs() <= 0.05 * live.abs() + 0.05,
        "quantized norm {q} too far from live {live}"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn daemon_help_and_action_errors() {
    let out = pkgm().arg("help").output().unwrap();
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("daemon"));
    assert!(text.contains("bench-qps"));
    assert!(text.contains("hot-swap"));

    let out = pkgm().args(["daemon", "frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown daemon action"));

    // Client actions require --addr.
    let out = pkgm().args(["daemon", "stats"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing required flag --addr"));

    // Serving requires a service artifact.
    let out = pkgm().args(["daemon", "serve"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing required flag --service"));
}

#[test]
fn bench_qps_smoke_reports_swaps_and_zero_errors() {
    let dir = tmpdir("bench-qps");
    let report_path = dir.join("qps.json");
    let out = pkgm()
        .args([
            "bench-qps",
            "--preset",
            "tiny",
            "--seed",
            "9",
            "--dim",
            "8",
            "--clients",
            "2",
            "--requests",
            "60",
            "--batch",
            "8",
            "--out",
            report_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert!(report.get("qps").and_then(|v| v.as_f64()).unwrap() > 0.0);
    assert!(report.get("p999_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);
    assert_eq!(
        report.get("protocol_errors").and_then(|v| v.as_u64()),
        Some(0)
    );
    assert!(report.get("hot_swaps").and_then(|v| v.as_u64()).unwrap() >= 1);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn daemon_serve_reload_stats_stop_across_processes() {
    let dir = tmpdir("daemon-e2e");
    let svc = dir.join("svc.bin");
    let out = pkgm()
        .args([
            "train", "--preset", "tiny", "--seed", "8", "--dim", "8", "--epochs", "1", "--k", "3",
            "--out",
        ])
        .arg(&svc)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snap = dir.join("serving.snap");
    let out = pkgm()
        .args(["snapshot", "--service"])
        .arg(&svc)
        .arg("--out")
        .arg(&snap)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Serve on an ephemeral port, discovering it through --addr-file. The
    // guard kills the child if any assertion below panics first.
    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
        }
    }
    let addr_file = dir.join("addr");
    let mut daemon = KillOnDrop(
        pkgm()
            .args(["daemon", "serve", "--service"])
            .arg(&svc)
            .args(["--addr", "127.0.0.1:0", "--addr-file"])
            .arg(&addr_file)
            .spawn()
            .unwrap(),
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never wrote its address file"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    let run = |args: &[&str]| {
        let out = pkgm().args(args).output().unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(
            out.status.success(),
            "pkgm {args:?} failed\nstdout: {stdout}\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        stdout
    };

    let stats = run(&["daemon", "stats", "--addr", &addr]);
    let parsed: serde_json::Value = serde_json::from_str(&stats).unwrap();
    assert_eq!(parsed.get("swaps").and_then(|v| v.as_u64()), Some(0));

    let reload = run(&[
        "daemon",
        "reload",
        "--addr",
        &addr,
        "--snapshot",
        snap.to_str().unwrap(),
    ]);
    let parsed: serde_json::Value = serde_json::from_str(&reload).unwrap();
    assert_eq!(parsed.get("swaps").and_then(|v| v.as_u64()), Some(1));

    let stopped = run(&["daemon", "stop", "--addr", &addr]);
    assert!(stopped.contains("stopped"));
    let status = daemon.0.wait().unwrap();
    assert!(status.success(), "daemon exited nonzero: {status:?}");
    std::fs::remove_dir_all(dir).ok();
}

//! Minimal `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional argument.
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Parse errors with the offending token.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a value, or a stray positional.
    Malformed(String),
    /// A required flag was absent.
    MissingFlag(String),
    /// A flag value failed to parse.
    BadValue(String, String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::Malformed(tok) => write!(f, "malformed argument: {tok}"),
            ArgError::MissingFlag(flag) => write!(f, "missing required flag --{flag}"),
            ArgError::BadValue(flag, v) => write!(f, "bad value for --{flag}: {v}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse `command --k v --k2 v2 …`.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
        let mut it = argv.into_iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::Malformed(tok));
            };
            let value = it.next().ok_or_else(|| ArgError::Malformed(tok.clone()))?;
            flags.insert(key.to_string(), value);
        }
        Ok(Args { command, flags })
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError::MissingFlag(key.to_string()))
    }

    /// Typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(key.to_string(), v.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(String::from)
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(argv("pretrain --dim 64 --out m.bin")).unwrap();
        assert_eq!(a.command, "pretrain");
        assert_eq!(a.get("dim"), Some("64"));
        assert_eq!(a.require("out").unwrap(), "m.bin");
        assert_eq!(a.get_or("epochs", 8usize).unwrap(), 8);
        assert_eq!(a.get_or("dim", 0usize).unwrap(), 64);
    }

    #[test]
    fn rejects_missing_command() {
        assert_eq!(Args::parse(argv("")).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            Args::parse(argv("--dim 64")).unwrap_err(),
            ArgError::MissingCommand
        );
    }

    #[test]
    fn rejects_dangling_flag_and_positionals() {
        assert!(matches!(
            Args::parse(argv("gen --dim")).unwrap_err(),
            ArgError::Malformed(_)
        ));
        assert!(matches!(
            Args::parse(argv("gen stray")).unwrap_err(),
            ArgError::Malformed(_)
        ));
    }

    #[test]
    fn reports_missing_and_bad_flags() {
        let a = Args::parse(argv("x --n abc")).unwrap();
        assert!(matches!(
            a.require("out").unwrap_err(),
            ArgError::MissingFlag(_)
        ));
        assert!(matches!(
            a.get_or::<usize>("n", 1).unwrap_err(),
            ArgError::BadValue(..)
        ));
    }
}

//! `pkgm` — command-line interface for the PKGM reproduction.
//!
//! Catalogs are regenerated deterministically from `--preset` + `--seed`, so
//! a saved service snapshot plus those two flags fully reproduce a session.
//!
//! ```text
//! pkgm stats    --preset small --seed 42
//! pkgm generate --preset small --seed 42 --out kg.tsv
//! pkgm pretrain --preset small --seed 42 --dim 32 --epochs 8 --k 10 --out svc.bin
//! pkgm serve    --preset small --seed 42 --service svc.bin --item 0
//! pkgm snapshot --service svc.bin --out serving.snap
//! pkgm eval     --preset small --seed 42 --service svc.bin --max-facts 300
//! ```

mod args;

use args::Args;
use pkgm_core::{
    eval, serialize, KnowledgeService, PkgmConfig, PkgmModel, ServiceSnapshot, TrainConfig, Trainer,
};
use pkgm_store::{EntityId, KgStats};
use pkgm_synth::{Catalog, CatalogConfig};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print_help();
        return;
    }
    match run(argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            print_help();
            std::process::exit(2);
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "stats" => stats(&args),
        "generate" => generate(&args),
        "pretrain" => pretrain(&args),
        "serve" => serve(&args),
        "snapshot" => snapshot(&args),
        "eval" => evaluate(&args),
        other => Err(format!("unknown subcommand: {other}").into()),
    }
}

fn catalog_from(args: &Args) -> Result<Catalog, Box<dyn std::error::Error>> {
    let seed: u64 = args.get_or("seed", 42)?;
    let preset = args.get("preset").unwrap_or("small");
    let cfg = match preset {
        "tiny" => CatalogConfig::tiny(seed),
        "small" => CatalogConfig::small(seed),
        "bench" => CatalogConfig::bench(seed),
        other => return Err(format!("unknown preset: {other} (tiny|small|bench)").into()),
    };
    eprintln!(
        "[pkgm] generating catalog preset={preset} seed={seed} ({} items)…",
        cfg.n_items()
    );
    Ok(Catalog::generate(&cfg))
}

fn stats(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let stats = KgStats::of(&catalog.store);
    println!("| | # items | # entity | # relation | # Triples |");
    println!("|---|---|---|---|---|");
    println!("{}", stats.table_row("catalog"));
    println!(
        "\nheld-out (true but missing) facts: {}",
        catalog.heldout.len()
    );
    println!("categories: {}", catalog.n_categories);
    Ok(())
}

fn generate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let out = args.require("out")?;
    let file = std::io::BufWriter::new(std::fs::File::create(out)?);
    pkgm_store::io::write_tsv(&catalog.store, &catalog.entities, &catalog.relations, file)?;
    println!("wrote {} triples to {out}", catalog.store.len());
    if let Some(meta) = args.get("items-out") {
        let items: Vec<serde_json::Value> = catalog
            .items
            .iter()
            .map(|m| {
                serde_json::json!({
                    "entity": m.entity.0,
                    "category": m.category,
                    "product": m.product,
                    "title": m.title.join(" "),
                })
            })
            .collect();
        std::fs::write(meta, serde_json::to_string_pretty(&items)?)?;
        println!("wrote {} item records to {meta}", items.len());
    }
    Ok(())
}

fn pretrain(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let dim: usize = args.get_or("dim", 32)?;
    let epochs: usize = args.get_or("epochs", 8)?;
    let k: usize = args.get_or("k", 10)?;
    let lr: f32 = args.get_or("lr", 5e-3)?;
    let margin: f32 = args.get_or("margin", 4.0)?;
    let out = args.require("out")?;

    let mut model = PkgmModel::new(
        catalog.store.n_entities() as usize,
        catalog.store.n_relations() as usize,
        PkgmConfig::new(dim).with_seed(args.get_or("seed", 42)?),
    );
    let cfg = TrainConfig {
        epochs,
        lr,
        margin,
        ..TrainConfig::default()
    };
    eprintln!("[pkgm] pre-training d={dim} epochs={epochs} lr={lr} margin={margin}…");
    let report = Trainer::new(&model, cfg).train(&mut model, &catalog.store);
    for (i, e) in report.epochs.iter().enumerate() {
        eprintln!(
            "[pkgm] epoch {}: mean loss {:.4}, violations {:.1}%",
            i + 1,
            e.mean_loss,
            e.violation_rate * 100.0
        );
    }
    let service = KnowledgeService::new(model, catalog.key_relation_selector(k));
    std::fs::write(out, serialize::service_to_bytes(&service))?;
    println!(
        "wrote service snapshot to {out} ({:.1} MiB, {:.1}s)",
        std::fs::metadata(out)?.len() as f64 / (1024.0 * 1024.0),
        report.wall_secs
    );
    Ok(())
}

fn load_service(args: &Args) -> Result<KnowledgeService, Box<dyn std::error::Error>> {
    let path = args.require("service")?;
    let bytes = std::fs::read(path)?;
    Ok(serialize::service_from_bytes(&bytes)?)
}

fn serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let service = load_service(args)?;
    let item = EntityId(args.get_or("item", 0u32)?);
    let meta = catalog
        .items
        .get(item.index())
        .ok_or_else(|| format!("item {} out of range", item.0))?;
    println!(
        "item {} — category {} — title: {}",
        item,
        meta.category,
        meta.title.join(" ")
    );
    println!("key relations (k = {}):", service.k());
    for &r in service.selector().for_item(item) {
        let rname = catalog.relations.name(r.0).unwrap_or("?");
        let preds = service.predict_tail(item, r, 3);
        let pred_names: Vec<String> = preds
            .iter()
            .map(|(e, d)| format!("{} ({d:.2})", catalog.entities.name(e.0).unwrap_or("?")))
            .collect();
        println!(
            "  {rname:<18} f_R = {:>7.3}  S_T top-3: {}",
            service.relation_exists_score(item, r),
            pred_names.join(", ")
        );
    }
    let (condensed, source): (Vec<f32>, &str) = match args.get("snapshot") {
        Some(path) => {
            let snap = serialize::snapshot_from_bytes(&std::fs::read(path)?)?;
            let row = snap
                .condensed(item)
                .ok_or_else(|| format!("item {} beyond snapshot table", item.0))?;
            (row.to_vec(), "precomputed snapshot")
        }
        None => (service.condensed_service(item), "live compute"),
    };
    println!(
        "condensed service ({source}): {} dims, ‖S‖₂ = {:.3}",
        condensed.len(),
        condensed.iter().map(|x| x * x).sum::<f32>().sqrt()
    );
    Ok(())
}

fn snapshot(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let service = load_service(args)?;
    let out = args.require("out")?;
    let start = std::time::Instant::now();
    let snap = ServiceSnapshot::build(&service);
    std::fs::write(out, serialize::snapshot_to_bytes(&snap))?;
    println!(
        "wrote serving snapshot to {out}: {} rows × {} dims ({:.1} MiB, built in {:.2}s)",
        snap.n_rows(),
        2 * snap.dim(),
        std::fs::metadata(out)?.len() as f64 / (1024.0 * 1024.0),
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let service = load_service(args)?;
    let max_facts: usize = args.get_or("max-facts", 300)?;
    let test: Vec<_> = catalog.heldout.iter().copied().take(max_facts).collect();
    eprintln!("[pkgm] ranking {} held-out facts…", test.len());
    let report = eval::rank_tails(service.model(), &test, Some(&catalog.store), &[1, 3, 10]);
    println!("completion of {} held-out facts:", report.n);
    println!("  MRR       {:.4}", report.mrr);
    println!("  mean rank {:.1}", report.mean_rank);
    for (k, h) in &report.hits {
        println!("  Hits@{k:<3}  {:.2}%", h * 100.0);
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
    let auc = eval::relation_existence_auc(service.model(), &catalog.store, 1000, &mut rng);
    println!("relation-existence AUC: {:.4}", auc.auc);
    Ok(())
}

fn print_help() {
    eprintln!(
        "pkgm — Pre-trained Knowledge Graph Model (ICDE 2021 reproduction)\n\n\
         USAGE: pkgm <command> [--flag value]…\n\n\
         COMMANDS\n\
         \u{20}  stats     --preset tiny|small|bench --seed N\n\
         \u{20}  generate  --preset P --seed N --out kg.tsv [--items-out items.json]\n\
         \u{20}  pretrain  --preset P --seed N --dim 32 --epochs 8 --k 10 [--lr 0.005]\n\
         \u{20}            [--margin 4] --out service.bin\n\
         \u{20}  serve     --preset P --seed N --service service.bin --item 0\n\
         \u{20}            [--snapshot serving.snap]\n\
         \u{20}  snapshot  --service service.bin --out serving.snap\n\
         \u{20}  eval      --preset P --seed N --service service.bin [--max-facts 300]\n"
    );
}

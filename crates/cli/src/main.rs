//! `pkgm` — command-line interface for the PKGM reproduction.
//!
//! Catalogs are regenerated deterministically from `--preset` + `--seed`, so
//! a saved service snapshot plus those two flags fully reproduce a session.
//!
//! ```text
//! pkgm stats      --preset small --seed 42
//! pkgm generate   --preset small --seed 42 --out kg.tsv
//! pkgm train      --preset small --seed 42 --dim 32 --epochs 8 --k 10 --out svc.bin
//!                 [--checkpoint-dir ckpts] [--checkpoint-every 1] [--keep-last 3]
//!                 [--resume ckpts]
//! pkgm train      --preset small --mem-budget 1000000 --out svc.bin
//!                 [--ooc-dir d] [--snapshot-out base]   # out-of-core blocks
//! pkgm train      --synthetic 2000000 --entities 1000000 --mem-budget 50000000 \
//!                 --ooc-dir d [--report-out r.json]     # streamed, no catalog
//! pkgm serve      --preset small --seed 42 --service svc.bin --item 0
//! pkgm snapshot   --service svc.bin --out serving.snap
//! pkgm snapshot   --service svc.bin --out s.pkgmss3 --format ss3 [--shards 4]
//! pkgm snapshot   --synthetic 10000000 --dim 16 --seed 42 --format ss3 \
//!                 --shards 8 --out big.pkgmss3      # streamed, O(1) memory
//! pkgm eval      --preset small --seed 42 --service svc.bin --max-facts 300
//! pkgm faultcheck [--dir scratch] [--seed 42]
//! pkgm netcheck   [--seed 42]                             # network chaos battery
//! pkgm daemon serve  --service svc.bin [--addr 127.0.0.1:7071] [--snapshot s.snap]
//!                    [--max-conns 1024] [--stall-timeout-ms 2000]
//! pkgm daemon reload --addr HOST:PORT --snapshot s.snap   # hot-swap, daemon-local path
//! pkgm daemon lookup --addr HOST:PORT --items 0,1,2       # rows as bit patterns (CI diff)
//! pkgm daemon stats  --addr HOST:PORT
//! pkgm daemon health --addr HOST:PORT                     # liveness + restart counters
//! pkgm daemon ready  --addr HOST:PORT                     # readiness gates, exit 1 if not
//! pkgm daemon stop   --addr HOST:PORT
//! pkgm router route  --addrs a:1,b:2 --items 0,1,2   # split/merge, bit-identical
//! pkgm router map    --addrs a:1,b:2                 # assembled shard topology
//! pkgm router supervise --snapshot base --service svc.bin [--items 0,1]
//! pkgm bench-qps  --preset tiny [--clients 4] [--requests 300] [--out qps.json]
//! ```
//!
//! All artifacts are written atomically (temp file + fsync + rename) inside a
//! CRC32-checksummed container; loads of corrupt or truncated files fail with
//! typed errors. Legacy raw files from older builds still load.

mod args;

use args::Args;
use pkgm_core::{
    eval, fault, load_latest_checkpoint, serialize, CheckpointConfig, Daemon, DaemonClient,
    DaemonConfig, GradKernel, KnowledgeService, OocConfig, OocReport, OocTrainer, PkgmConfig,
    PkgmModel, RetryPolicy, ServiceSnapshot, ShardRouter, StdIo, Supervisor, SyntheticTriples,
    TrainConfig, Trainer, TripleSource,
};
use pkgm_store::{EntityId, KgStats};
use pkgm_synth::{Catalog, CatalogConfig};
use std::path::PathBuf;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print_help();
        return;
    }
    match run(argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            print_help();
            std::process::exit(2);
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    // `daemon` alone takes an action positional before its flags:
    // `pkgm daemon [serve|reload|stats|stop] --flag value …`.
    if argv.first().map(String::as_str) == Some("daemon") {
        return daemon_cmd(argv);
    }
    // `router` follows the same action-positional shape:
    // `pkgm router [route|map|supervise] --flag value …`.
    if argv.first().map(String::as_str) == Some("router") {
        return router_cmd(argv);
    }
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "stats" => stats(&args),
        "generate" => generate(&args),
        // `train` is the primary name; `pretrain` stays as an alias.
        "train" | "pretrain" => pretrain(&args),
        "serve" => serve(&args),
        "snapshot" => snapshot(&args),
        "eval" => evaluate(&args),
        "faultcheck" => faultcheck(&args),
        "netcheck" => netcheck(&args),
        "bench-train" => bench_train(&args),
        "bench-eval" => bench_eval(&args),
        "bench-qps" => bench_qps(&args),
        "simd" => simd_info(),
        other => Err(format!("unknown subcommand: {other}").into()),
    }
}

/// Print the kernel dispatch report (the same line the daemon and the
/// benches log, and CI's `simd-smoke` job asserts on).
fn simd_info() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", pkgm_core::simd::describe());
    Ok(())
}

fn daemon_cmd(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let (action, rest) = match argv.get(1) {
        Some(tok) if !tok.starts_with("--") => (tok.clone(), argv[2..].to_vec()),
        _ => ("serve".to_string(), argv[1..].to_vec()),
    };
    let args = Args::parse(std::iter::once(format!("daemon-{action}")).chain(rest))?;
    match action.as_str() {
        "serve" => daemon_serve(&args),
        "reload" => daemon_reload(&args),
        "lookup" => daemon_lookup(&args),
        "stats" => daemon_stats(&args),
        "health" => daemon_health(&args),
        "ready" => daemon_ready(&args),
        "stop" => daemon_stop(&args),
        other => Err(format!(
            "unknown daemon action: {other} (serve|reload|lookup|stats|health|ready|stop)"
        )
        .into()),
    }
}

fn daemon_serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let service = load_service(args)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7071");
    let snapshot = match args.get("snapshot") {
        Some(path) => {
            let snap = serialize::open_snapshot_file(std::path::Path::new(path))?;
            let shard = snap.shard();
            let shard_note = if shard.is_whole_table() {
                String::new()
            } else {
                format!(
                    ", shard {} of {} covering ids {}..{}",
                    shard.shard_id,
                    shard.n_shards,
                    shard.row_start,
                    shard.row_start + snap.n_rows() as u64
                )
            };
            eprintln!(
                "[pkgm] snapshot {path}: {} rows × {} dims, backing {}{shard_note}",
                snap.n_rows(),
                2 * snap.dim(),
                snap.backing().label()
            );
            Some(snap)
        }
        None => None,
    };
    let defaults = DaemonConfig::default();
    let cfg = DaemonConfig {
        workers: args.get_or("workers", defaults.workers)?,
        max_batch_items: args.get_or("max-batch-items", defaults.max_batch_items)?,
        queue_capacity: args.get_or("queue-capacity", defaults.queue_capacity)?,
        cache_capacity: args.get_or("cache-capacity", defaults.cache_capacity)?,
        max_conns: args.get_or("max-conns", defaults.max_conns)?,
        stall_timeout: std::time::Duration::from_millis(args.get_or(
            "stall-timeout-ms",
            defaults.stall_timeout.as_millis() as u64,
        )?),
    };
    eprintln!("[pkgm] {}", pkgm_core::simd::describe());
    let daemon = Daemon::start(addr, service, snapshot, cfg.clone())?;
    let local = daemon.local_addr();
    // Scripts and CI start the daemon with `--addr 127.0.0.1:0` and read
    // the resolved ephemeral address back from this file.
    if let Some(path) = args.get("addr-file") {
        std::fs::write(path, local.to_string())?;
    }
    eprintln!(
        "[pkgm] daemon listening on {local} ({} workers, batch ≤ {}, queue ≤ {}); \
         stop with `pkgm daemon stop --addr {local}`",
        cfg.workers, cfg.max_batch_items, cfg.queue_capacity
    );
    daemon.wait();
    eprintln!("[pkgm] daemon stopped");
    Ok(())
}

fn daemon_client(args: &Args) -> Result<DaemonClient, Box<dyn std::error::Error>> {
    Ok(DaemonClient::connect(args.require("addr")?)?)
}

fn daemon_reload(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let snapshot = args.require("snapshot")?;
    let summary = daemon_client(args)?.reload(snapshot)?;
    println!("{}", serde_json::to_string_pretty(&summary)?);
    Ok(())
}

/// Look up items over the wire and print their rows as deterministic JSON:
/// each float as its IEEE-754 bit pattern (u32), so two daemons serving the
/// same table produce byte-identical output — the CI bit-exactness gate
/// diffs this directly.
fn daemon_lookup(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let items = parse_items(args.require("items")?)?;
    let rows = daemon_client(args)?.lookup(&items)?;
    println!("{}", serde_json::to_string(&rows_bits_json(&items, &rows))?);
    Ok(())
}

/// A comma-separated `--items` list as ids.
fn parse_items(spec: &str) -> Result<Vec<u32>, Box<dyn std::error::Error>> {
    let items: Vec<u32> = spec
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad item id: {t}"))
        })
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err("--items must name at least one id".into());
    }
    Ok(items)
}

/// Rows as IEEE-754 bit patterns in the `daemon lookup` JSON shape — the
/// router's output must diff byte-identical against a whole-table daemon's.
fn rows_bits_json(items: &[u32], rows: &[Vec<f32>]) -> serde_json::Value {
    let rows_bits: Vec<Vec<u32>> = rows
        .iter()
        .map(|r| r.iter().map(|x| x.to_bits()).collect())
        .collect();
    serde_json::json!({
        "items": items,
        "row_len": rows.first().map(Vec::len).unwrap_or(0),
        "rows_bits": rows_bits,
    })
}

fn daemon_stats(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let stats = daemon_client(args)?.stats()?;
    println!("{}", serde_json::to_string_pretty(&stats)?);
    Ok(())
}

fn daemon_health(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let health = daemon_client(args)?.health()?;
    println!("{}", serde_json::to_string_pretty(&health)?);
    Ok(())
}

fn daemon_ready(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let ready = daemon_client(args)?.ready_json()?;
    println!("{}", serde_json::to_string_pretty(&ready)?);
    if ready.get("ready").and_then(serde_json::Value::as_bool) != Some(true) {
        // Exit nonzero without usage noise: readiness probes gate on codes.
        std::process::exit(1);
    }
    Ok(())
}

fn daemon_stop(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    daemon_client(args)?.shutdown()?;
    println!("daemon at {} stopped", args.require("addr")?);
    Ok(())
}

fn router_cmd(argv: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let (action, rest) = match argv.get(1) {
        Some(tok) if !tok.starts_with("--") => (tok.clone(), argv[2..].to_vec()),
        _ => ("route".to_string(), argv[1..].to_vec()),
    };
    let args = Args::parse(std::iter::once(format!("router-{action}")).chain(rest))?;
    match action.as_str() {
        "route" => router_route(&args),
        "map" => router_map(&args),
        "supervise" => router_supervise(&args),
        other => Err(format!("unknown router action: {other} (route|map|supervise)").into()),
    }
}

/// The comma-separated `--addrs` list of shard-daemon addresses.
fn router_addrs(args: &Args) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let addrs: Vec<String> = args
        .require("addrs")?
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err("--addrs must name at least one daemon".into());
    }
    Ok(addrs)
}

fn connect_router(
    addrs: &[String],
    args: &Args,
) -> Result<ShardRouter, Box<dyn std::error::Error>> {
    let mut router = ShardRouter::connect(addrs, RetryPolicy::default())?;
    router.max_redirects = args.get_or("max-redirects", router.max_redirects)?;
    Ok(router)
}

/// Route one batch lookup across the shard fleet and print it in the exact
/// `daemon lookup` JSON shape — CI diffs the two outputs for bit-identity.
fn router_route(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let addrs = router_addrs(args)?;
    let items = parse_items(args.require("items")?)?;
    let mut router = connect_router(&addrs, args)?;
    eprintln!(
        "[pkgm] router: {} shard(s) mapping {} rows",
        router.map().n_shards(),
        router.map().total_rows()
    );
    let rows = router.lookup(&items)?;
    println!("{}", serde_json::to_string(&rows_bits_json(&items, &rows))?);
    let stats = router.stats();
    eprintln!(
        "[pkgm] routed as {} sub-lookup(s), {} redirect(s), {} map load(s)",
        stats.sub_lookups, stats.redirects, stats.map_loads
    );
    Ok(())
}

/// Print the assembled shard topology as JSON.
fn router_map(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let addrs = router_addrs(args)?;
    let router = connect_router(&addrs, args)?;
    let map = router.map();
    let shards: Vec<serde_json::Value> = map
        .entries()
        .iter()
        .map(|e| {
            serde_json::json!({
                "shard_id": e.shard_id,
                "addr": e.addr,
                "row_start": e.row_start,
                "rows": e.n_rows,
            })
        })
        .collect();
    let out = serde_json::json!({
        "n_shards": map.n_shards(),
        "total_rows": map.total_rows(),
        "shards": shards,
    });
    println!("{}", serde_json::to_string_pretty(&out)?);
    Ok(())
}

/// Spawn one `pkgm daemon serve` per discovered `base.shard{K}of{N}` file
/// and gate on every daemon's readiness probe. With `--items`, route one
/// batch through the fleet, print it in `daemon lookup` shape, and tear the
/// fleet down (the self-contained CI smoke); otherwise supervise until
/// stdin closes.
fn router_supervise(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let base = PathBuf::from(args.require("snapshot")?);
    let service = PathBuf::from(args.require("service")?);
    let shard_files = pkgm_core::router::discover_shard_files(&base)?;
    eprintln!(
        "[pkgm] supervisor: spawning {} shard daemon(s)…",
        shard_files.len()
    );
    let exe = std::env::current_exe()?;
    let fleet = Supervisor::spawn(&exe, &service, &shard_files)?;
    let addrs = fleet.addrs();
    for (d, addr) in fleet.daemons().iter().zip(&addrs) {
        eprintln!("[pkgm]   {} → {addr}", d.snapshot.display());
    }
    if let Some(path) = args.get("addrs-out") {
        std::fs::write(path, addrs.join(",") + "\n")?;
    }
    match args.get("items") {
        Some(spec) => {
            let items = parse_items(spec)?;
            let mut router = connect_router(&addrs, args)?;
            let rows = router.lookup(&items)?;
            println!("{}", serde_json::to_string(&rows_bits_json(&items, &rows))?);
            fleet.shutdown()?;
        }
        None => {
            eprintln!("[pkgm] fleet ready; supervising until stdin closes…");
            let _ = std::io::read_to_string(std::io::stdin());
            fleet.shutdown()?;
            eprintln!("[pkgm] fleet stopped");
        }
    }
    Ok(())
}

fn catalog_from(args: &Args) -> Result<Catalog, Box<dyn std::error::Error>> {
    let seed: u64 = args.get_or("seed", 42)?;
    let preset = args.get("preset").unwrap_or("small");
    let cfg = match preset {
        "tiny" => CatalogConfig::tiny(seed),
        "small" => CatalogConfig::small(seed),
        "bench" => CatalogConfig::bench(seed),
        other => return Err(format!("unknown preset: {other} (tiny|small|bench)").into()),
    };
    eprintln!(
        "[pkgm] generating catalog preset={preset} seed={seed} ({} items)…",
        cfg.n_items()
    );
    Ok(Catalog::generate(&cfg))
}

fn stats(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let stats = KgStats::of(&catalog.store);
    println!("| | # items | # entity | # relation | # Triples |");
    println!("|---|---|---|---|---|");
    println!("{}", stats.table_row("catalog"));
    println!(
        "\nheld-out (true but missing) facts: {}",
        catalog.heldout.len()
    );
    println!("categories: {}", catalog.n_categories);
    Ok(())
}

fn generate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let out = args.require("out")?;
    let file = std::io::BufWriter::new(std::fs::File::create(out)?);
    pkgm_store::io::write_tsv(&catalog.store, &catalog.entities, &catalog.relations, file)?;
    println!("wrote {} triples to {out}", catalog.store.len());
    if let Some(meta) = args.get("items-out") {
        let items: Vec<serde_json::Value> = catalog
            .items
            .iter()
            .map(|m| {
                serde_json::json!({
                    "entity": m.entity.0,
                    "category": m.category,
                    "product": m.product,
                    "title": m.title.join(" "),
                })
            })
            .collect();
        std::fs::write(meta, serde_json::to_string_pretty(&items)?)?;
        println!("wrote {} item records to {meta}", items.len());
    }
    Ok(())
}

fn pretrain(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    // `--mem-budget BYTES` switches to the out-of-core trainer: the
    // embedding table lives in entity-range partition files and is paged
    // in (at most two partitions per block) under the budget.
    if args.get("mem-budget").is_some() || args.get("synthetic").is_some() {
        return ooc_pretrain(args);
    }
    let catalog = catalog_from(args)?;
    let dim: usize = args.get_or("dim", 32)?;
    let epochs: usize = args.get_or("epochs", 8)?;
    let k: usize = args.get_or("k", 10)?;
    let lr: f32 = args.get_or("lr", 5e-3)?;
    let margin: f32 = args.get_or("margin", 4.0)?;
    let out = args.require("out")?;
    let io = StdIo;

    // --resume DIR implies checkpointing into the same directory.
    let resume_dir = args.get("resume").map(PathBuf::from);
    let ckpt_dir = args
        .get("checkpoint-dir")
        .map(PathBuf::from)
        .or_else(|| resume_dir.clone());

    let (mut model, mut trainer) = match &resume_dir {
        Some(dir) => {
            let scan = load_latest_checkpoint(&io, dir)?;
            for (path, why) in &scan.skipped {
                eprintln!(
                    "[pkgm] warning: skipping invalid checkpoint {}: {why}",
                    path.display()
                );
            }
            match scan.resumed {
                Some(state) => {
                    eprintln!(
                        "[pkgm] resuming from {} (epoch {} of {epochs})",
                        state.path.display(),
                        state.trainer.epochs_done()
                    );
                    let mut trainer = state.trainer;
                    // The checkpoint's config wins (bit-exact resume); only
                    // the epoch target is taken from the command line.
                    trainer.cfg.epochs = epochs;
                    (state.model, trainer)
                }
                None => {
                    eprintln!(
                        "[pkgm] warning: no valid checkpoint in {}, starting fresh",
                        dir.display()
                    );
                    fresh_trainer(args, &catalog, dim, epochs, lr, margin)?
                }
            }
        }
        None => fresh_trainer(args, &catalog, dim, epochs, lr, margin)?,
    };

    eprintln!("[pkgm] pre-training d={dim} epochs={epochs} lr={lr} margin={margin}…");
    let first_epoch = trainer.epochs_done();
    let report = match &ckpt_dir {
        Some(dir) => {
            let ckpt = CheckpointConfig {
                dir: dir.clone(),
                every: args.get_or("checkpoint-every", 1)?,
                keep_last: args.get_or("keep-last", 3)?,
            };
            trainer.train_with_checkpoints(&mut model, &catalog.store, &ckpt, &io)?
        }
        None => trainer.train(&mut model, &catalog.store),
    };
    for (i, e) in report.epochs.iter().enumerate() {
        eprintln!(
            "[pkgm] epoch {}: mean loss {:.4}, violations {:.1}%",
            first_epoch + i + 1,
            e.mean_loss,
            e.violation_rate * 100.0
        );
    }
    if let Some(why) = &report.halted {
        // The guard tripped: refuse to write a garbage service. The last
        // good checkpoint (if any) is the recovery point.
        return Err(format!(
            "training halted without writing {out}: {why}{}",
            ckpt_dir
                .as_deref()
                .map(|d| format!(" (last good checkpoint in {})", d.display()))
                .unwrap_or_default()
        )
        .into());
    }
    let service = KnowledgeService::new(model, catalog.key_relation_selector(k));
    serialize::write_service_file(&io, std::path::Path::new(out), &service)?;
    println!(
        "wrote service snapshot to {out} ({:.1} MiB, {:.1}s)",
        std::fs::metadata(out)?.len() as f64 / (1024.0 * 1024.0),
        report.wall_secs
    );
    Ok(())
}

/// A model + trainer initialized from scratch (no checkpoint to resume).
fn fresh_trainer(
    args: &Args,
    catalog: &Catalog,
    dim: usize,
    epochs: usize,
    lr: f32,
    margin: f32,
) -> Result<(PkgmModel, Trainer), Box<dyn std::error::Error>> {
    let seed: u64 = args.get_or("seed", 42)?;
    let model = PkgmModel::new(
        catalog.store.n_entities() as usize,
        catalog.store.n_relations() as usize,
        PkgmConfig::new(dim).with_seed(seed),
    );
    let cfg = TrainConfig {
        epochs,
        lr,
        margin,
        seed,
        parallel: args.get_or("parallel", true)?,
        // Serial and parallel runs of the same chunk layout are
        // bit-identical; `--chunk-size N` pins the layout (and with it the
        // corruption RNG streams) so runs reproduce across hosts with
        // different thread counts. Unset, the layout adapts to the batch
        // and thread count.
        chunk_size: args.get("chunk-size").map(str::parse).transpose()?,
        ..TrainConfig::default()
    };
    let trainer = Trainer::new(&model, cfg);
    Ok((model, trainer))
}

/// Out-of-core pre-training (`train --mem-budget BYTES`): the embedding
/// table lives in entity-range partition files under `--ooc-dir`, with at
/// most two partitions resident per training block. One partition (the
/// budget fits everything) is bit-identical to the resident trainer;
/// multi-partition runs are seed-deterministic and resume from the
/// persisted block cursor after a kill.
///
/// `--synthetic N` trains on N streamed deterministic triples over
/// `--entities`/`--relations` id spaces — no catalog, no service output;
/// this is the 1M+-entity regime the RSS-budget bench exercises.
fn ooc_pretrain(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mem_budget: usize = args
        .require("mem-budget")?
        .parse()
        .map_err(|_| "bad value for --mem-budget (bytes)")?;
    let dim: usize = args.get_or("dim", 32)?;
    let epochs: usize = args.get_or("epochs", 8)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let train = TrainConfig {
        epochs,
        lr: args.get_or("lr", 5e-3)?,
        margin: args.get_or("margin", 4.0)?,
        seed,
        parallel: args.get_or("parallel", true)?,
        chunk_size: args.get("chunk-size").map(str::parse).transpose()?,
        ..TrainConfig::default()
    };
    let model_cfg = PkgmConfig::new(dim).with_seed(seed);

    if let Some(n_triples) = args.get("synthetic") {
        let source = SyntheticTriples {
            n_entities: args.get_or("entities", 100_000u32)?,
            n_relations: args.get_or("relations", 16u32)?,
            n_triples: n_triples
                .parse()
                .map_err(|_| format!("bad value for --synthetic: {n_triples}"))?,
            seed,
        };
        let dir = PathBuf::from(args.require("ooc-dir")?);
        let mut trainer = ooc_open(dir, model_cfg, train, mem_budget, &source)?;
        let report = run_ooc(&mut trainer, &source)?;
        if let Some(out) = args.get("report-out") {
            std::fs::write(out, serde_json::to_string_pretty(&report)?)?;
            eprintln!("[pkgm] wrote {out}");
        }
        return Ok(());
    }

    let catalog = catalog_from(args)?;
    let out = args.require("out")?;
    let dir = args
        .get("ooc-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{out}.ooc")));
    let mut trainer = ooc_open(dir, model_cfg, train, mem_budget, &catalog.store)?;
    let report = run_ooc(&mut trainer, &catalog.store)?;
    if let Some(why) = &report.halted {
        // Same contract as the resident path: never write a garbage
        // service. The partition files are the warm-start recovery point.
        return Err(format!("training halted without writing {out}: {why}").into());
    }
    let k: usize = args.get_or("k", 10)?;
    let selector = catalog.key_relation_selector(k);
    if let Some(base) = args.get("snapshot-out") {
        // Streamed per-partition PKGMSS3 shards: the full table is never
        // resident, so this path works at any scale the training did.
        for p in trainer.write_snapshots(&selector, std::path::Path::new(base))? {
            println!("wrote PKGMSS3 shard {}", p.display());
        }
    }
    // The service file assembles the full table once — only useful for
    // catalogs that fit RAM, which is exactly where a resident service is
    // wanted (eval, the parity gates).
    let model = trainer.assemble_model()?;
    let service = KnowledgeService::new(model, selector);
    serialize::write_service_file(&StdIo, std::path::Path::new(out), &service)?;
    println!(
        "wrote service snapshot to {out} ({:.1} MiB, {:.1}s)",
        std::fs::metadata(out)?.len() as f64 / (1024.0 * 1024.0),
        report.wall_secs
    );
    Ok(())
}

/// Open out-of-core state in `dir`: resume the manifest if one exists (the
/// persisted config wins — bit-exact continuation), else initialize fresh.
fn ooc_open<S: TripleSource + ?Sized>(
    dir: PathBuf,
    model: PkgmConfig,
    train: TrainConfig,
    mem_budget: usize,
    source: &S,
) -> Result<OocTrainer, Box<dyn std::error::Error>> {
    // The manifest name is part of the on-disk contract (see `ooc`'s docs).
    if dir.join("ooc-manifest.pkgm").exists() {
        eprintln!(
            "[pkgm] resuming out-of-core state in {} (its recorded config wins)",
            dir.display()
        );
        return Ok(OocTrainer::resume(&dir)?);
    }
    let cfg = OocConfig {
        model,
        train,
        mem_budget,
        dir,
    };
    Ok(OocTrainer::new(source, cfg)?)
}

/// Run the out-of-core trainer to its epoch target, echoing per-epoch
/// stats. A mid-epoch resume reports a partial first entry covering only
/// the blocks it ran.
fn run_ooc<S: TripleSource + ?Sized>(
    trainer: &mut OocTrainer,
    source: &S,
) -> Result<OocReport, Box<dyn std::error::Error>> {
    eprintln!(
        "[pkgm] out-of-core pre-training: {} partition(s) under {} B budget, epoch {} → {}…",
        trainer.n_partitions(),
        trainer.config().mem_budget,
        trainer.epochs_done(),
        trainer.config().train.epochs
    );
    let first = trainer.epochs_done();
    let report = trainer.train(source)?;
    for (i, e) in report.epochs.iter().enumerate() {
        eprintln!(
            "[pkgm] epoch {}: mean loss {:.4}, violations {:.1}%",
            first + i + 1,
            e.mean_loss,
            e.violation_rate * 100.0
        );
    }
    eprintln!(
        "[pkgm] ran {} block(s) in {:.1}s",
        report.blocks, report.wall_secs
    );
    if let Some(why) = &report.halted {
        eprintln!("[pkgm] warning: training halted: {why}");
    }
    Ok(report)
}

/// Quick before/after training-throughput check: one timed run per gradient
/// kernel over the same catalog, same seeds, same corruption streams.
fn bench_train(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let dim: usize = args.get_or("dim", 64)?;
    let epochs: usize = args.get_or("epochs", 1)?;
    let negatives: usize = args.get_or("negatives", 1)?;
    let parallel: bool = args.get_or("parallel", false)?;

    let mut rows = Vec::new();
    let mut rates = Vec::new();
    println!("| kernel | pairs | wall (s) | pairs/sec |");
    println!("|---|---|---|---|");
    for kernel in [GradKernel::Baseline, GradKernel::Fused] {
        let mut model = PkgmModel::new(
            catalog.store.n_entities() as usize,
            catalog.store.n_relations() as usize,
            PkgmConfig::new(dim).with_seed(seed),
        );
        let cfg = TrainConfig {
            epochs,
            negatives,
            seed,
            parallel,
            chunk_size: args.get("chunk-size").map(str::parse).transpose()?,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(&model, cfg);
        trainer.set_kernel(kernel);
        let name = match kernel {
            GradKernel::Fused => "fused",
            GradKernel::Baseline => "baseline",
        };
        let start = std::time::Instant::now();
        let mut pairs = 0usize;
        for epoch in 0..epochs {
            pairs += trainer
                .train_epoch(&mut model, &catalog.store, epoch as u64)
                .pairs;
        }
        let wall = start.elapsed().as_secs_f64();
        let pps = pairs as f64 / wall;
        println!("| {name} | {pairs} | {wall:.3} | {pps:.0} |");
        rows.push(serde_json::json!({
            "kernel": name,
            "pairs": pairs,
            "wall_secs": wall,
            "pairs_per_sec": pps,
        }));
        rates.push(pps);
    }
    let speedup = rates[1] / rates[0]; // [baseline, fused] run order

    println!("\nfused vs baseline: {speedup:.2}×");
    if let Some(out) = args.get("out") {
        let report = serde_json::json!({
            "benchmark": "bench-train",
            "dim": dim,
            "epochs": epochs,
            "negatives": negatives,
            "parallel": parallel,
            "results": rows,
            "fused_vs_baseline": speedup,
        });
        std::fs::write(out, serde_json::to_string_pretty(&report)?)?;
        eprintln!("[pkgm] wrote {out}");
    }
    Ok(())
}

/// Quick before/after evaluation-throughput check: rank the same held-out
/// facts with the pre-kernel baseline and the fused ranking kernels. Fused
/// ranks are bit-identical to the reference scan (parity-suite contract);
/// only the wall clock should move. With `--quantized true`, the int8
/// two-phase kernel runs as a third column (also bit-identical) and the
/// report gains prune-rate and scanned-bytes fields.
fn bench_eval(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    use pkgm_core::eval_kernels::{
        baseline_rank_heads, baseline_rank_tails, fused_rank_heads, fused_rank_tails,
        quantized_rank_heads_with_stats, quantized_rank_tails_with_stats,
    };
    let catalog = catalog_from(args)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let dim: usize = args.get_or("dim", 64)?;
    let epochs: usize = args.get_or("epochs", 1)?;
    let n_tails: usize = args.get_or("tails", 128)?;
    let n_heads: usize = args.get_or("heads", 32)?;
    let quantized: bool = args.get_or("quantized", false)?;
    // `--threads N` pins the rayon pool for the candidate-slice fan-out;
    // it must be set before the first rayon call builds the global pool.
    let threads: Option<usize> = args.get("threads").map(str::parse).transpose()?;
    if let Some(n) = threads {
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }
    eprintln!("[pkgm] {}", pkgm_core::simd::describe());
    let ks = [1usize, 10];

    let mut model = PkgmModel::new(
        catalog.store.n_entities() as usize,
        catalog.store.n_relations() as usize,
        PkgmConfig::new(dim).with_seed(seed),
    );
    // A short warm-up puts true triples near the top of the ranking, which
    // is the regime the fused kernels' early exit sees after real training.
    let cfg = TrainConfig {
        epochs,
        seed,
        ..TrainConfig::default()
    };
    Trainer::new(&model, cfg).train(&mut model, &catalog.store);

    let tails_test: Vec<pkgm_store::Triple> =
        catalog.heldout.iter().copied().take(n_tails).collect();
    let heads_test: Vec<pkgm_store::Triple> =
        catalog.heldout.iter().copied().take(n_heads).collect();
    let qmodel = quantized.then(|| pkgm_core::QuantEvalModel::build(&model));
    let kernels: &[&str] = if quantized {
        &["baseline", "fused", "quantized"]
    } else {
        &["baseline", "fused"]
    };

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut quant_speedups = Vec::new();
    println!("| mode | kernel | triples | wall (s) | triples/sec | MRR |");
    println!("|---|---|---|---|---|---|");
    for (mode, test) in [("tails", &tails_test), ("heads", &heads_test)] {
        let mut rates = Vec::new();
        for &kernel in kernels {
            let mut prune_stats = None;
            let start = std::time::Instant::now();
            let report = match (mode, kernel) {
                ("tails", "baseline") => {
                    baseline_rank_tails(&model, test, Some(&catalog.store), &ks)
                }
                ("tails", "fused") => eval::summarize_ranks(
                    &fused_rank_tails(&model, test, Some(&catalog.store))?,
                    &ks,
                ),
                ("tails", "quantized") => {
                    let (ranks, stats) = quantized_rank_tails_with_stats(
                        &model,
                        qmodel.as_ref().expect("quantized flag set"),
                        test,
                        Some(&catalog.store),
                    )?;
                    prune_stats = Some(stats);
                    eval::summarize_ranks(&ranks, &ks)
                }
                ("heads", "baseline") => {
                    baseline_rank_heads(&model, test, Some(&catalog.store), &ks)
                }
                ("heads", "quantized") => {
                    let (ranks, stats) = quantized_rank_heads_with_stats(
                        &model,
                        qmodel.as_ref().expect("quantized flag set"),
                        test,
                        Some(&catalog.store),
                    )?;
                    prune_stats = Some(stats);
                    eval::summarize_ranks(&ranks, &ks)
                }
                _ => eval::summarize_ranks(
                    &fused_rank_heads(&model, test, Some(&catalog.store))?,
                    &ks,
                ),
            };
            let wall = start.elapsed().as_secs_f64();
            let tps = report.n as f64 / wall;
            println!(
                "| {mode} | {kernel} | {} | {wall:.3} | {tps:.1} | {:.3} |",
                report.n, report.mrr
            );
            let mut row = serde_json::json!({
                "mode": mode,
                "kernel": kernel,
                "triples": report.n,
                "wall_secs": wall,
                "triples_per_sec": tps,
                "mrr": report.mrr,
            });
            if let Some(s) = &prune_stats {
                let extra = serde_json::json!({
                    "candidates": s.candidates,
                    "survivors": s.survivors,
                    "prune_rate": s.prune_rate(),
                    "scanned_bytes": s.scanned_bytes,
                    "scanned_bytes_per_candidate": s.bytes_per_candidate(),
                });
                if let (serde_json::Value::Object(pairs), serde_json::Value::Object(more)) =
                    (&mut row, extra)
                {
                    pairs.extend(more);
                }
            }
            rows.push(row);
            rates.push(tps);
        }
        let speedup = rates[1] / rates[0]; // [baseline, fused, quantized?] run order
        println!("\nfused vs baseline ({mode}, filtered): {speedup:.2}×");
        speedups.push((mode, speedup));
        if quantized {
            let qs = rates[2] / rates[1];
            println!("quantized vs fused ({mode}, filtered): {qs:.2}×");
            quant_speedups.push(qs);
        }
        println!();
    }
    if let Some(out) = args.get("out") {
        let mut report = serde_json::json!({
            "benchmark": "bench-eval",
            "dim": dim,
            "epochs": epochs,
            "quantized": quantized,
            "threads": threads.unwrap_or_else(rayon::current_num_threads),
            "simd": pkgm_core::simd::active().level.name(),
            "results": rows,
            "fused_vs_baseline_tails": speedups[0].1,
            "fused_vs_baseline_heads": speedups[1].1,
        });
        if quantized {
            let extra = serde_json::json!({
                "quantized_vs_fused_tails": quant_speedups[0],
                "quantized_vs_fused_heads": quant_speedups[1],
            });
            if let (serde_json::Value::Object(pairs), serde_json::Value::Object(more)) =
                (&mut report, extra)
            {
                pairs.extend(more);
            }
        }
        std::fs::write(out, serde_json::to_string_pretty(&report)?)?;
        eprintln!("[pkgm] wrote {out}");
    }
    Ok(())
}

/// Nearest-rank percentile of an ascending-sorted latency sample.
fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Self-contained QPS smoke: an in-process daemon on an ephemeral port,
/// closed-loop clients, and one snapshot hot-swap mid-run. The untrained
/// model is deliberate — network + batching throughput does not depend on
/// the embedding values, and skipping training keeps this runnable in CI.
/// The deep sweep lives in `pkgm-bench`'s `qps_scale` binary.
fn bench_qps(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let dim: usize = args.get_or("dim", 32)?;
    let k: usize = args.get_or("k", 4)?;
    let clients: usize = args.get_or("clients", 4)?;
    let requests: usize = args.get_or("requests", 300)?;
    let batch: usize = args.get_or("batch", 16)?;

    let model = PkgmModel::new(
        catalog.store.n_entities() as usize,
        catalog.store.n_relations() as usize,
        PkgmConfig::new(dim).with_seed(seed),
    );
    let service = KnowledgeService::new(model, catalog.key_relation_selector(k));
    let snap = ServiceSnapshot::build(&service);
    let dir = std::env::temp_dir().join(format!("pkgm-bench-qps-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let snap_path = dir.join("reload.pkgmss");
    serialize::write_snapshot_file(&StdIo, &snap_path, &snap)?;

    let daemon = Daemon::start("127.0.0.1:0", service, Some(snap), DaemonConfig::default())?;
    let addr = daemon.local_addr().to_string();
    let n_items = catalog.items.len().max(1) as u32;
    eprintln!(
        "[pkgm] bench-qps: {clients} closed-loop clients × {requests} lookups × {batch} items \
         against {addr}"
    );

    let start = std::time::Instant::now();
    let latencies: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                s.spawn(move || -> Result<Vec<u64>, String> {
                    let mut client = DaemonClient::connect(&addr).map_err(|e| e.to_string())?;
                    let mut lat = Vec::with_capacity(requests);
                    for r in 0..requests {
                        let items: Vec<u32> = (0..batch)
                            .map(|i| ((c * 31 + r * 7 + i) as u32) % n_items)
                            .collect();
                        let t = std::time::Instant::now();
                        let rows = client
                            .lookup(&items)
                            .map_err(|e| format!("client {c} request {r}: {e}"))?;
                        lat.push(t.elapsed().as_nanos() as u64);
                        if rows.len() != items.len() {
                            return Err(format!("client {c} request {r}: row count mismatch"));
                        }
                    }
                    Ok(lat)
                })
            })
            .collect();
        // One hot-swap while the clients are mid-run.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let reload = DaemonClient::connect(&addr)
            .and_then(|mut c| c.reload(snap_path.to_str().expect("utf-8 temp path")));
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("client thread panicked")
                    .map_err(|e| -> Box<dyn std::error::Error> { e.into() })
            })
            .collect::<Result<Vec<_>, _>>()
            .and_then(|lats| reload.map(|_| lats).map_err(|e| e.into()))
    })?;
    let wall = start.elapsed().as_secs_f64();

    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let total_lookups = all.len() as f64;
    let qps = total_lookups / wall;
    let swaps = daemon.swaps();
    let stats = DaemonClient::connect(&addr)?.stats()?;
    let protocol_errors = stats
        .get("protocol_errors")
        .and_then(|v| v.as_u64())
        .unwrap_or(u64::MAX);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let ms = |ns: u64| ns as f64 / 1e6;
    let (p50, p99, p999) = (
        ms(percentile_ns(&all, 50.0)),
        ms(percentile_ns(&all, 99.0)),
        ms(percentile_ns(&all, 99.9)),
    );
    println!("| clients | lookups | wall (s) | QPS | items/s | p50 (ms) | p99 (ms) | p99.9 (ms) |");
    println!("|---|---|---|---|---|---|---|---|");
    println!(
        "| {clients} | {total_lookups:.0} | {wall:.3} | {qps:.0} | {:.0} | {p50:.3} | {p99:.3} | {p999:.3} |",
        qps * batch as f64
    );
    println!("\nhot-swaps completed mid-run: {swaps}, protocol errors: {protocol_errors}");
    if swaps < 1 {
        return Err("bench-qps: no hot-swap completed under load".into());
    }
    if protocol_errors != 0 {
        return Err(format!("bench-qps: {protocol_errors} protocol errors").into());
    }
    if let Some(out) = args.get("out") {
        let report = serde_json::json!({
            "benchmark": "bench-qps",
            "dim": dim,
            "clients": clients,
            "requests_per_client": requests,
            "batch": batch,
            "total_lookups": total_lookups,
            "wall_secs": wall,
            "qps": qps,
            "items_per_sec": qps * batch as f64,
            "p50_ms": p50,
            "p99_ms": p99,
            "p999_ms": p999,
            "hot_swaps": swaps,
            "protocol_errors": protocol_errors,
        });
        std::fs::write(out, serde_json::to_string_pretty(&report)?)?;
        eprintln!("[pkgm] wrote {out}");
    }
    Ok(())
}

fn load_service(args: &Args) -> Result<KnowledgeService, Box<dyn std::error::Error>> {
    let path = args.require("service")?;
    Ok(serialize::read_service_file(
        &StdIo,
        std::path::Path::new(path),
    )?)
}

fn serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let service = load_service(args)?;
    let item = EntityId(args.get_or("item", 0u32)?);
    // Degraded mode: an unknown item is served the documented fallback
    // instead of an error — a serving fleet must answer every query.
    let known = (item.0 as usize) < service.model().n_entities();
    match catalog.items.get(item.index()) {
        Some(meta) => println!(
            "item {} — category {} — title: {}",
            item,
            meta.category,
            meta.title.join(" ")
        ),
        None => eprintln!("[pkgm] warning: item {item} not in catalog — serving fallback"),
    }
    if known {
        println!("key relations (k = {}):", service.k());
        for &r in service.selector().for_item(item) {
            let rname = catalog.relations.name(r.0).unwrap_or("?");
            let preds = service.predict_tail(item, r, 3);
            let pred_names: Vec<String> = preds
                .iter()
                .map(|(e, d)| format!("{} ({d:.2})", catalog.entities.name(e.0).unwrap_or("?")))
                .collect();
            println!(
                "  {rname:<18} f_R = {:>7.3}  S_T top-3: {}",
                service.relation_exists_score(item, r),
                pred_names.join(", ")
            );
        }
    }
    let (condensed, source): (Vec<f32>, String) = match args.get("snapshot") {
        Some(path) => {
            // Announce the source before touching the file: a mapped open
            // is O(header), but even a slow resident load should not leave
            // the user staring at an unexplained stall.
            eprintln!("[pkgm] serving from snapshot {path}…");
            let snap = serialize::open_snapshot_file(std::path::Path::new(path))?;
            let shard = snap.shard();
            let detail = if shard.is_whole_table() {
                snap.backing().label().to_string()
            } else {
                format!(
                    "{}, shard {} of {} covering ids {}..{}",
                    snap.backing().label(),
                    shard.shard_id,
                    shard.n_shards,
                    shard.row_start,
                    shard.row_start + snap.n_rows() as u64
                )
            };
            eprintln!(
                "[pkgm] snapshot: {} rows × {} dims ({detail})",
                snap.n_rows(),
                2 * snap.dim()
            );
            let (row, degraded) = snap.condensed_or_fallback(item);
            if degraded {
                eprintln!(
                    "[pkgm] warning: item {item} outside snapshot coverage ({} rows) — \
                     serving mean-row fallback",
                    snap.n_rows()
                );
            }
            let source = if degraded {
                "snapshot fallback".to_string()
            } else if snap.is_quantized() {
                format!("quantized snapshot, {detail}")
            } else {
                format!("precomputed snapshot, {detail}")
            };
            (row.to_vec(), source)
        }
        None if known => (service.condensed_service(item), "live compute".to_string()),
        None => (vec![0.0; 2 * service.dim()], "zero fallback".to_string()),
    };
    println!(
        "condensed service ({source}): {} dims, ‖S‖₂ = {:.3}",
        condensed.len(),
        condensed.iter().map(|x| x * x).sum::<f32>().sqrt()
    );
    Ok(())
}

/// The on-disk path of shard `shard_id` of `n_shards` for base path `out`:
/// the base itself for a single shard, `{out}.shard{K}of{N}` otherwise.
fn shard_path(out: &str, shard_id: u32, n_shards: u32) -> String {
    if n_shards <= 1 {
        out.to_string()
    } else {
        format!("{out}.shard{shard_id}of{n_shards}")
    }
}

fn snapshot(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let out = args.require("out")?;
    let quantize: bool = args.get_or("quantize", false)?;
    let n_shards: u32 = args.get_or("shards", 1u32)?;
    let format = args.get("format").unwrap_or("legacy");
    if n_shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    if !matches!(format, "legacy" | "ss3") {
        return Err(format!("unknown snapshot format: {format} (legacy|ss3)").into());
    }
    if n_shards > 1 && format != "ss3" {
        return Err("--shards requires --format ss3 (PKGMSS3 carries the shard spec)".into());
    }

    // `--synthetic N` streams N deterministic rows straight to per-shard
    // PKGMSS3 files — the whole table never exists in memory, which is the
    // only way to build the 10M+-item out-of-core serving artifacts.
    if let Some(n_items) = args.get("synthetic") {
        let n_rows: u64 = n_items
            .parse()
            .map_err(|_| format!("bad value for --synthetic: {n_items}"))?;
        if format != "ss3" {
            return Err("--synthetic requires --format ss3 (streamed writer)".into());
        }
        let dim: usize = args.get_or("dim", 16)?;
        let k: usize = args.get_or("k", 0)?;
        let seed: u64 = args.get_or("seed", 42)?;
        let rows = pkgm_synth::StreamingRows::new(seed, dim);
        let start = std::time::Instant::now();
        // Stream in ~4 MiB chunks: bounded memory at any table size.
        let chunk_rows = ((4 << 20) / (rows.row_len() * 4)).max(1);
        let mut buf = vec![0.0f32; chunk_rows * rows.row_len()];
        // Regenerate a chunk of rows starting at global id `first`.
        let fill = |first: u64, buf: &mut [f32]| {
            for (i, slot) in buf.chunks_exact_mut(rows.row_len()).enumerate() {
                rows.row_into((first + i as u64) as u32, slot);
            }
        };
        for (spec, len) in pkgm_core::shard_ranges(n_rows, n_shards) {
            let path = shard_path(out, spec.shard_id, n_shards);
            if quantize {
                let mut writer = pkgm_core::Ss3QuantWriter::create(
                    std::path::Path::new(&path),
                    dim,
                    k,
                    len,
                    spec,
                )?;
                let mut written = 0u64;
                while written < len {
                    let take = ((len - written) as usize).min(chunk_rows);
                    fill(spec.row_start + written, &mut buf[..take * rows.row_len()]);
                    writer.write_rows(&buf[..take * rows.row_len()])?;
                    written += take as u64;
                }
                // Escape rows are regenerated exactly: the stream is a
                // pure function of (seed, global id).
                writer
                    .finish(|local, slot| rows.row_into((spec.row_start + local) as u32, slot))?;
            } else {
                let mut writer = pkgm_core::Ss3DenseWriter::create(
                    std::path::Path::new(&path),
                    dim,
                    k,
                    len,
                    spec,
                )?;
                let mut written = 0u64;
                while written < len {
                    let take = ((len - written) as usize).min(chunk_rows);
                    fill(spec.row_start + written, &mut buf[..take * rows.row_len()]);
                    writer.write_rows(&buf[..take * rows.row_len()])?;
                    written += take as u64;
                }
                writer.finish()?;
            }
            println!(
                "wrote {}synthetic PKGMSS3 shard {} of {n_shards} to {path}: {len} rows × {} dims \
                 ({:.1} MiB)",
                if quantize { "quantized " } else { "" },
                spec.shard_id,
                2 * dim,
                std::fs::metadata(&path)?.len() as f64 / (1024.0 * 1024.0)
            );
        }
        println!(
            "streamed {n_rows} rows (seed {seed}) in {:.2}s",
            start.elapsed().as_secs_f64()
        );
        return Ok(());
    }

    let service = load_service(args)?;
    let start = std::time::Instant::now();
    let dense = ServiceSnapshot::build(&service);
    let dense_bytes = dense.storage_bytes();

    if format == "ss3" {
        let ranges = pkgm_core::shard_ranges(dense.n_rows() as u64, n_shards);
        let row_len = 2 * dense.dim();
        for (spec, len) in ranges {
            let path = shard_path(out, spec.shard_id, n_shards);
            if quantize {
                // Stream each shard through the quantized writer: the
                // bytes are identical to a one-shot `shard.quantize()`
                // write, but no quantized copy of the table is ever
                // resident.
                let table = dense
                    .dense_table()
                    .expect("freshly built snapshot is dense");
                let first = spec.row_start as usize * row_len;
                let shard_rows = &table[first..first + len as usize * row_len];
                let mut writer = pkgm_core::Ss3QuantWriter::create(
                    std::path::Path::new(&path),
                    dense.dim(),
                    dense.k(),
                    len,
                    spec,
                )?;
                writer.write_rows(shard_rows)?;
                writer.finish(|local, slot| {
                    let at = local as usize * row_len;
                    slot.copy_from_slice(&shard_rows[at..at + row_len]);
                })?;
            } else {
                let shard = if n_shards == 1 {
                    dense.clone()
                } else {
                    dense.shard_slice(spec, len)?
                };
                serialize::write_snapshot_ss3_file(&StdIo, std::path::Path::new(&path), &shard)?;
            }
            println!(
                "wrote {}PKGMSS3 shard {} of {n_shards} to {path}: {len} rows × {row_len} dims \
                 ({:.1} MiB)",
                if quantize { "quantized " } else { "" },
                spec.shard_id,
                std::fs::metadata(&path)?.len() as f64 / (1024.0 * 1024.0)
            );
        }
        println!("built in {:.2}s", start.elapsed().as_secs_f64());
        return Ok(());
    }

    let snap = if quantize { dense.quantize() } else { dense };
    serialize::write_snapshot_file(&StdIo, std::path::Path::new(out), &snap)?;
    let mib = std::fs::metadata(out)?.len() as f64 / (1024.0 * 1024.0);
    let kind = if quantize {
        "quantized serving snapshot"
    } else {
        "serving snapshot"
    };
    println!(
        "wrote {kind} to {out}: {} rows × {} dims ({mib:.1} MiB, built in {:.2}s)",
        snap.n_rows(),
        2 * snap.dim(),
        start.elapsed().as_secs_f64()
    );
    if quantize {
        println!(
            "quantized table: {} bytes in memory, {:.1}% of the dense table's {}",
            snap.storage_bytes(),
            100.0 * snap.storage_bytes() as f64 / dense_bytes as f64,
            dense_bytes
        );
    }
    Ok(())
}

fn faultcheck(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = args.get_or("seed", 42)?;
    let dir = match args.get("dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("pkgm-faultcheck-{}", std::process::id())),
    };
    eprintln!(
        "[pkgm] running fault-injection battery in {} (seed {seed})…",
        dir.display()
    );
    let report = fault::run_faultcheck(&dir, seed);
    for s in &report.scenarios {
        println!(
            "{} {:<36} {}",
            if s.passed { "PASS" } else { "FAIL" },
            s.name,
            s.detail
        );
    }
    let failed = report.scenarios.iter().filter(|s| !s.passed).count();
    if failed > 0 {
        // Not a usage error: report and exit nonzero without the help text.
        eprintln!(
            "faultcheck: {failed}/{} scenarios failed",
            report.scenarios.len()
        );
        std::process::exit(1);
    }
    println!(
        "faultcheck: all {} scenarios passed",
        report.scenarios.len()
    );
    Ok(())
}

fn netcheck(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = args.get_or("seed", 42)?;
    eprintln!("[pkgm] running network chaos battery (seed {seed})…");
    let report = pkgm_core::netcheck::run_netcheck(seed);
    for s in &report.scenarios {
        println!(
            "{} {:<36} {}",
            if s.passed { "PASS" } else { "FAIL" },
            s.name,
            s.detail
        );
    }
    let failed = report.scenarios.iter().filter(|s| !s.passed).count();
    if failed > 0 {
        // Not a usage error: report and exit nonzero without the help text.
        eprintln!(
            "netcheck: {failed}/{} scenarios failed (seed {seed})",
            report.scenarios.len()
        );
        std::process::exit(1);
    }
    println!("netcheck: all {} scenarios passed", report.scenarios.len());
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let catalog = catalog_from(args)?;
    let service = load_service(args)?;
    let max_facts: usize = args.get_or("max-facts", 300)?;
    let test: Vec<_> = catalog.heldout.iter().copied().take(max_facts).collect();
    eprintln!("[pkgm] ranking {} held-out facts…", test.len());
    let report = eval::rank_tails(service.model(), &test, Some(&catalog.store), &[1, 3, 10])?;
    println!("completion of {} held-out facts:", report.n);
    println!("  MRR       {:.4}", report.mrr);
    println!("  mean rank {:.1}", report.mean_rank);
    for (k, h) in &report.hits {
        println!("  Hits@{k:<3}  {:.2}%", h * 100.0);
    }
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
    let auc = eval::relation_existence_auc(service.model(), &catalog.store, 1000, &mut rng);
    println!("relation-existence AUC: {:.4}", auc.auc);
    Ok(())
}

fn print_help() {
    eprintln!(
        "pkgm — Pre-trained Knowledge Graph Model (ICDE 2021 reproduction)\n\n\
         USAGE: pkgm <command> [--flag value]…\n\n\
         COMMANDS\n\
         \u{20}  stats       --preset tiny|small|bench --seed N\n\
         \u{20}  generate    --preset P --seed N --out kg.tsv [--items-out items.json]\n\
         \u{20}  train       --preset P --seed N --dim 32 --epochs 8 --k 10 [--lr 0.005]\n\
         \u{20}              [--margin 4] --out service.bin [--checkpoint-dir D]\n\
         \u{20}              [--checkpoint-every 1] [--keep-last 3] [--resume D]\n\
         \u{20}              [--parallel false] [--chunk-size N  # pin the gradient\n\
         \u{20}              chunk layout for cross-host bit-reproducible runs]\n\
         \u{20}              (alias: pretrain; --resume restarts from the latest\n\
         \u{20}              valid checkpoint in D and checkpoints back into it)\n\
         \u{20}              [--mem-budget BYTES  # out-of-core: page the embedding\n\
         \u{20}              table in entity-range blocks under the budget; state in\n\
         \u{20}              --ooc-dir (default {{out}}.ooc) resumes after a kill;\n\
         \u{20}              --snapshot-out base streams per-partition PKGMSS3 shards]\n\
         \u{20}              [--synthetic N --entities E --relations R --mem-budget B\n\
         \u{20}              --ooc-dir D [--report-out r.json]  # train on N streamed\n\
         \u{20}              deterministic triples, no catalog or service output]\n\
         \u{20}  serve       --preset P --seed N --service service.bin --item 0\n\
         \u{20}              [--snapshot serving.snap  # dense or quantized]\n\
         \u{20}  snapshot    --service service.bin --out serving.snap [--quantize true\n\
         \u{20}              # int8 blockwise table, ~¼ the bytes, exact lookups;\n\
         \u{20}              with ss3 the shards stream through the quantized writer]\n\
         \u{20}              [--format ss3  # page-aligned PKGMSS3, mmap-served zero-copy]\n\
         \u{20}              [--shards N  # entity-range shards, one PKGMSS3 file each]\n\
         \u{20}              [--synthetic N --dim 16 --seed 42  # stream N deterministic\n\
         \u{20}              rows with O(1) memory — no --service needed; ss3 only]\n\
         \u{20}  eval        --preset P --seed N --service service.bin [--max-facts 300]\n\
         \u{20}  faultcheck  [--dir scratch] [--seed 42] — crash/corruption recovery battery\n\
         \u{20}  netcheck    [--seed 42] — network chaos battery: a deterministic chaos\n\
         \u{20}              proxy drops/truncates/delays/corrupts/slowloris-writes frames\n\
         \u{20}              between a real client and daemon; asserts bit-exact successes,\n\
         \u{20}              typed failures, no double-execution, watchdog recovery\n\
         \u{20}  bench-train --preset P [--dim 64] [--epochs 1] [--negatives 1]\n\
         \u{20}              [--parallel true] [--out bench.json] — fused vs baseline\n\
         \u{20}              gradient-kernel throughput on identical corruption streams\n\
         \u{20}  bench-eval  --preset P [--dim 64] [--epochs 1] [--tails 128] [--heads 32]\n\
         \u{20}              [--quantized true] [--threads N  # pin the rayon pool for\n\
         \u{20}              the candidate-slice fan-out] [--out bench.json] — fused vs\n\
         \u{20}              baseline ranking-kernel throughput on the same held-out facts;\n\
         \u{20}              with --quantized also times the int8 two-phase kernel and\n\
         \u{20}              reports prune rate + scanned bytes (all ranks bit-identical\n\
         \u{20}              to the reference scan; see eval_kernels)\n\
         \u{20}  simd        — print the runtime kernel dispatch line (detected\n\
         \u{20}              AVX2/SSE4.1 level; PKGM_FORCE_SCALAR=1 pins the scalar twins)\n\
         \u{20}  daemon      serve --service service.bin [--addr 127.0.0.1:7071]\n\
         \u{20}              [--snapshot serving.snap] [--workers 2] [--max-batch-items 1024]\n\
         \u{20}              [--queue-capacity 16384] [--cache-capacity 65536]\n\
         \u{20}              [--max-conns 1024  # shed connects past this with Overloaded]\n\
         \u{20}              [--stall-timeout-ms 2000  # watchdog wedge threshold]\n\
         \u{20}              [--addr-file f  # write the bound address, for --addr …:0]\n\
         \u{20}              — TCP serving daemon: CRC-framed binary protocol, dynamic\n\
         \u{20}              batching, deadline propagation, shed-not-stall admission\n\
         \u{20}              control, and a watchdog that restarts dead threads\n\
         \u{20}  daemon reload --addr HOST:PORT --snapshot path — hot-swap the serving\n\
         \u{20}              snapshot (daemon-local path) under live traffic; PKGMSS3\n\
         \u{20}              files come up memory-mapped (zero-copy, O(header) open)\n\
         \u{20}  daemon lookup --addr HOST:PORT --items 0,1,2 — rows as IEEE-754 bit\n\
         \u{20}              patterns in JSON (deterministic; CI diffs this for\n\
         \u{20}              bit-exactness across backings); off-shard ids fail typed\n\
         \u{20}  daemon stats --addr HOST:PORT — daemon counters as JSON\n\
         \u{20}  daemon health --addr HOST:PORT — liveness JSON (uptime, restarts)\n\
         \u{20}  daemon ready --addr HOST:PORT — readiness gates as JSON, exit 1 if not\n\
         \u{20}  daemon stop  --addr HOST:PORT — graceful shutdown\n\
         \u{20}  router route --addrs a:1,b:2,… --items 0,1,2 [--max-redirects 4]\n\
         \u{20}              — split a batch by entity range across shard daemons,\n\
         \u{20}              merge rows back into request order, follow WrongShard\n\
         \u{20}              redirects via map refresh; output is bit-identical to\n\
         \u{20}              `daemon lookup` against one whole-table daemon\n\
         \u{20}  router map  --addrs a:1,b:2,… — the assembled shard topology as JSON\n\
         \u{20}  router supervise --snapshot base --service svc.bin [--items 0,1,2]\n\
         \u{20}              [--addrs-out f] — spawn one daemon per base.shardKofN\n\
         \u{20}              file, gate on readiness; with --items route one batch\n\
         \u{20}              and exit, else supervise until stdin closes\n\
         \u{20}  bench-qps   --preset P [--clients 4] [--requests 300] [--batch 16]\n\
         \u{20}              [--out qps.json] — closed-loop QPS smoke against an\n\
         \u{20}              in-process daemon, with one hot-swap mid-run\n"
    );
}

//! Reverse-mode automatic differentiation over a per-batch computation graph.
//!
//! Usage pattern (one graph per minibatch):
//!
//! ```
//! use pkgm_tensor::{Graph, Params, Tensor, AdamOpt};
//! use pkgm_tensor::init;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let w = params.add("w", init::xavier_uniform(2, 1, &mut rng));
//! let mut opt = AdamOpt::new(0.01);
//!
//! for _ in 0..10 {
//!     let mut g = Graph::new();
//!     let x = g.input(Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]));
//!     let wv = g.param(&params, w);
//!     let logits = g.matmul(x, wv);
//!     let loss = g.bce_with_logits(logits, &[0.0, 1.0, 1.0, 1.0]);
//!     g.backward(loss);
//!     g.flush_grads(&mut params);
//!     opt.step(&mut params);
//!     params.zero_grads();
//! }
//! ```

use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Handle to a node in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarId(usize);

#[derive(Debug)]
enum Op {
    Const,
    Param(ParamId),
    Embedding {
        pid: ParamId,
        indices: Vec<u32>,
    },
    Add(VarId, VarId),
    AddRow(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    MulRow(VarId, VarId),
    Scale(VarId, f32),
    Offset(VarId),
    Matmul(VarId, VarId),
    MatmulNT(VarId, VarId),
    Relu(VarId),
    Gelu(VarId),
    Sigmoid(VarId),
    Tanh(VarId),
    SoftmaxRows(VarId),
    LayerNormRows {
        x: VarId,
        eps: f32,
    },
    ConcatCols(Vec<VarId>),
    ConcatRows(Vec<VarId>),
    SliceRows {
        x: VarId,
        start: usize,
    },
    SliceCols {
        x: VarId,
        start: usize,
    },
    MeanRows(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    Dropout {
        x: VarId,
        mask: Vec<f32>,
    },
    SoftmaxCrossEntropy {
        logits: VarId,
        labels: Vec<u32>,
        probs: Tensor,
    },
    BceWithLogits {
        logits: VarId,
        targets: Vec<f32>,
    },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    needs_grad: bool,
}

/// A single-use reverse-mode autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self {
            nodes: Vec::with_capacity(64),
        }
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> VarId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            needs_grad,
        });
        VarId(self.nodes.len() - 1)
    }

    fn needs(&self, id: VarId) -> bool {
        self.nodes[id.0].needs_grad
    }

    /// Forward value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after [`Graph::backward`]; `None` if the node did
    /// not require gradients or backward has not run.
    pub fn grad(&self, id: VarId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Constant input (no gradient).
    pub fn input(&mut self, t: Tensor) -> VarId {
        self.push(t, Op::Const, false)
    }

    /// Parameter leaf: copies the current value in; gradient flushes back
    /// via [`Graph::flush_grads`].
    pub fn param(&mut self, params: &Params, pid: ParamId) -> VarId {
        self.push(params.value(pid).clone(), Op::Param(pid), true)
    }

    /// Embedding lookup: gathers `indices` rows of the table into an
    /// `[indices.len(), d]` node. The backward pass scatter-adds into the
    /// table's sparse gradient, so only touched rows pay.
    pub fn embedding(&mut self, params: &Params, pid: ParamId, indices: &[u32]) -> VarId {
        let table = params.value(pid);
        let d = table.cols();
        let mut out = Tensor::zeros(indices.len(), d);
        for (i, &row) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(table.row(row as usize));
        }
        self.push(
            out,
            Op::Embedding {
                pid,
                indices: indices.to_vec(),
            },
            true,
        )
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut v = self.nodes[a.0].value.clone();
        v.add_assign(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Add(a, b), ng)
    }

    /// Broadcast add of a row vector: `a[i,:] + b[0,:]`.
    pub fn add_row(&mut self, a: VarId, b: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(bv.rows(), 1, "add_row expects a 1×d row vector");
        assert_eq!(av.cols(), bv.cols(), "add_row width mismatch");
        let mut v = av.clone();
        for r in 0..v.rows() {
            for (x, &y) in v.row_mut(r).iter_mut().zip(bv.row(0)) {
                *x += y;
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::AddRow(a, b), ng)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "sub shape mismatch");
        let v = Tensor::from_vec(
            av.rows(),
            av.cols(),
            av.as_slice()
                .iter()
                .zip(bv.as_slice())
                .map(|(x, y)| x - y)
                .collect(),
        );
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Sub(a, b), ng)
    }

    /// Elementwise `a * b` (Hadamard).
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "mul shape mismatch");
        let v = Tensor::from_vec(
            av.rows(),
            av.cols(),
            av.as_slice()
                .iter()
                .zip(bv.as_slice())
                .map(|(x, y)| x * y)
                .collect(),
        );
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Mul(a, b), ng)
    }

    /// Broadcast multiply by a row vector: `a[i,:] * b[0,:]`.
    pub fn mul_row(&mut self, a: VarId, b: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(bv.rows(), 1, "mul_row expects a 1×d row vector");
        assert_eq!(av.cols(), bv.cols(), "mul_row width mismatch");
        let mut v = av.clone();
        for r in 0..v.rows() {
            for (x, &y) in v.row_mut(r).iter_mut().zip(bv.row(0)) {
                *x *= y;
            }
        }
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MulRow(a, b), ng)
    }

    /// Scalar multiply.
    pub fn scale(&mut self, a: VarId, c: f32) -> VarId {
        let v = self.nodes[a.0].value.map(|x| x * c);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, c), ng)
    }

    /// Add a constant tensor (e.g. an attention mask of `-1e9` on padding
    /// positions). Gradient passes through unchanged.
    pub fn offset(&mut self, a: VarId, c: &Tensor) -> VarId {
        let mut v = self.nodes[a.0].value.clone();
        v.add_assign(c);
        let ng = self.needs(a);
        self.push(v, Op::Offset(a), ng)
    }

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Matmul(a, b), ng)
    }

    /// Matrix product `a × bᵀ` (e.g. attention scores `Q Kᵀ`).
    pub fn matmul_nt(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.matmul_nt(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatmulNT(a, b), ng)
    }

    // ------------------------------------------------------------------
    // Activations / normalization
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(v, Op::Relu(a), ng)
    }

    /// GELU (tanh approximation), the Transformer feed-forward activation.
    pub fn gelu(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.map(gelu_fwd);
        let ng = self.needs(a);
        self.push(v, Op::Gelu(a), ng)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.map(sigmoid_fwd);
        let ng = self.needs(a);
        self.push(v, Op::Sigmoid(a), ng)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a.0].value.map(f32::tanh);
        let ng = self.needs(a);
        self.push(v, Op::Tanh(a), ng)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let mut v = av.clone();
        for r in 0..v.rows() {
            softmax_in_place(v.row_mut(r));
        }
        let ng = self.needs(a);
        self.push(v, Op::SoftmaxRows(a), ng)
    }

    /// Row-wise standardization `(x - μ) / sqrt(σ² + eps)` — the
    /// normalization core of LayerNorm; compose with [`Graph::mul_row`] and
    /// [`Graph::add_row`] for the affine part.
    pub fn layer_norm_rows(&mut self, a: VarId, eps: f32) -> VarId {
        let av = &self.nodes[a.0].value;
        let mut v = av.clone();
        let d = v.cols() as f32;
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let mean = row.iter().sum::<f32>() / d;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / d;
            let inv = 1.0 / (var + eps).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mean) * inv;
            }
        }
        let ng = self.needs(a);
        self.push(v, Op::LayerNormRows { x: a, eps }, ng)
    }

    // ------------------------------------------------------------------
    // Shape ops
    // ------------------------------------------------------------------

    /// Horizontal concatenation `[a | b | …]`.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty());
        let rows = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut v = Tensor::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                v.row_mut(r)[off..off + pv.cols()].copy_from_slice(pv.row(r));
            }
            off += pv.cols();
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(v, Op::ConcatCols(parts.to_vec()), ng)
    }

    /// Vertical concatenation (stacking rows).
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty());
        let cols = self.nodes[parts[0].0].value.cols();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.rows()).sum();
        let mut v = Tensor::zeros(total, cols);
        let mut off = 0;
        for &p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.cols(), cols, "concat_rows col mismatch");
            for r in 0..pv.rows() {
                v.row_mut(off + r).copy_from_slice(pv.row(r));
            }
            off += pv.rows();
        }
        let ng = parts.iter().any(|&p| self.needs(p));
        self.push(v, Op::ConcatRows(parts.to_vec()), ng)
    }

    /// Rows `start .. start + len`.
    pub fn slice_rows(&mut self, a: VarId, start: usize, len: usize) -> VarId {
        let av = &self.nodes[a.0].value;
        assert!(start + len <= av.rows(), "slice_rows out of range");
        let mut v = Tensor::zeros(len, av.cols());
        for r in 0..len {
            v.row_mut(r).copy_from_slice(av.row(start + r));
        }
        let ng = self.needs(a);
        self.push(v, Op::SliceRows { x: a, start }, ng)
    }

    /// Columns `start .. start + len` (per-head slicing in attention).
    pub fn slice_cols(&mut self, a: VarId, start: usize, len: usize) -> VarId {
        let av = &self.nodes[a.0].value;
        assert!(start + len <= av.cols(), "slice_cols out of range");
        let mut v = Tensor::zeros(av.rows(), len);
        for r in 0..av.rows() {
            v.row_mut(r).copy_from_slice(&av.row(r)[start..start + len]);
        }
        let ng = self.needs(a);
        self.push(v, Op::SliceCols { x: a, start }, ng)
    }

    /// Column-wise mean over rows: `[n,d] → [1,d]`.
    pub fn mean_rows(&mut self, a: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let n = av.rows() as f32;
        let mut v = Tensor::zeros(1, av.cols());
        for r in 0..av.rows() {
            for (o, &x) in v.row_mut(0).iter_mut().zip(av.row(r)) {
                *o += x;
            }
        }
        for o in v.as_mut_slice() {
            *o /= n;
        }
        let ng = self.needs(a);
        self.push(v, Op::MeanRows(a), ng)
    }

    /// Sum of all elements → `[1,1]`.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let s = self.nodes[a.0].value.sum();
        let ng = self.needs(a);
        self.push(Tensor::from_vec(1, 1, vec![s]), Op::SumAll(a), ng)
    }

    /// Mean of all elements → `[1,1]`.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let av = &self.nodes[a.0].value;
        let s = av.sum() / av.len() as f32;
        let ng = self.needs(a);
        self.push(Tensor::from_vec(1, 1, vec![s]), Op::MeanAll(a), ng)
    }

    /// Inverted dropout with keep-scaling. `mask[i] ∈ {0, 1/(1-p)}` must be
    /// pre-sampled by the caller (so the graph stays deterministic given the
    /// caller's RNG). Pass `p = 0` upstream to skip entirely.
    pub fn dropout(&mut self, a: VarId, mask: Vec<f32>) -> VarId {
        let av = &self.nodes[a.0].value;
        assert_eq!(mask.len(), av.len(), "dropout mask length mismatch");
        let v = Tensor::from_vec(
            av.rows(),
            av.cols(),
            av.as_slice()
                .iter()
                .zip(&mask)
                .map(|(x, m)| x * m)
                .collect(),
        );
        let ng = self.needs(a);
        self.push(v, Op::Dropout { x: a, mask }, ng)
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean softmax cross-entropy of `[n, C]` logits against integer labels.
    pub fn softmax_cross_entropy(&mut self, logits: VarId, labels: &[u32]) -> VarId {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.rows(), labels.len(), "one label per logit row");
        let mut probs = lv.clone();
        let mut loss = 0.0f32;
        for (r, &label) in labels.iter().enumerate() {
            let row = probs.row_mut(r);
            softmax_in_place(row);
            loss -= row[label as usize].max(1e-12).ln();
        }
        loss /= labels.len() as f32;
        let ng = self.needs(logits);
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            Op::SoftmaxCrossEntropy {
                logits,
                labels: labels.to_vec(),
                probs,
            },
            ng,
        )
    }

    /// Mean binary cross-entropy of `[n, 1]` logits against 0/1 targets,
    /// computed in the numerically-stable "with logits" form.
    pub fn bce_with_logits(&mut self, logits: VarId, targets: &[f32]) -> VarId {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.len(), targets.len(), "one target per logit");
        let mut loss = 0.0f32;
        for (&z, &y) in lv.as_slice().iter().zip(targets) {
            loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        }
        loss /= targets.len() as f32;
        let ng = self.needs(logits);
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            Op::BceWithLogits {
                logits,
                targets: targets.to_vec(),
            },
            ng,
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run reverse-mode differentiation from `loss` (must be `[1,1]`).
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        let n = self.nodes.len();
        self.nodes[loss.0].grad = Some(Tensor::from_vec(1, 1, vec![1.0]));
        for i in (0..n).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].needs_grad {
                continue;
            }
            self.backprop_node(i);
        }
    }

    fn ensure_grad(&mut self, id: VarId) -> &mut Tensor {
        let (rows, cols) = self.nodes[id.0].value.shape();
        self.nodes[id.0]
            .grad
            .get_or_insert_with(|| Tensor::zeros(rows, cols))
    }

    fn add_grad(&mut self, id: VarId, g: &Tensor) {
        if !self.needs(id) {
            return;
        }
        self.ensure_grad(id).add_assign(g);
    }

    fn backprop_node(&mut self, i: usize) {
        let g = self.nodes[i].grad.clone().expect("grad present");
        // Split borrows by cloning small pieces; values are read-only here.
        match &self.nodes[i].op {
            Op::Const | Op::Param(_) | Op::Embedding { .. } => {}
            &Op::Add(a, b) => {
                self.add_grad(a, &g);
                self.add_grad(b, &g);
            }
            &Op::AddRow(a, b) => {
                self.add_grad(a, &g);
                if self.needs(b) {
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &x) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    self.add_grad(b, &gb);
                }
            }
            &Op::Sub(a, b) => {
                self.add_grad(a, &g);
                if self.needs(b) {
                    let neg = g.map(|x| -x);
                    self.add_grad(b, &neg);
                }
            }
            &Op::Mul(a, b) => {
                if self.needs(a) {
                    let bv = &self.nodes[b.0].value;
                    let ga = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.as_slice()
                            .iter()
                            .zip(bv.as_slice())
                            .map(|(x, y)| x * y)
                            .collect(),
                    );
                    self.add_grad(a, &ga);
                }
                if self.needs(b) {
                    let av = &self.nodes[a.0].value;
                    let gb = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.as_slice()
                            .iter()
                            .zip(av.as_slice())
                            .map(|(x, y)| x * y)
                            .collect(),
                    );
                    self.add_grad(b, &gb);
                }
            }
            &Op::MulRow(a, b) => {
                if self.needs(a) {
                    let bv = self.nodes[b.0].value.clone();
                    let mut ga = g.clone();
                    for r in 0..ga.rows() {
                        for (x, &y) in ga.row_mut(r).iter_mut().zip(bv.row(0)) {
                            *x *= y;
                        }
                    }
                    self.add_grad(a, &ga);
                }
                if self.needs(b) {
                    let av = &self.nodes[a.0].value;
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            gb.as_mut_slice()[c] += g.get(r, c) * av.get(r, c);
                        }
                    }
                    self.add_grad(b, &gb);
                }
            }
            &Op::Scale(a, c) => {
                let ga = g.map(|x| x * c);
                self.add_grad(a, &ga);
            }
            &Op::Offset(a) => {
                self.add_grad(a, &g);
            }
            &Op::Matmul(a, b) => {
                if self.needs(a) {
                    let ga = g.matmul_nt(&self.nodes[b.0].value);
                    self.add_grad(a, &ga);
                }
                if self.needs(b) {
                    let gb = self.nodes[a.0].value.matmul_tn(&g);
                    self.add_grad(b, &gb);
                }
            }
            &Op::MatmulNT(a, b) => {
                if self.needs(a) {
                    let ga = g.matmul(&self.nodes[b.0].value);
                    self.add_grad(a, &ga);
                }
                if self.needs(b) {
                    let gb = g.matmul_tn(&self.nodes[a.0].value);
                    self.add_grad(b, &gb);
                }
            }
            &Op::Relu(a) => {
                let av = &self.nodes[a.0].value;
                let ga = Tensor::from_vec(
                    g.rows(),
                    g.cols(),
                    g.as_slice()
                        .iter()
                        .zip(av.as_slice())
                        .map(|(&gx, &x)| if x > 0.0 { gx } else { 0.0 })
                        .collect(),
                );
                self.add_grad(a, &ga);
            }
            &Op::Gelu(a) => {
                let av = &self.nodes[a.0].value;
                let ga = Tensor::from_vec(
                    g.rows(),
                    g.cols(),
                    g.as_slice()
                        .iter()
                        .zip(av.as_slice())
                        .map(|(&gx, &x)| gx * gelu_bwd(x))
                        .collect(),
                );
                self.add_grad(a, &ga);
            }
            &Op::Sigmoid(a) => {
                let yv = &self.nodes[i].value;
                let ga = Tensor::from_vec(
                    g.rows(),
                    g.cols(),
                    g.as_slice()
                        .iter()
                        .zip(yv.as_slice())
                        .map(|(&gx, &s)| gx * s * (1.0 - s))
                        .collect(),
                );
                self.add_grad(a, &ga);
            }
            &Op::Tanh(a) => {
                let yv = &self.nodes[i].value;
                let ga = Tensor::from_vec(
                    g.rows(),
                    g.cols(),
                    g.as_slice()
                        .iter()
                        .zip(yv.as_slice())
                        .map(|(&gx, &t)| gx * (1.0 - t * t))
                        .collect(),
                );
                self.add_grad(a, &ga);
            }
            &Op::SoftmaxRows(a) => {
                let s = &self.nodes[i].value;
                let mut ga = Tensor::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let srow = s.row(r);
                    let grow = g.row(r);
                    let dotv: f32 = srow.iter().zip(grow).map(|(x, y)| x * y).sum();
                    for (o, (&sv, &gv)) in ga.row_mut(r).iter_mut().zip(srow.iter().zip(grow)) {
                        *o = sv * (gv - dotv);
                    }
                }
                self.add_grad(a, &ga);
            }
            &Op::LayerNormRows { x, eps } => {
                let xv = &self.nodes[x.0].value;
                let yv = &self.nodes[i].value; // normalized output
                let d = xv.cols() as f32;
                let mut ga = Tensor::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let xrow = xv.row(r);
                    let yrow = yv.row(r);
                    let grow = g.row(r);
                    let mean = xrow.iter().sum::<f32>() / d;
                    let var = xrow.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d;
                    let inv = 1.0 / (var + eps).sqrt();
                    let gmean = grow.iter().sum::<f32>() / d;
                    let gymean = grow.iter().zip(yrow).map(|(gv, yv)| gv * yv).sum::<f32>() / d;
                    for (o, (&gv, &yvv)) in ga.row_mut(r).iter_mut().zip(grow.iter().zip(yrow)) {
                        *o = inv * (gv - gmean - yvv * gymean);
                    }
                }
                self.add_grad(x, &ga);
            }
            Op::ConcatCols(parts) => {
                let parts = parts.clone();
                let mut off = 0;
                for p in parts {
                    let w = self.nodes[p.0].value.cols();
                    if self.needs(p) {
                        let mut gp = Tensor::zeros(g.rows(), w);
                        for r in 0..g.rows() {
                            gp.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                        }
                        self.add_grad(p, &gp);
                    }
                    off += w;
                }
            }
            Op::ConcatRows(parts) => {
                let parts = parts.clone();
                let mut off = 0;
                for p in parts {
                    let h = self.nodes[p.0].value.rows();
                    if self.needs(p) {
                        let mut gp = Tensor::zeros(h, g.cols());
                        for r in 0..h {
                            gp.row_mut(r).copy_from_slice(g.row(off + r));
                        }
                        self.add_grad(p, &gp);
                    }
                    off += h;
                }
            }
            &Op::SliceRows { x, start } => {
                if self.needs(x) {
                    let (rows, cols) = self.nodes[x.0].value.shape();
                    let mut gx = Tensor::zeros(rows, cols);
                    for r in 0..g.rows() {
                        gx.row_mut(start + r).copy_from_slice(g.row(r));
                    }
                    self.add_grad(x, &gx);
                }
            }
            &Op::SliceCols { x, start } => {
                if self.needs(x) {
                    let (rows, cols) = self.nodes[x.0].value.shape();
                    let mut gx = Tensor::zeros(rows, cols);
                    for r in 0..g.rows() {
                        gx.row_mut(r)[start..start + g.cols()].copy_from_slice(g.row(r));
                    }
                    self.add_grad(x, &gx);
                }
            }
            &Op::MeanRows(a) => {
                if self.needs(a) {
                    let n = self.nodes[a.0].value.rows();
                    let scale = 1.0 / n as f32;
                    let mut ga = Tensor::zeros(n, g.cols());
                    for r in 0..n {
                        for (o, &x) in ga.row_mut(r).iter_mut().zip(g.row(0)) {
                            *o = x * scale;
                        }
                    }
                    self.add_grad(a, &ga);
                }
            }
            &Op::SumAll(a) => {
                if self.needs(a) {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let ga = Tensor::full(rows, cols, g.get(0, 0));
                    self.add_grad(a, &ga);
                }
            }
            &Op::MeanAll(a) => {
                if self.needs(a) {
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    let ga = Tensor::full(rows, cols, g.get(0, 0) / (rows * cols) as f32);
                    self.add_grad(a, &ga);
                }
            }
            Op::Dropout { x, mask } => {
                let x = *x;
                if self.needs(x) {
                    let ga = Tensor::from_vec(
                        g.rows(),
                        g.cols(),
                        g.as_slice()
                            .iter()
                            .zip(mask)
                            .map(|(gv, m)| gv * m)
                            .collect(),
                    );
                    self.add_grad(x, &ga);
                }
            }
            Op::SoftmaxCrossEntropy {
                logits,
                labels,
                probs,
            } => {
                let logits = *logits;
                if self.needs(logits) {
                    let n = labels.len() as f32;
                    let scale = g.get(0, 0) / n;
                    let mut gl = probs.clone();
                    for (r, &label) in labels.iter().enumerate() {
                        let row = gl.row_mut(r);
                        row[label as usize] -= 1.0;
                        for v in row.iter_mut() {
                            *v *= scale;
                        }
                    }
                    self.add_grad(logits, &gl);
                }
            }
            Op::BceWithLogits { logits, targets } => {
                let logits = *logits;
                if self.needs(logits) {
                    let lv = &self.nodes[logits.0].value;
                    let n = targets.len() as f32;
                    let scale = g.get(0, 0) / n;
                    let gl = Tensor::from_vec(
                        lv.rows(),
                        lv.cols(),
                        lv.as_slice()
                            .iter()
                            .zip(targets)
                            .map(|(&z, &y)| scale * (sigmoid_fwd(z) - y))
                            .collect(),
                    );
                    self.add_grad(logits, &gl);
                }
            }
        }
    }

    /// Move accumulated leaf gradients into the parameter store.
    pub fn flush_grads(&mut self, params: &mut Params) {
        for node in &self.nodes {
            let Some(grad) = &node.grad else { continue };
            match &node.op {
                Op::Param(pid) => params.accumulate_grad(*pid, grad),
                Op::Embedding { pid, indices } => {
                    params.accumulate_sparse_grad(*pid, indices, grad)
                }
                _ => {}
            }
        }
    }
}

#[inline]
fn sigmoid_fwd(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/π)

#[inline]
fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

#[inline]
fn gelu_bwd(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Numerically-stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_compose() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = g.input(Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).as_slice(), &[1., 2., 3., 4.]);
        let d = g.scale(c, 2.0);
        let e = g.sum_all(d);
        assert_eq!(g.value(e).get(0, 0), 20.0);
    }

    #[test]
    fn backward_through_matmul_chain() {
        // loss = sum(W * x) where x const → dL/dW = column sums pattern
        let mut params = Params::new();
        let w = params.add("w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 1, vec![1., 2.]));
        let wv = g.param(&params, w);
        let y = g.matmul(wv, x); // [2,1]
        let loss = g.sum_all(y);
        g.backward(loss);
        g.flush_grads(&mut params);
        // d sum(Wx) / dW = [x^T; x^T]
        assert_eq!(params.grad(w).as_slice(), &[1., 2., 1., 2.]);
    }

    #[test]
    fn embedding_gathers_and_scatters() {
        let mut params = Params::new();
        let table = params.add_sparse("emb", Tensor::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let mut g = Graph::new();
        let e = g.embedding(&params, table, &[2, 0, 2]);
        assert_eq!(g.value(e).as_slice(), &[3., 3., 1., 1., 3., 3.]);
        let loss = g.sum_all(e);
        g.backward(loss);
        g.flush_grads(&mut params);
        assert_eq!(params.grad(table).row(0), &[1., 1.]);
        assert_eq!(params.grad(table).row(1), &[0., 0.]);
        assert_eq!(params.grad(table).row(2), &[2., 2.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]));
        let s = g.softmax_rows(a);
        for r in 0..2 {
            let sum: f32 = g.value(s).row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_c() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::zeros(4, 8));
        let loss = g.softmax_cross_entropy(logits, &[0, 1, 2, 3]);
        assert!((g.value(loss).get(0, 0) - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn bce_with_logits_matches_naive() {
        let mut g = Graph::new();
        let z = g.input(Tensor::from_vec(3, 1, vec![0.5, -1.2, 2.0]));
        let loss = g.bce_with_logits(z, &[1.0, 0.0, 1.0]);
        let naive = |z: f32, y: f32| {
            let p = 1.0 / (1.0 + (-z).exp());
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        };
        let expect = (naive(0.5, 1.0) + naive(-1.2, 0.0) + naive(2.0, 1.0)) / 3.0;
        assert!((g.value(loss).get(0, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn concat_and_slice_invert() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = g.input(Tensor::from_vec(2, 1, vec![5., 6.]));
        let c = g.concat_cols(&[a, b]);
        assert_eq!(g.value(c).as_slice(), &[1., 2., 5., 3., 4., 6.]);
        let back = g.slice_cols(c, 0, 2);
        assert_eq!(g.value(back).as_slice(), g.value(a).as_slice());
        let r = g.concat_rows(&[a, a]);
        assert_eq!(g.value(r).rows(), 4);
        let rs = g.slice_rows(r, 2, 2);
        assert_eq!(g.value(rs).as_slice(), g.value(a).as_slice());
    }

    #[test]
    fn layer_norm_output_standardized() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(1, 4, vec![1., 2., 3., 4.]));
        let y = g.layer_norm_rows(a, 1e-5);
        let row = g.value(y).row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn grads_skip_const_only_subgraphs() {
        let mut g = Graph::new();
        let a = g.input(Tensor::zeros(1, 1));
        let b = g.relu(a);
        let loss = g.sum_all(b);
        g.backward(loss);
        assert!(g.grad(a).is_none());
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let a = g.input(Tensor::zeros(2, 2));
        g.backward(a);
    }
}

//! Optimizers: SGD and Adam (with lazy row updates for sparse tables).

use crate::params::Params;

/// Plain stochastic gradient descent with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct SgdOpt {
    /// Learning rate.
    pub lr: f32,
    /// L2 penalty coefficient (0 disables).
    pub weight_decay: f32,
}

impl SgdOpt {
    /// SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Apply one update using the gradients currently stored in `params`.
    /// Gradients are *not* zeroed; call [`Params::zero_grads`] afterwards.
    pub fn step(&mut self, params: &mut Params) {
        for e in &mut params.entries {
            if e.sparse {
                let mut rows = std::mem::take(&mut e.touched);
                rows.sort_unstable();
                rows.dedup();
                for &row in &rows {
                    let r = row as usize;
                    let cols = e.value.cols();
                    for c in 0..cols {
                        let g = e.grad.get(r, c) + self.weight_decay * e.value.get(r, c);
                        let v = e.value.get(r, c) - self.lr * g;
                        e.value.set(r, c, v);
                    }
                }
                e.touched = rows; // keep for zero_grads
            } else {
                let wd = self.weight_decay;
                let lr = self.lr;
                let grad = e.grad.as_slice().to_vec();
                for (v, g) in e.value.as_mut_slice().iter_mut().zip(grad) {
                    *v -= lr * (g + wd * *v);
                }
            }
        }
    }
}

/// Adam (Kingma & Ba 2015) — the paper's optimizer for both pre-training and
/// every downstream task. Sparse entries receive *lazy* updates: only rows
/// touched since the last step are visited, with bias correction by the
/// global step counter.
#[derive(Debug, Clone)]
pub struct AdamOpt {
    /// Learning rate (paper: 1e-4 for pre-training and NCF, 2e-5 for BERT).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// L2 penalty coefficient (0 disables).
    pub weight_decay: f32,
    t: u64,
}

impl AdamOpt {
    /// Adam with standard betas (0.9 / 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
        }
    }

    /// Adam with L2 weight decay (used by NCF per the paper's λ = 0.001).
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Self {
            weight_decay,
            ..Self::new(lr)
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one Adam update from the gradients stored in `params`.
    /// Gradients are *not* zeroed; call [`Params::zero_grads`] afterwards.
    pub fn step(&mut self, params: &mut Params) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let lr_t = self.lr * bc2.sqrt() / bc1;

        for e in &mut params.entries {
            let (rows, cols) = e.value.shape();
            let m = e
                .adam_m
                .get_or_insert_with(|| crate::Tensor::zeros(rows, cols));
            let v = e
                .adam_v
                .get_or_insert_with(|| crate::Tensor::zeros(rows, cols));

            let update_cell = |r: usize,
                               c: usize,
                               value: &mut crate::Tensor,
                               grad: &crate::Tensor,
                               m: &mut crate::Tensor,
                               v: &mut crate::Tensor| {
                let g = grad.get(r, c) + self.weight_decay * value.get(r, c);
                let mn = self.beta1 * m.get(r, c) + (1.0 - self.beta1) * g;
                let vn = self.beta2 * v.get(r, c) + (1.0 - self.beta2) * g * g;
                m.set(r, c, mn);
                v.set(r, c, vn);
                let upd = lr_t * mn / (vn.sqrt() + self.eps);
                value.set(r, c, value.get(r, c) - upd);
            };

            if e.sparse {
                let mut touched = std::mem::take(&mut e.touched);
                touched.sort_unstable();
                touched.dedup();
                for &row in &touched {
                    for c in 0..cols {
                        update_cell(row as usize, c, &mut e.value, &e.grad, m, v);
                    }
                }
                e.touched = touched; // zero_grads clears these rows
            } else {
                for r in 0..rows {
                    for c in 0..cols {
                        update_cell(r, c, &mut e.value, &e.grad, m, v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::row_from(&[1.0, -1.0]));
        p.accumulate_grad(w, &Tensor::row_from(&[0.5, -0.5]));
        SgdOpt::new(0.1).step(&mut p);
        assert_eq!(p.value(w).as_slice(), &[0.95, -0.95]);
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::row_from(&[1.0]));
        // zero gradient, only decay
        let mut opt = SgdOpt::new(0.1);
        opt.weight_decay = 0.5;
        opt.step(&mut p);
        assert!((p.value(w).get(0, 0) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_moves_by_lr() {
        // With any nonzero constant gradient, Adam's first step ≈ lr.
        let mut p = Params::new();
        let w = p.add("w", Tensor::row_from(&[0.0]));
        p.accumulate_grad(w, &Tensor::row_from(&[3.7]));
        let mut opt = AdamOpt::new(0.01);
        opt.step(&mut p);
        assert!((p.value(w).get(0, 0) + 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_sparse_only_updates_touched_rows() {
        let mut p = Params::new();
        let e = p.add_sparse("emb", Tensor::from_vec(3, 1, vec![1.0, 1.0, 1.0]));
        p.accumulate_sparse_grad(e, &[1], &Tensor::row_from(&[1.0]));
        let mut opt = AdamOpt::new(0.1);
        opt.step(&mut p);
        assert_eq!(p.value(e).get(0, 0), 1.0);
        assert_eq!(p.value(e).get(2, 0), 1.0);
        assert!(p.value(e).get(1, 0) < 1.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize (w - 3)^2
        let mut p = Params::new();
        let w = p.add("w", Tensor::row_from(&[0.0]));
        let mut opt = AdamOpt::new(0.1);
        for _ in 0..500 {
            let wv = p.value(w).get(0, 0);
            p.accumulate_grad(w, &Tensor::row_from(&[2.0 * (wv - 3.0)]));
            opt.step(&mut p);
            p.zero_grads();
        }
        assert!((p.value(w).get(0, 0) - 3.0).abs() < 0.05);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn sparse_rows_keep_independent_adam_state() {
        let mut p = Params::new();
        let e = p.add_sparse("emb", Tensor::zeros(2, 1));
        let mut opt = AdamOpt::new(0.1);
        // Row 0 gets many updates, row 1 only one; magnitudes must differ.
        for _ in 0..10 {
            p.accumulate_sparse_grad(e, &[0], &Tensor::row_from(&[1.0]));
            opt.step(&mut p);
            p.zero_grads();
        }
        p.accumulate_sparse_grad(e, &[1], &Tensor::row_from(&[1.0]));
        opt.step(&mut p);
        p.zero_grads();
        assert!(p.value(e).get(0, 0).abs() > p.value(e).get(1, 0).abs());
    }
}

//! Dense row-major `f32` matrix/vector type and its kernels.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Row-major dense tensor of `f32`, restricted to rank ≤ 2.
///
/// A vector is represented as `[1, n]` or `[n, 1]` as the caller prefers;
/// all kernels operate on `(rows, cols)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

/// Rayon kicks in for matmuls above this many fused multiply-adds.
const PAR_FLOP_THRESHOLD: usize = 64 * 64 * 64;

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { data, rows, cols }
    }

    /// 1×n row vector from a slice.
    pub fn row_from(slice: &[f32]) -> Self {
        Self::from_vec(1, slice.len(), slice.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reinterpret as a new shape with the same element count.
    pub fn reshaped(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape changes element count"
        );
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// If inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Tensor::zeros(n, m);
        let work = n * k * m;
        let body = |(i, orow): (usize, &mut [f32])| {
            let arow = &self.data[i * k..(i + 1) * k];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &rhs.data[p * m..(p + 1) * m];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        };
        if work >= PAR_FLOP_THRESHOLD {
            out.data.par_chunks_mut(m).enumerate().for_each(body);
        } else {
            out.data.chunks_mut(m).enumerate().for_each(body);
        }
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_nt inner dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, rhs.rows);
        let mut out = Tensor::zeros(n, m);
        let work = n * k * m;
        let body = |(i, orow): (usize, &mut [f32])| {
            let arow = &self.data[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &rhs.data[j * k..(j + 1) * k];
                *o = dot(arow, brow);
            }
        };
        if work >= PAR_FLOP_THRESHOLD {
            out.data.par_chunks_mut(m).enumerate().for_each(body);
        } else {
            out.data.chunks_mut(m).enumerate().for_each(body);
        }
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_tn inner dimension mismatch");
        let (k, n, m) = (self.rows, self.cols, rhs.cols);
        let mut out = Tensor::zeros(n, m);
        for p in 0..k {
            let arow = &self.data[p * n..(p + 1) * n];
            let brow = &rhs.data[p * m..(p + 1) * m];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * m..(i + 1) * m];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place `self[i] += rhs[i]`.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise in-place `self[i] += scale * rhs[i]`.
    pub fn add_scaled(&mut self, rhs: &Tensor, scale: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element, 0 for empty tensors.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four-lane unroll; lets LLVM vectorize without unsafe.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_shape() {
        Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.3).collect());
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transposed());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let a = Tensor::from_vec(3, 2, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.3 - 1.0).collect());
        let fast = a.matmul_tn(&b);
        let slow = a.transposed().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn large_matmul_parallel_path_matches_serial() {
        // Exceed PAR_FLOP_THRESHOLD to exercise the rayon branch.
        let n = 80;
        let a = Tensor::from_vec(n, n, (0..n * n).map(|i| (i % 13) as f32 - 6.0).collect());
        let b = Tensor::from_vec(n, n, (0..n * n).map(|i| (i % 7) as f32 - 3.0).collect());
        let c = a.matmul(&b);
        // spot-check one element against a direct computation
        let mut expect = 0.0;
        for p in 0..n {
            expect += a.get(3, p) * b.get(p, 5);
        }
        assert!((c.get(3, 5) - expect).abs() < 1e-3);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn add_scaled_and_norms() {
        let mut a = Tensor::zeros(1, 3);
        a.add_scaled(&Tensor::row_from(&[3., 4., 0.]), 2.0);
        assert_eq!(a.as_slice(), &[6., 8., 0.]);
        assert!((a.l2_norm() - 10.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 8.0);
        assert_eq!(a.sum(), 14.0);
    }

    #[test]
    fn dot_handles_non_multiple_of_four() {
        let a = [1., 2., 3., 4., 5., 6., 7.];
        let b = [1., 1., 1., 1., 1., 1., 2.];
        assert_eq!(dot(&a, &b), 1. + 2. + 3. + 4. + 5. + 6. + 14.);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).reshaped(3, 2);
        assert_eq!(a.shape(), (3, 2));
        assert_eq!(a.get(2, 1), 6.0);
    }
}

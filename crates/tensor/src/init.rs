//! Weight initialization schemes.

use crate::tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// The default for linear projections in the Transformer encoder.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    let dist = Uniform::new_inclusive(-a, a);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| dist.sample(rng) as f32).collect(),
    )
}

/// He/Kaiming normal: `N(0, sqrt(2 / fan_in))`, for ReLU stacks (NCF's MLP).
pub fn he_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / rows as f64).sqrt();
    let dist = Normal::new(0.0, std).expect("valid std");
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| dist.sample(rng) as f32).collect(),
    )
}

/// Plain Gaussian `N(0, std)`, used for embedding tables.
pub fn normal(rows: usize, cols: usize, std: f64, rng: &mut impl Rng) -> Tensor {
    let dist = Normal::new(0.0, std).expect("valid std");
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| dist.sample(rng) as f32).collect(),
    )
}

/// Uniform `U(lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Tensor {
    let dist = Uniform::new(lo, hi);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| dist.sample(rng) as f32).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = xavier_uniform(50, 70, &mut rng);
        let bound = (6.0f32 / 120.0).sqrt() + 1e-6;
        assert!(t.as_slice().iter().all(|x| x.abs() <= bound));
        // not degenerate
        assert!(t.max_abs() > bound * 0.5);
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = SmallRng::seed_from_u64(2);
        let t = he_normal(1000, 8, &mut rng);
        let var: f32 = t.as_slice().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        let expect = 2.0 / 1000.0;
        assert!((var - expect).abs() < expect * 0.2, "var {var} vs {expect}");
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = normal(4, 4, 0.1, &mut SmallRng::seed_from_u64(7));
        let b = normal(4, 4, 0.1, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }
}

//! Finite-difference gradient checking.
//!
//! Every op's backward pass is validated by comparing the analytic gradient
//! (reverse mode) with central differences of the loss. Used extensively in
//! this crate's tests and available to downstream model tests.

use crate::graph::Graph;
use crate::params::{ParamId, Params};
use crate::VarId;

/// Result of a gradient check on one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_diff: f32,
    /// Largest relative difference, `|a − n| / max(1, |a|, |n|)`.
    pub max_rel_diff: f32,
    /// Number of scalars compared.
    pub n_checked: usize,
}

/// Compare analytic vs central-difference gradients for parameter `pid`.
///
/// `build` must construct the full forward graph from the current `params`
/// and return the scalar loss node. It is invoked `2 × n + 1` times, so keep
/// the test models tiny.
pub fn check_param(
    params: &mut Params,
    pid: ParamId,
    eps: f32,
    mut build: impl FnMut(&mut Graph, &Params) -> VarId,
) -> GradCheckReport {
    // Analytic pass.
    params.zero_grads();
    let mut g = Graph::new();
    let loss = build(&mut g, params);
    g.backward(loss);
    g.flush_grads(params);
    let analytic = params.grad(pid).clone();

    let n = params.value(pid).len();
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..n {
        let orig = params.value(pid).as_slice()[i];

        params.value_mut(pid).as_mut_slice()[i] = orig + eps;
        let mut gp = Graph::new();
        let lp = build(&mut gp, params);
        let fplus = gp.value(lp).get(0, 0);

        params.value_mut(pid).as_mut_slice()[i] = orig - eps;
        let mut gm = Graph::new();
        let lm = build(&mut gm, params);
        let fminus = gm.value(lm).get(0, 0);

        params.value_mut(pid).as_mut_slice()[i] = orig;

        let numeric = (fplus - fminus) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let abs = (a - numeric).abs();
        let rel = abs / 1.0f32.max(a.abs()).max(numeric.abs());
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    // Clean up the grads we left behind.
    params.zero_grads();
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
        n_checked: n,
    }
}

/// Assert that the check passes with relative tolerance `tol`.
pub fn assert_grads_close(
    params: &mut Params,
    pid: ParamId,
    tol: f32,
    build: impl FnMut(&mut Graph, &Params) -> VarId,
) {
    let report = check_param(params, pid, 1e-2, build);
    assert!(
        report.max_rel_diff < tol,
        "gradient check failed for {}: max_rel_diff = {} (abs {}) over {} scalars",
        params.name(pid),
        report.max_rel_diff,
        report.max_abs_diff,
        report.n_checked
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const TOL: f32 = 2e-2; // f32 central differences are noisy; 2% relative

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn matmul_add_relu_chain() {
        let mut r = rng();
        let mut p = Params::new();
        let w = p.add("w", init::xavier_uniform(3, 2, &mut r));
        let b = p.add("b", init::normal(1, 2, 0.1, &mut r));
        let x = init::normal(4, 3, 1.0, &mut r);
        for pid in [w, b] {
            let xc = x.clone();
            assert_grads_close(&mut p, pid, TOL, move |g, ps| {
                let xi = g.input(xc.clone());
                let wv = g.param(ps, w);
                let bv = g.param(ps, b);
                let h = g.matmul(xi, wv);
                let h = g.add_row(h, bv);
                let h = g.relu(h);
                g.mean_all(h)
            });
        }
    }

    #[test]
    fn sigmoid_tanh_gelu_chain() {
        let mut r = rng();
        let mut p = Params::new();
        let w = p.add("w", init::normal(2, 3, 0.5, &mut r));
        assert_grads_close(&mut p, w, TOL, |g, ps| {
            let wv = g.param(ps, w);
            let s = g.sigmoid(wv);
            let t = g.tanh(s);
            let u = g.gelu(t);
            g.sum_all(u)
        });
    }

    #[test]
    fn softmax_rows_grad() {
        let mut r = rng();
        let mut p = Params::new();
        let w = p.add("w", init::normal(2, 4, 1.0, &mut r));
        let weights = init::normal(2, 4, 1.0, &mut r);
        assert_grads_close(&mut p, w, TOL, move |g, ps| {
            let wv = g.param(ps, w);
            let s = g.softmax_rows(wv);
            let c = g.input(weights.clone());
            let m = g.mul(s, c);
            g.sum_all(m)
        });
    }

    #[test]
    fn layer_norm_grad() {
        let mut r = rng();
        let mut p = Params::new();
        let w = p.add("w", init::normal(3, 5, 1.0, &mut r));
        let gain = p.add("gain", init::normal(1, 5, 0.3, &mut r));
        let weights = init::normal(3, 5, 1.0, &mut r);
        for pid in [w, gain] {
            let wts = weights.clone();
            assert_grads_close(&mut p, pid, 5e-2, move |g, ps| {
                let wv = g.param(ps, w);
                let y = g.layer_norm_rows(wv, 1e-5);
                let gv = g.param(ps, gain);
                let y = g.mul_row(y, gv);
                let c = g.input(wts.clone());
                let m = g.mul(y, c);
                g.sum_all(m)
            });
        }
    }

    #[test]
    fn matmul_nt_and_scale_grad() {
        let mut r = rng();
        let mut p = Params::new();
        let a = p.add("a", init::normal(2, 3, 0.7, &mut r));
        let b = p.add("b", init::normal(4, 3, 0.7, &mut r));
        for pid in [a, b] {
            assert_grads_close(&mut p, pid, TOL, move |g, ps| {
                let av = g.param(ps, a);
                let bv = g.param(ps, b);
                let s = g.matmul_nt(av, bv);
                let s = g.scale(s, 0.5);
                let s = g.softmax_rows(s);
                g.mean_all(s)
            });
        }
    }

    #[test]
    fn embedding_and_concat_grad() {
        let mut r = rng();
        let mut p = Params::new();
        let e = p.add_sparse("emb", init::normal(5, 3, 0.5, &mut r));
        let w = p.add("w", init::normal(6, 1, 0.5, &mut r));
        for pid in [e, w] {
            assert_grads_close(&mut p, pid, TOL, move |g, ps| {
                let rows = g.embedding(ps, e, &[0, 3, 3, 1]);
                let left = g.slice_cols(rows, 0, 3);
                let right = g.slice_rows(rows, 0, 4);
                let cat = g.concat_cols(&[left, right]); // [4, 6]
                let wv = g.param(ps, w);
                let y = g.matmul(cat, wv);
                g.mean_all(y)
            });
        }
    }

    #[test]
    fn cross_entropy_grad() {
        let mut r = rng();
        let mut p = Params::new();
        let w = p.add("w", init::normal(3, 4, 1.0, &mut r));
        assert_grads_close(&mut p, w, TOL, |g, ps| {
            let wv = g.param(ps, w);
            g.softmax_cross_entropy(wv, &[1, 0, 3])
        });
    }

    #[test]
    fn bce_grad() {
        let mut r = rng();
        let mut p = Params::new();
        let w = p.add("w", init::normal(4, 1, 1.0, &mut r));
        assert_grads_close(&mut p, w, TOL, |g, ps| {
            let wv = g.param(ps, w);
            g.bce_with_logits(wv, &[1.0, 0.0, 0.0, 1.0])
        });
    }

    #[test]
    fn sub_mul_row_mean_rows_grad() {
        let mut r = rng();
        let mut p = Params::new();
        let a = p.add("a", init::normal(3, 4, 0.8, &mut r));
        let b = p.add("b", init::normal(3, 4, 0.8, &mut r));
        let s = p.add("s", init::normal(1, 4, 0.8, &mut r));
        for pid in [a, b, s] {
            assert_grads_close(&mut p, pid, TOL, move |g, ps| {
                let av = g.param(ps, a);
                let bv = g.param(ps, b);
                let sv = g.param(ps, s);
                let d = g.sub(av, bv);
                let d = g.mul_row(d, sv);
                let m = g.mean_rows(d);
                let q = g.mul(m, m);
                g.sum_all(q)
            });
        }
    }

    #[test]
    fn dropout_grad_respects_mask() {
        let mut r = rng();
        let mut p = Params::new();
        let w = p.add("w", init::normal(2, 3, 1.0, &mut r));
        let mask = vec![2.0, 0.0, 2.0, 0.0, 2.0, 0.0]; // p = 0.5 inverted dropout
        assert_grads_close(&mut p, w, TOL, move |g, ps| {
            let wv = g.param(ps, w);
            let d = g.dropout(wv, mask.clone());
            g.sum_all(d)
        });
    }

    #[test]
    fn offset_and_concat_rows_grad() {
        let mut r = rng();
        let mut p = Params::new();
        let a = p.add("a", init::normal(2, 3, 0.6, &mut r));
        let off = Tensor::full(4, 3, -0.25);
        assert_grads_close(&mut p, a, TOL, move |g, ps| {
            let av = g.param(ps, a);
            let stacked = g.concat_rows(&[av, av]);
            let o = g.offset(stacked, &off);
            let t = g.tanh(o);
            g.mean_all(t)
        });
    }
}

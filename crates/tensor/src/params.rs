//! Persistent parameter storage shared across per-batch graphs.
//!
//! A [`Graph`](crate::Graph) is rebuilt for every minibatch; parameters live
//! here instead, addressed by [`ParamId`]. After `Graph::backward`, gradients
//! are flushed into the entries' `grad` buffers, and an optimizer consumes
//! them.
//!
//! Embedding tables are registered with [`Params::add_sparse`]: their
//! gradients arrive as scatter-adds into a small set of touched rows, and
//! optimizers only visit those rows (lazy updates). Everything else is dense.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to one parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ParamEntry {
    pub name: String,
    pub value: Tensor,
    pub grad: Tensor,
    /// Row-sparse gradient mode (embedding tables).
    pub sparse: bool,
    /// Rows touched since the last optimizer step (sparse entries only),
    /// sorted + deduplicated lazily at step time.
    pub touched: Vec<u32>,
    /// Adam first/second moment, allocated on first use.
    pub adam_m: Option<Tensor>,
    pub adam_v: Option<Tensor>,
}

/// A named collection of trainable tensors.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Params {
    pub(crate) entries: Vec<ParamEntry>,
}

impl Params {
    /// Empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dense parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.push(name.into(), value, false)
    }

    /// Register a row-sparse parameter (embedding table).
    pub fn add_sparse(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.push(name.into(), value, true)
    }

    fn push(&mut self, name: String, value: Tensor, sparse: bool) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.entries.push(ParamEntry {
            name,
            value,
            grad,
            sparse,
            touched: Vec::new(),
            adam_m: None,
            adam_v: None,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn n_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable value (e.g. for loading pre-trained weights).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Whether the parameter uses row-sparse gradients.
    pub fn is_sparse(&self, id: ParamId) -> bool {
        self.entries[id.0].sparse
    }

    /// Look up a parameter by name (linear scan; intended for tests/tools).
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(ParamId)
    }

    /// Iterate all ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Accumulate a dense gradient for `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        let e = &mut self.entries[id.0];
        e.grad.add_assign(grad);
        if e.sparse {
            // A dense gradient touched every row.
            e.touched.extend(0..e.value.rows() as u32);
        }
    }

    /// Scatter-add gradient rows for a sparse parameter: row `rows[i]` of the
    /// table receives row `i` of `grads`.
    pub fn accumulate_sparse_grad(&mut self, id: ParamId, rows: &[u32], grads: &Tensor) {
        let e = &mut self.entries[id.0];
        assert!(e.sparse, "sparse gradient into dense parameter {}", e.name);
        assert_eq!(rows.len(), grads.rows());
        assert_eq!(e.value.cols(), grads.cols());
        for (i, &row) in rows.iter().enumerate() {
            let dst = e.grad.row_mut(row as usize);
            for (d, &g) in dst.iter_mut().zip(grads.row(i)) {
                *d += g;
            }
            e.touched.push(row);
        }
    }

    /// Zero all dense gradients and the touched rows of sparse ones.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            if e.sparse {
                for &row in &e.touched {
                    e.grad.row_mut(row as usize).fill(0.0);
                }
                e.touched.clear();
            } else {
                e.grad.fill_zero();
            }
        }
    }

    /// Global gradient L2 norm (over dense grads and touched sparse rows).
    pub fn grad_norm(&self) -> f32 {
        let mut sq = 0.0f64;
        for e in &self.entries {
            if e.sparse {
                let mut rows: Vec<u32> = e.touched.clone();
                rows.sort_unstable();
                rows.dedup();
                for row in rows {
                    sq += e
                        .grad
                        .row(row as usize)
                        .iter()
                        .map(|&g| (g as f64) * (g as f64))
                        .sum::<f64>();
                }
            } else {
                sq += e
                    .grad
                    .as_slice()
                    .iter()
                    .map(|&g| (g as f64) * (g as f64))
                    .sum::<f64>();
            }
        }
        sq.sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::zeros(2, 3));
        let e = p.add_sparse("emb", Tensor::zeros(10, 4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.n_scalars(), 6 + 40);
        assert_eq!(p.name(w), "w");
        assert!(p.is_sparse(e));
        assert!(!p.is_sparse(w));
        assert_eq!(p.find("emb"), Some(e));
        assert_eq!(p.find("nope"), None);
    }

    #[test]
    fn dense_grad_accumulates_and_zeros() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::zeros(1, 2));
        p.accumulate_grad(w, &Tensor::row_from(&[1.0, 2.0]));
        p.accumulate_grad(w, &Tensor::row_from(&[0.5, 0.5]));
        assert_eq!(p.grad(w).as_slice(), &[1.5, 2.5]);
        p.zero_grads();
        assert_eq!(p.grad(w).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn sparse_grad_scatter_adds_and_zeros_only_touched() {
        let mut p = Params::new();
        let e = p.add_sparse("emb", Tensor::zeros(4, 2));
        let g = Tensor::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]);
        p.accumulate_sparse_grad(e, &[0, 2, 0], &g);
        assert_eq!(p.grad(e).row(0), &[4.0, 4.0]); // rows 0 gets 1+3
        assert_eq!(p.grad(e).row(2), &[2.0, 2.0]);
        assert_eq!(p.grad(e).row(1), &[0.0, 0.0]);
        p.zero_grads();
        assert_eq!(p.grad(e).row(0), &[0.0, 0.0]);
        assert_eq!(p.grad(e).row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "sparse gradient into dense parameter")]
    fn sparse_grad_into_dense_panics() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::zeros(2, 2));
        p.accumulate_sparse_grad(w, &[0], &Tensor::zeros(1, 2));
    }

    #[test]
    fn grad_norm_covers_sparse_and_dense() {
        let mut p = Params::new();
        let w = p.add("w", Tensor::zeros(1, 2));
        let e = p.add_sparse("emb", Tensor::zeros(3, 2));
        p.accumulate_grad(w, &Tensor::row_from(&[3.0, 0.0]));
        p.accumulate_sparse_grad(e, &[1], &Tensor::row_from(&[0.0, 4.0]));
        assert!((p.grad_norm() - 5.0).abs() < 1e-6);
    }
}

//! # pkgm-tensor — minimal deep-learning substrate
//!
//! A small, dependency-light neural-network engine built for the PKGM
//! reproduction. The paper's downstream models (a BERT-style Transformer
//! encoder for item classification / alignment, and NCF's GMF + MLP for
//! recommendation) need:
//!
//! * a dense row-major `f32` [`Tensor`] with the usual linear-algebra and
//!   activation kernels,
//! * reverse-mode automatic differentiation over a per-batch [`Graph`],
//! * parameter storage ([`Params`]) that survives across graphs, with
//!   **row-sparse gradients** for embedding tables (a full-vocabulary dense
//!   update per minibatch would dominate training time),
//! * [`AdamOpt`]/[`SgdOpt`] optimizers (lazy per-row Adam for sparse tables),
//! * numeric gradient checking (`gradcheck`) so every op's backward pass is
//!   verified against finite differences.
//!
//! Scope is deliberately 2-D: a batch is expressed as a matrix
//! `[rows, features]`, sequence models as `[seq_len, hidden]` per example.
//! That covers every architecture in the paper while keeping the engine
//! auditable.

pub mod gradcheck;
pub mod graph;
pub mod init;
pub mod optim;
pub mod params;
pub mod tensor;

pub use graph::{Graph, VarId};
pub use optim::{AdamOpt, SgdOpt};
pub use params::{ParamId, Params};
pub use tensor::Tensor;

//! Property-based tests for the autodiff engine: gradient checks on randomly
//! shaped/valued compositions, algebraic identities, optimizer behaviour.

use pkgm_tensor::gradcheck;
use pkgm_tensor::{init, AdamOpt, Graph, Params, SgdOpt, Tensor};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A randomly shaped linear + activation chain has correct gradients.
    #[test]
    fn random_shape_gradcheck(
        n in 1usize..4,
        k in 1usize..4,
        m in 1usize..4,
        seed in 0u64..1000,
        act in 0usize..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Params::new();
        let w = p.add("w", init::normal(k, m, 0.7, &mut rng));
        let x = init::normal(n, k, 1.0, &mut rng);
        gradcheck::assert_grads_close(&mut p, w, 5e-2, move |g, ps| {
            let xi = g.input(x.clone());
            let wv = g.param(ps, w);
            let h = g.matmul(xi, wv);
            let h = match act {
                0 => g.relu(h),
                1 => g.sigmoid(h),
                2 => g.tanh(h),
                _ => g.gelu(h),
            };
            g.mean_all(h)
        });
    }

    /// Softmax + cross-entropy gradients hold for arbitrary logits/labels.
    #[test]
    fn ce_gradcheck_random(
        rows in 1usize..4,
        cols in 2usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Params::new();
        let w = p.add("logits", init::normal(rows, cols, 1.5, &mut rng));
        let labels: Vec<u32> = (0..rows).map(|i| ((seed as usize + i) % cols) as u32).collect();
        gradcheck::assert_grads_close(&mut p, w, 5e-2, move |g, ps| {
            let wv = g.param(ps, w);
            g.softmax_cross_entropy(wv, &labels)
        });
    }

    /// (AB)ᵀ relationships: matmul_nt(a, b) equals matmul with an explicit
    /// transpose for arbitrary shapes.
    #[test]
    fn matmul_nt_tn_identities(
        n in 1usize..6,
        k in 1usize..6,
        m in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = init::normal(n, k, 1.0, &mut rng);
        let b = init::normal(m, k, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transposed());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let c = init::normal(n, m, 1.0, &mut rng);
        let fast = a.matmul_tn(&c); // aᵀ c : [k, m]
        let slow = a.transposed().matmul(&c);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// SGD strictly decreases a convex quadratic from any start.
    #[test]
    fn sgd_decreases_quadratic(start in -10.0f32..10.0, target in -5.0f32..5.0) {
        let mut p = Params::new();
        let w = p.add("w", Tensor::row_from(&[start]));
        let mut opt = SgdOpt::new(0.05);
        let loss = |v: f32| (v - target) * (v - target);
        let before = loss(p.value(w).get(0, 0));
        for _ in 0..50 {
            let v = p.value(w).get(0, 0);
            p.accumulate_grad(w, &Tensor::row_from(&[2.0 * (v - target)]));
            opt.step(&mut p);
            p.zero_grads();
        }
        let after = loss(p.value(w).get(0, 0));
        prop_assert!(after <= before + 1e-6);
        prop_assert!((p.value(w).get(0, 0) - target).abs() < 1.0);
    }

    /// Adam matches the sign of the gradient direction on the first step.
    #[test]
    fn adam_first_step_direction(g0 in prop::sample::select(vec![-3.0f32, -0.5, 0.5, 3.0])) {
        let mut p = Params::new();
        let w = p.add("w", Tensor::row_from(&[1.0]));
        p.accumulate_grad(w, &Tensor::row_from(&[g0]));
        AdamOpt::new(0.01).step(&mut p);
        let moved = p.value(w).get(0, 0) - 1.0;
        prop_assert!(moved * g0 < 0.0, "moved {moved} with grad {g0}");
    }

    /// Dropout with the zero mask kills gradients; with the identity mask it
    /// is a no-op.
    #[test]
    fn dropout_mask_extremes(seed in 0u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Params::new();
        let w = p.add("w", init::normal(2, 3, 1.0, &mut rng));
        // zero mask
        let mut g = Graph::new();
        let wv = g.param(&p, w);
        let d = g.dropout(wv, vec![0.0; 6]);
        let loss = g.sum_all(d);
        g.backward(loss);
        g.flush_grads(&mut p);
        prop_assert_eq!(p.grad(w).max_abs(), 0.0);
        p.zero_grads();
        // identity mask
        let mut g = Graph::new();
        let wv = g.param(&p, w);
        let d = g.dropout(wv, vec![1.0; 6]);
        let loss = g.sum_all(d);
        g.backward(loss);
        g.flush_grads(&mut p);
        prop_assert!(p.grad(w).as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    /// Embedding gather + scatter: gradients accumulate multiplicity.
    #[test]
    fn embedding_grad_multiplicity(row in 0u32..4, times in 1usize..5) {
        let mut p = Params::new();
        let e = p.add_sparse("emb", Tensor::zeros(4, 2));
        let indices = vec![row; times];
        let mut g = Graph::new();
        let rows = g.embedding(&p, e, &indices);
        let loss = g.sum_all(rows);
        g.backward(loss);
        g.flush_grads(&mut p);
        prop_assert_eq!(p.grad(e).row(row as usize), &[times as f32, times as f32]);
    }
}

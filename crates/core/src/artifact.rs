//! Atomic, checksummed artifact container for everything PKGM puts on disk.
//!
//! Multi-day pre-training runs and always-on serving fleets both die on torn
//! writes: a `kill -9` halfway through `fs::write` leaves a prefix of the
//! bytes at the destination path, and the next load either panics mid-slice
//! or silently serves garbage. This module gives every artifact (model,
//! service, serving snapshot, training checkpoint) the same two defenses:
//!
//! 1. **Atomic durability** — [`ArtifactIo::write_atomic`] writes to a temp
//!    file in the destination directory, `fsync`s it, renames it over the
//!    destination, and best-effort-`fsync`s the directory. A crash at any
//!    point leaves either the old file or the new file, never a prefix.
//! 2. **Integrity framing** — [`encode`] prepends a fixed 28-byte header
//!    (magic, format version, payload kind, payload length, CRC32 of the
//!    payload); [`decode`] rejects truncation, tail garbage, bit flips and
//!    kind confusion with typed [`ArtifactError`]s instead of panicking.
//!
//! All I/O goes through the [`ArtifactIo`] trait so the fault-injection
//! harness in [`crate::fault`] can deterministically simulate crashes and
//! corruption in tests and in the `pkgm faultcheck` CLI subcommand.
//!
//! ```text
//! magic  "PKGMAF1\0"     8 bytes
//! version                u32   (currently 1)
//! kind                   u32   (ArtifactKind discriminant)
//! payload_len            u64
//! payload_crc32          u32   (IEEE, over the payload bytes only)
//! payload                payload_len bytes
//! ```

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Leading bytes of every framed artifact file.
pub const ARTIFACT_MAGIC: &[u8; 8] = b"PKGMAF1\0";
/// Current container format version.
pub const ARTIFACT_VERSION: u32 = 1;
/// Fixed header size preceding the payload.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 4;

/// What an artifact's payload contains. The kind is part of the header so a
/// service file handed to `--snapshot` fails loudly instead of mis-decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A bare [`crate::PkgmModel`] (`model_to_bytes`).
    Model,
    /// A [`crate::KnowledgeService`] — model + selector (`service_to_bytes`).
    Service,
    /// A precomputed [`crate::ServiceSnapshot`] table (`snapshot_to_bytes`).
    Snapshot,
    /// A training checkpoint: model + optimizer + progress state.
    Checkpoint,
}

impl ArtifactKind {
    fn as_u32(self) -> u32 {
        match self {
            ArtifactKind::Model => 1,
            ArtifactKind::Service => 2,
            ArtifactKind::Snapshot => 3,
            ArtifactKind::Checkpoint => 4,
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        match v {
            1 => Some(ArtifactKind::Model),
            2 => Some(ArtifactKind::Service),
            3 => Some(ArtifactKind::Snapshot),
            4 => Some(ArtifactKind::Checkpoint),
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Model => "model",
            ArtifactKind::Service => "service",
            ArtifactKind::Snapshot => "snapshot",
            ArtifactKind::Checkpoint => "checkpoint",
        }
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed failures for artifact I/O and validation. Every load failure is an
/// `Err`, never a panic — the serve path must survive bad bytes.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// File does not start with [`ARTIFACT_MAGIC`].
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// Header declares a container version this build cannot read.
    UnsupportedVersion {
        /// Offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
    },
    /// Header kind differs from what the caller expected.
    WrongKind {
        /// Offending file.
        path: PathBuf,
        /// Kind the caller asked for.
        expected: ArtifactKind,
        /// Kind the header declares (`None` = unknown discriminant).
        found: Option<ArtifactKind>,
    },
    /// Fewer (or more) payload bytes than the header declares.
    Truncated {
        /// Offending file.
        path: PathBuf,
        /// Payload bytes the header promised.
        expected: u64,
        /// Payload bytes actually present.
        found: u64,
    },
    /// Payload bytes do not match the header checksum (bit rot / torn write).
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the bytes on disk.
        found: u32,
    },
    /// Framing was intact but the payload failed to decode.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// Decoder's description of the failure.
        what: String,
    },
    /// A fault-injection plan deliberately failed this operation (tests and
    /// `pkgm faultcheck` only).
    Injected {
        /// Path the faulted operation targeted.
        path: PathBuf,
        /// Which fault fired.
        what: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, source } => {
                write!(f, "artifact I/O failed for {}: {source}", path.display())
            }
            ArtifactError::BadMagic { path } => {
                write!(f, "{}: not a PKGM artifact (bad magic)", path.display())
            }
            ArtifactError::UnsupportedVersion { path, found } => write!(
                f,
                "{}: unsupported artifact version {found} (this build reads {ARTIFACT_VERSION})",
                path.display()
            ),
            ArtifactError::WrongKind {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: expected a {expected} artifact, found {}",
                path.display(),
                found.map_or("an unknown kind", ArtifactKind::name)
            ),
            ArtifactError::Truncated {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: truncated artifact (header declares {expected} payload bytes, found {found})",
                path.display()
            ),
            ArtifactError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: checksum mismatch (header {expected:#010x}, payload {found:#010x})",
                path.display()
            ),
            ArtifactError::Corrupt { path, what } => {
                write!(f, "{}: corrupt payload: {what}", path.display())
            }
            ArtifactError::Injected { path, what } => {
                write!(f, "{}: injected fault: {what}", path.display())
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

// --- CRC32 (IEEE 802.3, reflected) -----------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes`. Detects all single-bit flips and all burst
/// errors shorter than 32 bits — sufficient for torn-write and bit-rot
/// detection on model artifacts.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0u32, bytes)
}

/// Incremental CRC32: feed chunks into `state` (start from `!0u32`) and
/// finish with a final bitwise-not. Lets the streaming snapshot writer
/// checksum sections it never holds in memory at once;
/// `crc32(b) == !crc32_update(!0, b)`.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

// --- framing ----------------------------------------------------------------

/// Frame `payload` with the versioned, checksummed artifact header.
pub fn encode(kind: ArtifactKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(ARTIFACT_MAGIC);
    out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.as_u32().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate the frame around `bytes` and return the payload slice.
///
/// `path` is used only for error messages. Rejects bad magic, unknown
/// versions, kind mismatches, truncation, tail garbage and checksum
/// failures; never panics on any input.
pub fn decode<'a>(
    path: &Path,
    expected: ArtifactKind,
    bytes: &'a [u8],
) -> Result<&'a [u8], ArtifactError> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != ARTIFACT_MAGIC {
        return Err(ArtifactError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
    let version = u32_at(8);
    if version != ARTIFACT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let kind = ArtifactKind::from_u32(u32_at(12));
    if kind != Some(expected) {
        return Err(ArtifactError::WrongKind {
            path: path.to_path_buf(),
            expected,
            found: kind,
        });
    }
    let declared = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let actual = (bytes.len() - HEADER_LEN) as u64;
    if declared != actual {
        return Err(ArtifactError::Truncated {
            path: path.to_path_buf(),
            expected: declared,
            found: actual,
        });
    }
    let payload = &bytes[HEADER_LEN..];
    let recorded = u32_at(24);
    let computed = crc32(payload);
    if recorded != computed {
        return Err(ArtifactError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: recorded,
            found: computed,
        });
    }
    Ok(payload)
}

// --- I/O abstraction --------------------------------------------------------

/// Filesystem operations the artifact layer needs, as a trait so the
/// fault-injection harness ([`crate::fault::FaultyIo`]) can deterministically
/// simulate crashes, torn writes and bit rot underneath real callers.
pub trait ArtifactIo {
    /// Durably replace `path` with `bytes`: temp file + fsync + rename.
    /// After a crash at any point, `path` holds either its previous contents
    /// or all of `bytes` — never a prefix.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), ArtifactError>;

    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>, ArtifactError>;

    /// Delete the file at `path` (used by rolling checkpoint retention).
    fn remove(&self, path: &Path) -> Result<(), ArtifactError>;

    /// List the files directly inside `dir`.
    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, ArtifactError>;
}

/// The real filesystem implementation of [`ArtifactIo`].
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

impl StdIo {
    fn io_err(path: &Path, source: std::io::Error) -> ArtifactError {
        ArtifactError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

impl ArtifactIo for StdIo {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir).map_err(|e| Self::io_err(path, e))?;
        }
        // Temp file in the destination directory so the rename cannot cross
        // filesystems (cross-device renames are not atomic).
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string());
        let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
        let result = (|| {
            let mut f = std::fs::File::create(&tmp).map_err(|e| Self::io_err(&tmp, e))?;
            f.write_all(bytes).map_err(|e| Self::io_err(&tmp, e))?;
            // Data must be on disk before the rename publishes it, else the
            // rename can survive a crash while the contents do not.
            f.sync_all().map_err(|e| Self::io_err(&tmp, e))?;
            drop(f);
            std::fs::rename(&tmp, path).map_err(|e| Self::io_err(path, e))?;
            // Durable directory entry: best-effort (not all platforms allow
            // opening directories for sync).
            if let Some(dir) = dir {
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, ArtifactError> {
        std::fs::read(path).map_err(|e| Self::io_err(path, e))
    }

    fn remove(&self, path: &Path) -> Result<(), ArtifactError> {
        std::fs::remove_file(path).map_err(|e| Self::io_err(path, e))
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, ArtifactError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| Self::io_err(dir, e))? {
            let entry = entry.map_err(|e| Self::io_err(dir, e))?;
            out.push(entry.path());
        }
        out.sort();
        Ok(out)
    }
}

/// Frame `payload` as `kind` and atomically write it to `path`.
pub fn write_artifact(
    io: &dyn ArtifactIo,
    path: &Path,
    kind: ArtifactKind,
    payload: &[u8],
) -> Result<(), ArtifactError> {
    io.write_atomic(path, &encode(kind, payload))
}

/// Read `path`, validate its frame as `kind`, and return the payload.
pub fn read_artifact(
    io: &dyn ArtifactIo,
    path: &Path,
    kind: ArtifactKind,
) -> Result<Vec<u8>, ArtifactError> {
    let bytes = io.read(path)?;
    let payload = decode(path, kind, &bytes)?;
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PathBuf {
        PathBuf::from("test.pkgm")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let payload = b"hello artifact".to_vec();
        let framed = encode(ArtifactKind::Model, &payload);
        assert_eq!(framed.len(), HEADER_LEN + payload.len());
        let back = decode(&p(), ArtifactKind::Model, &framed).unwrap();
        assert_eq!(back, &payload[..]);
    }

    #[test]
    fn decode_rejects_every_truncation_point() {
        let framed = encode(ArtifactKind::Service, b"some payload bytes");
        for cut in 0..framed.len() {
            let err = decode(&p(), ArtifactKind::Service, &framed[..cut]);
            assert!(err.is_err(), "truncation at {cut} must be rejected");
        }
    }

    #[test]
    fn decode_rejects_every_single_bit_flip() {
        let framed = encode(ArtifactKind::Snapshot, b"payload under test");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode(&p(), ArtifactKind::Snapshot, &bad).is_err(),
                    "bit flip at byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn decode_rejects_tail_garbage() {
        let mut framed = encode(ArtifactKind::Model, b"abc");
        framed.extend_from_slice(b"junk");
        assert!(matches!(
            decode(&p(), ArtifactKind::Model, &framed),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_rejects_kind_confusion_and_version_skew() {
        let framed = encode(ArtifactKind::Model, b"abc");
        assert!(matches!(
            decode(&p(), ArtifactKind::Snapshot, &framed),
            Err(ArtifactError::WrongKind { .. })
        ));
        let mut future = framed.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&p(), ArtifactKind::Model, &future),
            Err(ArtifactError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn std_io_write_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("pkgm-artifact-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.pkgm");
        write_artifact(&StdIo, &path, ArtifactKind::Model, b"v1").unwrap();
        assert_eq!(
            read_artifact(&StdIo, &path, ArtifactKind::Model).unwrap(),
            b"v1"
        );
        // Overwrite replaces contents and leaves no temp droppings.
        write_artifact(&StdIo, &path, ArtifactKind::Model, b"v2").unwrap();
        assert_eq!(
            read_artifact(&StdIo, &path, ArtifactKind::Model).unwrap(),
            b"v2"
        );
        let leftovers: Vec<_> = StdIo
            .list(&dir)
            .unwrap()
            .into_iter()
            .filter(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().contains(".tmp."))
            })
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_missing_file_is_typed_io_error() {
        let err = read_artifact(
            &StdIo,
            Path::new("/nonexistent/x.pkgm"),
            ArtifactKind::Model,
        );
        assert!(matches!(err, Err(ArtifactError::Io { .. })));
    }
}

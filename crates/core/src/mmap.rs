//! Minimal read-only memory mapping with a heap fallback.
//!
//! The out-of-core serving path ([`crate::snapshot3`]) wants snapshot
//! sections mapped straight from disk so a row lookup is pointer
//! arithmetic into the page cache — no per-row decode, no heap copy, and
//! startup cost independent of table size. The container ships no `libc`
//! crate, so the three syscalls we need (`mmap`/`munmap`/`madvise`) are
//! declared directly against the C ABI on unix targets.
//!
//! Everything is wrapped in [`MmapRegion`], which presents the file as a
//! plain `&[u8]` regardless of backing:
//!
//! * **Mapped** — a private read-only mapping of the whole file. Dropped
//!   with `munmap`. Advised `MADV_RANDOM` because snapshot lookups are
//!   point reads, not scans.
//! * **Heap** — the file read into an 8-byte-aligned buffer. Used on
//!   non-unix targets, when the mapping syscall fails, or when forced
//!   (tests, or the `PKGM_NO_MMAP` environment variable) so every code
//!   path runs anywhere.
//!
//! The buffer alignment matters: snapshot sections are reinterpreted as
//! `&[f32]`/`&[u32]` slices, so the fallback stores `Vec<u64>` (8-byte
//! aligned) rather than `Vec<u8>` (1-byte aligned). Mapped memory is
//! page-aligned by definition.

use std::fs::File;
use std::io::Read;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    /// Expect point lookups; don't read ahead aggressively.
    pub const MADV_RANDOM: i32 = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }
}

enum Backing {
    /// Start pointer + length of a live `mmap` region (unix only).
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// File contents copied into an 8-byte-aligned heap buffer. The
    /// `u64` element type guarantees the alignment that section slices
    /// (`f32`/`u32`) require; `len` is the byte length (the last word
    /// may be padding).
    Heap { buf: Vec<u64>, len: usize },
}

/// A read-only view of a whole file, mapped when possible.
pub struct MmapRegion {
    backing: Backing,
}

// The mapping is read-only for its whole lifetime and owned uniquely by
// this struct, so sharing references across threads is safe.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Open `path`, preferring a read-only mapping. Set `force_heap` to
    /// skip the syscall entirely (tests exercise the fallback this way;
    /// the public entry points also honor the `PKGM_NO_MMAP` environment
    /// variable).
    pub fn open(path: &Path, force_heap: bool) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
        })?;
        if !force_heap && !no_mmap_env() {
            #[cfg(unix)]
            if len > 0 {
                if let Some(region) = Self::try_map(&file, len) {
                    return Ok(region);
                }
            }
        }
        // Fallback: read into an 8-byte-aligned buffer.
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        // View the word buffer as bytes for the read. Safe: u64 has no
        // invalid bit patterns and the buffer is exclusively owned.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        Ok(Self {
            backing: Backing::Heap { buf, len },
        })
    }

    #[cfg(unix)]
    fn try_map(file: &File, len: usize) -> Option<Self> {
        use std::os::fd::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return None; // MAP_FAILED — fall back to the heap read.
        }
        // Advisory only; ignore failure.
        unsafe { sys::madvise(ptr, len, sys::MADV_RANDOM) };
        Some(Self {
            backing: Backing::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    /// The file contents. Guaranteed 8-byte aligned at offset 0.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap { buf, len } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    /// True when backed by a live `mmap` (false for the heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap { .. } => false,
        }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            unsafe { sys::munmap(ptr as *mut std::ffi::c_void, len) };
        }
    }
}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// True when the `PKGM_NO_MMAP` environment variable disables mapping
/// (any non-empty value other than `0`).
fn no_mmap_env() -> bool {
    match std::env::var("PKGM_NO_MMAP") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("pkgm-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn mapped_and_heap_agree() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("agree", &data);
        let mapped = MmapRegion::open(&path, false).unwrap();
        let heap = MmapRegion::open(&path, true).unwrap();
        assert!(!heap.is_mapped());
        assert_eq!(mapped.bytes(), &data[..]);
        assert_eq!(heap.bytes(), &data[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_is_eight_byte_aligned() {
        // Odd length: the last word is padded, alignment must still hold.
        let path = temp_file("align", &[7u8; 4097]);
        let heap = MmapRegion::open(&path, true).unwrap();
        assert_eq!(heap.bytes().len(), 4097);
        assert_eq!(heap.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_opens() {
        let path = temp_file("empty", &[]);
        let region = MmapRegion::open(&path, false).unwrap();
        assert!(region.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::env::temp_dir().join("pkgm-mmap-definitely-missing");
        assert!(MmapRegion::open(&path, false).is_err());
    }
}

//! Margin-loss pre-training with hand-derived gradients.
//!
//! The loss (paper Eq. 4) over positives `(h,r,t)` and their corruptions:
//!
//! ```text
//! L = Σ [ f(h,r,t) + γ − f(h′,r′,t′) ]₊ ,   f = f_T + f_R
//! ```
//!
//! Both `f_T = ‖h + r − t‖₁` and `f_R = ‖M_r·h − r‖₁` are piecewise linear,
//! so subgradients are sign vectors:
//!
//! * `∂f_T/∂h = s`, `∂f_T/∂r = s`, `∂f_T/∂t = −s` with `s = sgn(h + r − t)`;
//! * `∂f_R/∂r = −u`, `∂f_R/∂h = M_rᵀ·u`, `∂f_R/∂M_r = u·hᵀ` with
//!   `u = sgn(M_r·h − r)`.
//!
//! Violated pairs contribute `+∂f(pos) − ∂f(neg)`. The forward/backward work
//! runs through the fused, relation-blocked kernels in [`crate::kernels`]
//! (sparse index-sorted gradients, preallocated scratch, `M_r·h` computed
//! once per positive), in parallel across minibatch chunks with rayon, and
//! is applied with lazy row-wise Adam — the paper trains with Adam at
//! lr 1e-4, batch 1000, 1 negative per edge, 2 epochs.
//!
//! ## Determinism & chunk-layout contract
//!
//! Training is a pure function of `(model seed, TrainConfig, store)`: every
//! RNG is derived fresh from `(cfg.seed, epoch, batch_idx, chunk_idx)`, and
//! per-chunk gradients merge in ascending chunk order whether or not
//! `cfg.parallel` is set — so serial and parallel runs of the same chunk
//! layout produce **bit-identical** models, and a checkpoint resume replays
//! the exact stream it would have seen uninterrupted.
//!
//! The chunk layout is part of that contract. `cfg.chunk_size = Some(n)`
//! pins it explicitly; `None` adapts to `batch_len / rayon threads`
//! (min [`crate::kernels::MIN_CHUNK_SIZE`]), which is stable within a
//! process but may differ across machines — pin it when bit-equality across
//! differently-sized hosts matters.

use crate::artifact::{self, ArtifactError, ArtifactIo, ArtifactKind};
use crate::kernels::{
    baseline_chunk_grads, fused_chunk_grads, ChunkGrads, ScratchPool, MIN_CHUNK_SIZE,
};
use crate::model::PkgmModel;
use crate::negative::NegativeSampler;
use crate::serialize::{model_from_bytes, model_to_bytes, SerializeError};
use bytes::{Buf, BufMut, BytesMut};
use pkgm_store::TripleStore;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate (paper: 1e-4; larger values converge faster at toy
    /// scale).
    pub lr: f32,
    /// Margin γ between positive and negative scores.
    pub margin: f32,
    /// Positives per minibatch (paper: 1000).
    pub batch_size: usize,
    /// Passes over the triple set (paper: 2).
    pub epochs: usize,
    /// Negatives generated per positive (paper: 1).
    pub negatives: usize,
    /// Base RNG seed for shuffling and corruption.
    pub seed: u64,
    /// Project entity embeddings onto the unit L2 ball after each batch
    /// (the TransE constraint).
    pub normalize_entities: bool,
    /// Compute batch gradients in parallel with rayon.
    pub parallel: bool,
    /// Minibatch chunk size for gradient workers. `None` (the default, and
    /// what pre-existing checkpoints decode to) adapts to
    /// `batch_len / rayon threads`, floored at
    /// [`MIN_CHUNK_SIZE`]. The layout seeds the per-chunk corruption RNGs,
    /// so it is part of the checkpoint-equivalence contract: resuming with a
    /// different chunk size (or, under `None`, a different thread count)
    /// changes which negatives are drawn — pin `Some(n)` where bit-equality
    /// across hosts matters.
    pub chunk_size: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            margin: 4.0,
            batch_size: 1000,
            epochs: 2,
            negatives: 1,
            seed: 0,
            normalize_entities: true,
            parallel: true,
            chunk_size: None,
        }
    }
}

impl TrainConfig {
    /// The paper's pre-training setting (lr 1e-4, batch 1000, 2 epochs).
    pub fn paper() -> Self {
        Self {
            lr: 1e-4,
            ..Self::default()
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Mean hinge loss per pair.
    pub mean_loss: f32,
    /// Fraction of pairs violating the margin.
    pub violation_rate: f32,
    /// Pairs processed.
    pub pairs: usize,
}

/// Full training report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Stats per epoch, in order (only the epochs run in this call — a
    /// resumed run reports its own epochs, not the checkpointed ones).
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
    /// `Some(reason)` if the NaN / loss-divergence guard stopped training
    /// early. The model holds the last epoch's (possibly bad) parameters,
    /// but no checkpoint of them was written — resume restarts from the
    /// last good checkpoint.
    pub halted: Option<String>,
}

/// Checkpointing policy for [`Trainer::train_with_checkpoints`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory receiving `ckpt-{epoch}.pkgm` files (created if missing).
    pub dir: PathBuf,
    /// Write a checkpoint every this many epochs (clamped to ≥ 1); the
    /// final epoch is always checkpointed.
    pub every: usize,
    /// Rolling retention: keep at most this many newest checkpoints
    /// (clamped to ≥ 1). Older ones are deleted after each write.
    pub keep_last: usize,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` after every epoch, keeping the last three.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 1,
            keep_last: 3,
        }
    }
}

/// Failures from checkpointed training. Epoch math and gradient work are
/// infallible; only artifact I/O can fail.
#[derive(Debug)]
pub enum TrainError {
    /// Writing or pruning a checkpoint failed.
    Artifact(ArtifactError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Artifact(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Artifact(e) => Some(e),
        }
    }
}

impl From<ArtifactError> for TrainError {
    fn from(e: ArtifactError) -> Self {
        TrainError::Artifact(e)
    }
}

/// Which gradient kernel drives the training inner loop. Runtime-only (not
/// serialized into checkpoints); exists so benchmarks can measure the old
/// path against the fused one on identical inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradKernel {
    /// Fused relation-blocked kernels with scratch accumulation
    /// ([`fused_chunk_grads`]) — the production path.
    #[default]
    Fused,
    /// The pre-kernel per-pair hash-map path ([`baseline_chunk_grads`]),
    /// kept for before/after throughput comparison.
    Baseline,
}

/// Lazy row-wise Adam state for the three parameter blocks.
pub struct Trainer {
    /// Training hyper-parameters.
    pub cfg: TrainConfig,
    // Moment vectors, step counter and epoch cursor are crate-visible so
    // the out-of-core block trainer ([`crate::ooc`]) can run a shard-pair
    // block through the exact same Adam state it would have used resident.
    pub(crate) m_ent: Vec<f32>,
    pub(crate) v_ent: Vec<f32>,
    pub(crate) m_rel: Vec<f32>,
    pub(crate) v_rel: Vec<f32>,
    pub(crate) m_mat: Vec<f32>,
    pub(crate) v_mat: Vec<f32>,
    pub(crate) t: u64,
    epochs_done: usize,
    /// Gradient-kernel selector (bench plumbing; defaults to fused).
    kernel: GradKernel,
    /// Pooled per-worker scratch buffers, reused across batches.
    scratch: ScratchPool,
}

const BETA1: f32 = 0.9;
const BETA2: f32 = 0.999;
const EPS: f32 = 1e-8;

/// Halt when an epoch's mean loss exceeds this multiple of the best (lowest,
/// floored) mean loss seen so far in the run — the parameters are diverging
/// and further checkpoints would persist garbage.
const DIVERGENCE_FACTOR: f32 = 100.0;

impl Trainer {
    /// Allocate optimizer state sized to `model`.
    pub fn new(model: &PkgmModel, cfg: TrainConfig) -> Self {
        Self {
            cfg,
            m_ent: vec![0.0; model.ent.len()],
            v_ent: vec![0.0; model.ent.len()],
            m_rel: vec![0.0; model.rel.len()],
            v_rel: vec![0.0; model.rel.len()],
            m_mat: vec![0.0; model.mats.len()],
            v_mat: vec![0.0; model.mats.len()],
            t: 0,
            epochs_done: 0,
            kernel: GradKernel::default(),
            scratch: ScratchPool::new(),
        }
    }

    /// Select the gradient kernel (bench plumbing — see [`GradKernel`]).
    /// Kernel choice affects throughput and f32 rounding detail, never the
    /// math: both kernels implement the same subgradients.
    pub fn set_kernel(&mut self, kernel: GradKernel) {
        self.kernel = kernel;
    }

    /// The gradient kernel currently driving training.
    pub fn kernel(&self) -> GradKernel {
        self.kernel
    }

    /// Adam steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Epochs completed so far (nonzero after a checkpoint resume).
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// Run up to `cfg.epochs` total passes over the store's triples (a
    /// resumed trainer continues from [`Trainer::epochs_done`]), stopping
    /// early if the NaN / divergence guard trips.
    pub fn train(&mut self, model: &mut PkgmModel, store: &TripleStore) -> TrainReport {
        self.run(model, store, None)
            .expect("training without checkpoints performs no I/O")
    }

    /// Like [`Trainer::train`], but emit an atomic, checksummed
    /// `ckpt-{epoch}.pkgm` artifact into `ckpt.dir` every `ckpt.every`
    /// epochs (and after the final epoch), pruning to the newest
    /// `ckpt.keep_last`. A `kill -9` at any point loses at most one
    /// checkpoint interval: [`load_latest_checkpoint`] restarts from the
    /// newest valid artifact.
    pub fn train_with_checkpoints(
        &mut self,
        model: &mut PkgmModel,
        store: &TripleStore,
        ckpt: &CheckpointConfig,
        io: &dyn ArtifactIo,
    ) -> Result<TrainReport, TrainError> {
        self.run(model, store, Some((ckpt, io)))
    }

    fn run(
        &mut self,
        model: &mut PkgmModel,
        store: &TripleStore,
        ckpt: Option<(&CheckpointConfig, &dyn ArtifactIo)>,
    ) -> Result<TrainReport, TrainError> {
        let start = std::time::Instant::now();
        let total = self.cfg.epochs;
        let mut epochs = Vec::with_capacity(total.saturating_sub(self.epochs_done));
        let mut halted = None;
        let mut best_loss = f32::INFINITY;
        while self.epochs_done < total {
            let epoch = self.epochs_done;
            let stats = self.train_epoch(model, store, epoch as u64);
            // NaN / divergence guard: stop before persisting (or keeping)
            // garbage parameters. The last good checkpoint stays on disk.
            if let Some(reason) = diverged(stats.mean_loss, best_loss) {
                halted = Some(format!("epoch {}: {reason}", epoch + 1));
                epochs.push(stats);
                break;
            }
            best_loss = best_loss.min(stats.mean_loss.max(1e-3));
            epochs.push(stats);
            self.epochs_done = epoch + 1;
            if let Some((cfg, io)) = ckpt {
                let every = cfg.every.max(1);
                if self.epochs_done.is_multiple_of(every) || self.epochs_done == total {
                    self.write_checkpoint(io, cfg, model)?;
                }
            }
        }
        Ok(TrainReport {
            epochs,
            wall_secs: start.elapsed().as_secs_f64(),
            halted,
        })
    }

    /// One pass over the triples, in shuffled minibatches.
    pub fn train_epoch(
        &mut self,
        model: &mut PkgmModel,
        store: &TripleStore,
        epoch: u64,
    ) -> EpochStats {
        let sampler = NegativeSampler::new(store);
        let mut order: Vec<u32> = (0..store.len() as u32).collect();
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ (epoch << 32) ^ 0x5EED);
        order.shuffle(&mut rng);

        let mut total_loss = 0.0f64;
        let mut total_violations = 0usize;
        let mut total_pairs = 0usize;

        let batch_size = self.cfg.batch_size.max(1);
        for (batch_idx, batch) in order.chunks(batch_size).enumerate() {
            let acc = self.batch_gradients(model, store, &sampler, batch, epoch, batch_idx as u64);
            total_loss += acc.loss;
            total_violations += acc.violations;
            total_pairs += acc.pairs;
            self.apply(model, acc);
        }

        EpochStats {
            mean_loss: if total_pairs > 0 {
                (total_loss / total_pairs as f64) as f32
            } else {
                0.0
            },
            violation_rate: if total_pairs > 0 {
                total_violations as f32 / total_pairs as f32
            } else {
                0.0
            },
            pairs: total_pairs,
        }
    }

    /// The worker chunk size for a batch: `cfg.chunk_size` if pinned, else
    /// an even split across rayon's threads floored at [`MIN_CHUNK_SIZE`].
    /// Computed identically for serial and parallel runs — the layout (and
    /// with it the per-chunk RNG streams) must not depend on `cfg.parallel`.
    pub(crate) fn chunk_size_for(&self, batch_len: usize) -> usize {
        match self.cfg.chunk_size {
            Some(n) => n.max(1),
            None => (batch_len / rayon::current_num_threads().max(1)).max(MIN_CHUNK_SIZE),
        }
    }

    fn batch_gradients(
        &self,
        model: &PkgmModel,
        store: &TripleStore,
        sampler: &NegativeSampler,
        batch: &[u32],
        epoch: u64,
        batch_idx: u64,
    ) -> ChunkGrads {
        let margin = self.cfg.margin;
        let negatives = self.cfg.negatives.max(1);
        let seed = self.cfg.seed ^ (epoch << 40) ^ (batch_idx << 8);
        let triples = store.triples();
        let chunk_size = self.chunk_size_for(batch.len());

        // Corruptions are drawn in original chunk order *before* the kernel
        // relation-blocks the pairs, so the RNG stream is exactly what the
        // old per-pair loop consumed for the same chunk layout.
        let chunk_grads = |(chunk_idx, chunk): (usize, &[u32])| -> ChunkGrads {
            let mut rng = SmallRng::seed_from_u64(seed ^ chunk_idx as u64);
            self.scratch.with_scratch(model, |sc| {
                let mut pairs = std::mem::take(&mut sc.pairs);
                sampler.corrupt_batch_into(
                    chunk.iter().map(|&idx| triples[idx as usize]),
                    store,
                    negatives,
                    &mut rng,
                    &mut pairs,
                );
                let out = match self.kernel {
                    GradKernel::Fused => fused_chunk_grads(model, sc, &pairs, margin),
                    GradKernel::Baseline => baseline_chunk_grads(model, &pairs, margin),
                };
                sc.pairs = pairs;
                out
            })
        };

        // Chunks are folded in ascending chunk order in both branches (the
        // vendored rayon collect preserves input order), pinning the f32
        // merge order: serial and parallel runs are bit-identical.
        let per_chunk: Vec<ChunkGrads> = if self.cfg.parallel {
            batch
                .par_chunks(chunk_size)
                .enumerate()
                .map(chunk_grads)
                .collect()
        } else {
            batch
                .chunks(chunk_size)
                .enumerate()
                .map(chunk_grads)
                .collect()
        };
        per_chunk
            .into_iter()
            .fold(ChunkGrads::empty(), ChunkGrads::merge)
    }

    /// Apply one Adam step from the accumulated sparse gradients.
    pub(crate) fn apply(&mut self, model: &mut PkgmModel, acc: ChunkGrads) {
        self.t += 1;
        let bc1 = 1.0 - BETA1.powi(self.t as i32);
        let bc2 = 1.0 - BETA2.powi(self.t as i32);
        let lr_t = self.cfg.lr * bc2.sqrt() / bc1;
        let d = model.cfg.dim;
        let dd = d * d;

        let mut touched_entities: Vec<u32> = Vec::with_capacity(acc.ent.len());
        for (row, g) in acc.ent {
            let off = row as usize * d;
            adam_update(
                &mut model.ent[off..off + d],
                &g,
                &mut self.m_ent[off..off + d],
                &mut self.v_ent[off..off + d],
                lr_t,
            );
            touched_entities.push(row);
        }
        for (row, g) in acc.rel {
            let off = row as usize * d;
            adam_update(
                &mut model.rel[off..off + d],
                &g,
                &mut self.m_rel[off..off + d],
                &mut self.v_rel[off..off + d],
                lr_t,
            );
        }
        for (row, g) in acc.mat {
            let off = row as usize * dd;
            adam_update(
                &mut model.mats[off..off + dd],
                &g,
                &mut self.m_mat[off..off + dd],
                &mut self.v_mat[off..off + dd],
                lr_t,
            );
        }
        if self.cfg.normalize_entities {
            model.normalize_entities(touched_entities);
        }
    }

    // --- checkpointing ------------------------------------------------------
    //
    // A checkpoint is everything needed to continue training bit-for-bit:
    // the model parameters, the Adam moment vectors and step counter, the
    // epoch cursor and the full `TrainConfig`. The RNG streams need no
    // serialized state: every shuffle / corruption RNG is derived fresh from
    // `(cfg.seed, epoch, batch, chunk)`, so `(cfg.seed, epochs_done)` *is*
    // the complete RNG state at an epoch boundary.
    //
    // Payload layout (wrapped in an `ArtifactKind::Checkpoint` frame):
    //
    // ```text
    // model                 model_to_bytes (self-delimiting)
    // t                     u64   Adam steps taken
    // epochs_done           u64
    // cfg_len               u64
    // cfg                   cfg_len bytes of TrainConfig JSON
    // m_ent v_ent m_rel v_rel m_mat v_mat    f32s, lengths implied by model
    // ```

    /// Serialize this trainer plus `model` as a resumable checkpoint payload.
    pub fn checkpoint_to_bytes(&self, model: &PkgmModel) -> bytes::Bytes {
        let model_bytes = model_to_bytes(model);
        let cfg_json = serde_json::to_vec(&self.cfg).expect("train config serializes");
        let state_len = 2 * (self.m_ent.len() + self.m_rel.len() + self.m_mat.len());
        let mut buf =
            BytesMut::with_capacity(model_bytes.len() + 24 + cfg_json.len() + state_len * 4);
        buf.put_slice(&model_bytes);
        buf.put_u64_le(self.t);
        buf.put_u64_le(self.epochs_done as u64);
        buf.put_u64_le(cfg_json.len() as u64);
        buf.put_slice(&cfg_json);
        for block in [
            &self.m_ent,
            &self.v_ent,
            &self.m_rel,
            &self.v_rel,
            &self.m_mat,
            &self.v_mat,
        ] {
            for &x in block {
                buf.put_f32_le(x);
            }
        }
        buf.freeze()
    }

    /// Rebuild a model + trainer pair from checkpoint payload bytes.
    /// Rejects truncated or size-inconsistent payloads with a typed error.
    pub fn from_checkpoint_bytes(bytes: &[u8]) -> Result<(PkgmModel, Trainer), SerializeError> {
        let (model, consumed) = model_from_bytes(bytes)?;
        let mut b = &bytes[consumed..];
        if b.len() < 24 {
            return Err(SerializeError::Corrupt("truncated checkpoint state".into()));
        }
        let t = b.get_u64_le();
        let epochs_done = b.get_u64_le() as usize;
        let cfg_len = b.get_u64_le() as usize;
        if b.remaining() < cfg_len {
            return Err(SerializeError::Corrupt("truncated train config".into()));
        }
        let cfg: TrainConfig = serde_json::from_slice(&b[..cfg_len])
            .map_err(|e| SerializeError::Corrupt(format!("train config json: {e}")))?;
        b.advance(cfg_len);
        let need = 2 * (model.ent.len() + model.rel.len() + model.mats.len());
        if b.remaining() != need * 4 {
            return Err(SerializeError::Corrupt(format!(
                "expected {} optimizer state bytes, found {}",
                need * 4,
                b.remaining()
            )));
        }
        let mut read_block = |n: usize| -> Vec<f32> {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(b.get_f32_le());
            }
            v
        };
        let m_ent = read_block(model.ent.len());
        let v_ent = read_block(model.ent.len());
        let m_rel = read_block(model.rel.len());
        let v_rel = read_block(model.rel.len());
        let m_mat = read_block(model.mats.len());
        let v_mat = read_block(model.mats.len());
        Ok((
            model,
            Trainer {
                cfg,
                m_ent,
                v_ent,
                m_rel,
                v_rel,
                m_mat,
                v_mat,
                t,
                epochs_done,
                kernel: GradKernel::default(),
                scratch: ScratchPool::new(),
            },
        ))
    }

    /// Atomically write `ckpt.dir/ckpt-{epochs_done}.pkgm` and prune to the
    /// newest `ckpt.keep_last` checkpoints.
    pub fn write_checkpoint(
        &self,
        io: &dyn ArtifactIo,
        ckpt: &CheckpointConfig,
        model: &PkgmModel,
    ) -> Result<PathBuf, ArtifactError> {
        let path = checkpoint_path(&ckpt.dir, self.epochs_done);
        artifact::write_artifact(
            io,
            &path,
            ArtifactKind::Checkpoint,
            &self.checkpoint_to_bytes(model),
        )?;
        // Rolling retention: delete all but the newest keep_last. A failed
        // delete is not fatal to the training run's durability.
        let mut found: Vec<(u64, PathBuf)> = io
            .list(&ckpt.dir)?
            .into_iter()
            .filter_map(|p| checkpoint_epoch(&p).map(|e| (e, p)))
            .collect();
        found.sort();
        let keep = ckpt.keep_last.max(1);
        for (_, old) in found.iter().take(found.len().saturating_sub(keep)) {
            io.remove(old)?;
        }
        Ok(path)
    }
}

/// The canonical checkpoint file path for an epoch count.
pub fn checkpoint_path(dir: &Path, epoch: usize) -> PathBuf {
    dir.join(format!("ckpt-{epoch:05}.pkgm"))
}

/// Parse the epoch out of a `ckpt-{epoch}.pkgm` file name.
fn checkpoint_epoch(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("ckpt-")?
        .strip_suffix(".pkgm")?
        .parse()
        .ok()
}

/// A model + trainer pair restored from the newest valid checkpoint.
pub struct ResumeState {
    /// The restored model parameters.
    pub model: PkgmModel,
    /// The restored optimizer + epoch cursor.
    pub trainer: Trainer,
    /// Which checkpoint file was loaded.
    pub path: PathBuf,
}

/// Outcome of scanning a checkpoint directory.
pub struct CheckpointScan {
    /// The newest checkpoint that validated and decoded, if any.
    pub resumed: Option<ResumeState>,
    /// Checkpoints that failed validation, newest first, with the reason.
    /// Corrupt files are skipped, never fatal: a torn newest checkpoint
    /// falls back to the previous valid one.
    pub skipped: Vec<(PathBuf, String)>,
}

/// Find and load the newest valid checkpoint in `dir`, skipping corrupt or
/// truncated ones (recording why). A missing directory is an empty scan.
pub fn load_latest_checkpoint(
    io: &dyn ArtifactIo,
    dir: &Path,
) -> Result<CheckpointScan, ArtifactError> {
    let entries = match io.list(dir) {
        Ok(e) => e,
        Err(_) if !dir.exists() => {
            return Ok(CheckpointScan {
                resumed: None,
                skipped: Vec::new(),
            })
        }
        Err(e) => return Err(e),
    };
    let mut found: Vec<(u64, PathBuf)> = entries
        .into_iter()
        .filter_map(|p| checkpoint_epoch(&p).map(|e| (e, p)))
        .collect();
    found.sort();
    let mut skipped = Vec::new();
    for (_, path) in found.into_iter().rev() {
        let attempt = io.read(&path).and_then(|bytes| {
            let payload = artifact::decode(&path, ArtifactKind::Checkpoint, &bytes)?;
            Trainer::from_checkpoint_bytes(payload).map_err(|e| ArtifactError::Corrupt {
                path: path.clone(),
                what: e.to_string(),
            })
        });
        match attempt {
            Ok((model, trainer)) => {
                return Ok(CheckpointScan {
                    resumed: Some(ResumeState {
                        model,
                        trainer,
                        path,
                    }),
                    skipped,
                })
            }
            Err(e) => skipped.push((path, e.to_string())),
        }
    }
    Ok(CheckpointScan {
        resumed: None,
        skipped,
    })
}

/// Did this epoch's loss go bad enough to halt?
pub(crate) fn diverged(mean_loss: f32, best: f32) -> Option<String> {
    if !mean_loss.is_finite() {
        return Some(format!("non-finite mean loss ({mean_loss})"));
    }
    if best.is_finite() && mean_loss > DIVERGENCE_FACTOR * best {
        return Some(format!(
            "mean loss {mean_loss} exceeds {DIVERGENCE_FACTOR}× the best epoch ({best})"
        ));
    }
    None
}

#[inline]
fn adam_update(w: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], lr_t: f32) {
    for i in 0..w.len() {
        let gi = g[i];
        m[i] = BETA1 * m[i] + (1.0 - BETA1) * gi;
        v[i] = BETA2 * v[i] + (1.0 - BETA2) * gi * gi;
        w[i] -= lr_t * m[i] / (v[i].sqrt() + EPS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PkgmConfig;
    use pkgm_store::StoreBuilder;

    /// A toy graph with structure: items 0..8 have brand (r0) and color (r1)
    /// values, two brands and two colors.
    fn toy_store() -> TripleStore {
        let mut b = StoreBuilder::new();
        for i in 0..8u32 {
            b.add_raw(i, 0, 8 + i % 2); // brand ∈ {8, 9}
            b.add_raw(i, 1, 10 + (i / 4) % 2); // color ∈ {10, 11}
        }
        b.build()
    }

    fn quick_cfg(seed: u64) -> TrainConfig {
        TrainConfig {
            lr: 0.05,
            margin: 2.0,
            batch_size: 16,
            epochs: 30,
            negatives: 2,
            seed,
            normalize_entities: true,
            parallel: false,
            chunk_size: None,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(16).with_seed(1),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(1));
        let report = trainer.train(&mut model, &store);
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.epochs.last().unwrap().mean_loss;
        assert!(
            last < first * 0.7,
            "loss did not drop: first {first}, last {last}"
        );
        assert!(trainer.steps() > 0);
    }

    #[test]
    fn trained_positives_score_below_negatives() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(16).with_seed(2),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(2));
        trainer.train(&mut model, &store);
        // Mean positive score must be clearly below mean corrupted score.
        let mut rng = SmallRng::seed_from_u64(0);
        let sampler = NegativeSampler::new(&store);
        let mut pos_sum = 0.0;
        let mut neg_sum = 0.0;
        for &t in store.triples() {
            pos_sum += model.score(t);
            let (n, _) = sampler.corrupt(t, &store, &mut rng);
            neg_sum += model.score(n);
        }
        // Mean margin achieved should be a decent fraction of γ = 2.0.
        let mean_gap = (neg_sum - pos_sum) / store.len() as f32;
        assert!(
            mean_gap > 1.0,
            "positives not separated: mean gap {mean_gap} (pos {pos_sum}, neg {neg_sum})"
        );
    }

    #[test]
    fn relation_module_learns_existence() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(16).with_seed(3),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(3));
        trainer.train(&mut model, &store);
        // Item 0 has relations 0 and 1. Value entity 8 has none (it is only
        // a tail). f_R should separate them.
        let has = model.score_relation(pkgm_store::EntityId(0), pkgm_store::RelationId(0));
        let hasnt = model.score_relation(pkgm_store::EntityId(8), pkgm_store::RelationId(0));
        assert!(
            has < hasnt,
            "relation module failed: f_R(has)={has} ≥ f_R(has-not)={hasnt}"
        );
    }

    #[test]
    fn parallel_and_serial_paths_both_converge() {
        let store = toy_store();
        for parallel in [false, true] {
            let mut model = PkgmModel::new(
                store.n_entities() as usize,
                store.n_relations() as usize,
                PkgmConfig::new(8).with_seed(4),
            );
            let cfg = TrainConfig {
                parallel,
                batch_size: 512,
                ..quick_cfg(4)
            };
            let mut trainer = Trainer::new(&model, cfg);
            let report = trainer.train(&mut model, &store);
            assert!(report.epochs.last().unwrap().violation_rate < 0.9);
        }
    }

    #[test]
    fn transe_ablation_trains_without_matrices() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::transe(16).with_seed(5),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(5));
        let report = trainer.train(&mut model, &store);
        assert!(model.mats.is_empty());
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.epochs.last().unwrap().mean_loss;
        assert!(last < first);
    }

    #[test]
    fn nan_guard_halts_training() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(7),
        );
        // Poison one parameter: every batch touching entity 0 yields NaN loss.
        model.ent[0] = f32::NAN;
        let mut trainer = Trainer::new(&model, quick_cfg(7));
        let report = trainer.train(&mut model, &store);
        let halted = report.halted.expect("NaN must halt training");
        assert!(halted.contains("non-finite"), "unexpected reason: {halted}");
        assert!(report.epochs.len() < 30, "guard must stop the run early");
    }

    #[test]
    fn divergence_guard_halts_training() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(8),
        );
        // An absurd learning rate without entity normalization blows the
        // parameters (and the hinge loss) up within a few epochs.
        let cfg = TrainConfig {
            lr: 1e4,
            normalize_entities: false,
            ..quick_cfg(8)
        };
        let mut trainer = Trainer::new(&model, cfg);
        let report = trainer.train(&mut model, &store);
        assert!(
            report.halted.is_some(),
            "divergent run must halt: {:?}",
            report
                .epochs
                .iter()
                .map(|e| e.mean_loss)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn checkpoint_roundtrip_restores_everything() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(9),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(9));
        trainer.train(&mut model, &store);
        let bytes = trainer.checkpoint_to_bytes(&model);
        let (m2, t2) = Trainer::from_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(m2.ent, model.ent);
        assert_eq!(m2.mats, model.mats);
        assert_eq!(t2.t, trainer.t);
        assert_eq!(t2.epochs_done, trainer.epochs_done);
        assert_eq!(t2.m_ent, trainer.m_ent);
        assert_eq!(t2.v_mat, trainer.v_mat);
        assert_eq!(t2.cfg.seed, trainer.cfg.seed);
        // Truncations are typed errors, not panics.
        for cut in [0, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(Trainer::from_checkpoint_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_for_bit() {
        let store = toy_store();
        let fresh_model = || {
            PkgmModel::new(
                store.n_entities() as usize,
                store.n_relations() as usize,
                PkgmConfig::new(8).with_seed(10),
            )
        };
        // Serial training is deterministic (parallel reduce order is not).
        let cfg = TrainConfig {
            epochs: 12,
            ..quick_cfg(10)
        };

        // Straight through: 12 epochs.
        let mut m_straight = fresh_model();
        let mut t_straight = Trainer::new(&m_straight, cfg.clone());
        t_straight.train(&mut m_straight, &store);

        // Interrupted: 5 epochs, checkpoint to bytes ("kill"), restore,
        // finish the remaining 7.
        let mut m_part = fresh_model();
        let mut t_part = Trainer::new(
            &m_part,
            TrainConfig {
                epochs: 5,
                ..cfg.clone()
            },
        );
        t_part.train(&mut m_part, &store);
        let bytes = t_part.checkpoint_to_bytes(&m_part);
        drop((m_part, t_part)); // the "crash"

        let (mut m_resumed, mut t_resumed) = Trainer::from_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(t_resumed.epochs_done(), 5);
        t_resumed.cfg.epochs = 12;
        let report = t_resumed.train(&mut m_resumed, &store);
        assert_eq!(report.epochs.len(), 7);

        // Bit-for-bit equality of every parameter block and the optimizer.
        assert_eq!(m_resumed.ent, m_straight.ent);
        assert_eq!(m_resumed.rel, m_straight.rel);
        assert_eq!(m_resumed.mats, m_straight.mats);
        assert_eq!(t_resumed.m_ent, t_straight.m_ent);
        assert_eq!(t_resumed.v_ent, t_straight.v_ent);
        assert_eq!(t_resumed.t, t_straight.t);
    }

    #[test]
    fn rolling_retention_keeps_last_k() {
        use crate::artifact::StdIo;
        let dir = std::env::temp_dir().join(format!("pkgm-ckpt-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(11),
        );
        let cfg = TrainConfig {
            epochs: 7,
            ..quick_cfg(11)
        };
        let ckpt = CheckpointConfig {
            dir: dir.clone(),
            every: 1,
            keep_last: 2,
        };
        let mut trainer = Trainer::new(&model, cfg);
        trainer
            .train_with_checkpoints(&mut model, &store, &ckpt, &StdIo)
            .unwrap();
        let kept: Vec<_> = StdIo
            .list(&dir)
            .unwrap()
            .into_iter()
            .filter(|p| checkpoint_epoch(p).is_some())
            .collect();
        assert_eq!(kept.len(), 2, "keep_last=2 must prune older: {kept:?}");
        assert_eq!(kept.last().unwrap(), &checkpoint_path(&dir, 7));

        let scan = load_latest_checkpoint(&StdIo, &dir).unwrap();
        let resumed = scan.resumed.expect("latest checkpoint loads");
        assert_eq!(resumed.trainer.epochs_done(), 7);
        assert_eq!(resumed.model.ent, model.ent);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_latest_checkpoint_falls_back_to_previous() {
        use crate::artifact::StdIo;
        let dir = std::env::temp_dir().join(format!("pkgm-ckpt-fb-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(12),
        );
        let ckpt = CheckpointConfig {
            dir: dir.clone(),
            every: 1,
            keep_last: 3,
        };
        let cfg = TrainConfig {
            epochs: 3,
            ..quick_cfg(12)
        };
        let mut trainer = Trainer::new(&model, cfg);
        trainer
            .train_with_checkpoints(&mut model, &store, &ckpt, &StdIo)
            .unwrap();
        // Tear the newest checkpoint in half, as a crash mid-write would
        // with a non-atomic writer.
        let latest = checkpoint_path(&dir, 3);
        let bytes = std::fs::read(&latest).unwrap();
        std::fs::write(&latest, &bytes[..bytes.len() / 2]).unwrap();

        let scan = load_latest_checkpoint(&StdIo, &dir).unwrap();
        let resumed = scan.resumed.expect("previous checkpoint still valid");
        assert_eq!(resumed.trainer.epochs_done(), 2);
        assert_eq!(resumed.path, checkpoint_path(&dir, 2));
        assert_eq!(scan.skipped.len(), 1);
        assert_eq!(scan.skipped[0].0, latest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_dir_is_empty_scan() {
        use crate::artifact::StdIo;
        let scan = load_latest_checkpoint(&StdIo, Path::new("/nonexistent/pkgm-ckpts")).unwrap();
        assert!(scan.resumed.is_none());
        assert!(scan.skipped.is_empty());
    }

    #[test]
    fn entity_norms_stay_bounded() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(6),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(6));
        trainer.train(&mut model, &store);
        for e in 0..store.n_entities() {
            let row = model.ent(pkgm_store::EntityId(e));
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm <= 1.0 + 1e-4, "entity {e} norm {norm} > 1");
        }
    }
}

//! Margin-loss pre-training with hand-derived gradients.
//!
//! The loss (paper Eq. 4) over positives `(h,r,t)` and their corruptions:
//!
//! ```text
//! L = Σ [ f(h,r,t) + γ − f(h′,r′,t′) ]₊ ,   f = f_T + f_R
//! ```
//!
//! Both `f_T = ‖h + r − t‖₁` and `f_R = ‖M_r·h − r‖₁` are piecewise linear,
//! so subgradients are sign vectors:
//!
//! * `∂f_T/∂h = s`, `∂f_T/∂r = s`, `∂f_T/∂t = −s` with `s = sgn(h + r − t)`;
//! * `∂f_R/∂r = −u`, `∂f_R/∂h = M_rᵀ·u`, `∂f_R/∂M_r = u·hᵀ` with
//!   `u = sgn(M_r·h − r)`.
//!
//! Violated pairs contribute `+∂f(pos) − ∂f(neg)`. Gradients are accumulated
//! sparsely (only touched rows/matrices), computed in parallel across the
//! minibatch with rayon, and applied with lazy row-wise Adam — the paper
//! trains with Adam at lr 1e-4, batch 1000, 1 negative per edge, 2 epochs.

use crate::model::{pkgm_dot, PkgmModel};
use crate::negative::NegativeSampler;
use pkgm_store::fxhash::FxHashMap;
use pkgm_store::{Triple, TripleStore};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate (paper: 1e-4; larger values converge faster at toy
    /// scale).
    pub lr: f32,
    /// Margin γ between positive and negative scores.
    pub margin: f32,
    /// Positives per minibatch (paper: 1000).
    pub batch_size: usize,
    /// Passes over the triple set (paper: 2).
    pub epochs: usize,
    /// Negatives generated per positive (paper: 1).
    pub negatives: usize,
    /// Base RNG seed for shuffling and corruption.
    pub seed: u64,
    /// Project entity embeddings onto the unit L2 ball after each batch
    /// (the TransE constraint).
    pub normalize_entities: bool,
    /// Compute batch gradients in parallel with rayon.
    pub parallel: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            margin: 4.0,
            batch_size: 1000,
            epochs: 2,
            negatives: 1,
            seed: 0,
            normalize_entities: true,
            parallel: true,
        }
    }
}

impl TrainConfig {
    /// The paper's pre-training setting (lr 1e-4, batch 1000, 2 epochs).
    pub fn paper() -> Self {
        Self {
            lr: 1e-4,
            ..Self::default()
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Mean hinge loss per pair.
    pub mean_loss: f32,
    /// Fraction of pairs violating the margin.
    pub violation_rate: f32,
    /// Pairs processed.
    pub pairs: usize,
}

/// Full training report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Stats per epoch, in order.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
}

/// Sparse gradient accumulator for one minibatch.
struct GradAcc {
    dim: usize,
    ent: FxHashMap<u32, Vec<f32>>,
    rel: FxHashMap<u32, Vec<f32>>,
    mat: FxHashMap<u32, Vec<f32>>,
    loss: f64,
    violations: usize,
    pairs: usize,
}

impl GradAcc {
    fn new(dim: usize) -> Self {
        Self {
            dim,
            ent: FxHashMap::default(),
            rel: FxHashMap::default(),
            mat: FxHashMap::default(),
            loss: 0.0,
            violations: 0,
            pairs: 0,
        }
    }

    fn merge(mut self, other: GradAcc) -> GradAcc {
        for (k, v) in other.ent {
            match self.ent.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&v) {
                        *a += b;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        for (k, v) in other.rel {
            match self.rel.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&v) {
                        *a += b;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        for (k, v) in other.mat {
            match self.mat.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&v) {
                        *a += b;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        self.loss += other.loss;
        self.violations += other.violations;
        self.pairs += other.pairs;
        self
    }

    /// Add the subgradient of `f(triple)` scaled by `sign` (+1 for the
    /// positive of a violated pair, −1 for the negative).
    fn accumulate(&mut self, model: &PkgmModel, triple: Triple, sign: f32) {
        let d = self.dim;
        let h = model.ent(triple.head);
        let r = model.rel(triple.relation);
        let t = model.ent(triple.tail);

        // Triple module.
        let ge = self
            .ent
            .entry(triple.head.0)
            .or_insert_with(|| vec![0.0; d]);
        let mut s = vec![0.0f32; d];
        for i in 0..d {
            let u = h[i] + r[i] - t[i];
            s[i] = sign * sgn(u);
            ge[i] += s[i];
        }
        let gr = self
            .rel
            .entry(triple.relation.0)
            .or_insert_with(|| vec![0.0; d]);
        for i in 0..d {
            gr[i] += s[i];
        }
        let gt = self
            .ent
            .entry(triple.tail.0)
            .or_insert_with(|| vec![0.0; d]);
        for i in 0..d {
            gt[i] -= s[i];
        }

        // Relation module.
        if model.cfg.relation_module {
            let m = model.mat(triple.relation);
            let mut u = vec![0.0f32; d];
            for i in 0..d {
                u[i] = sign * sgn(pkgm_dot(&m[i * d..(i + 1) * d], h) - r[i]);
            }
            let gr = self
                .rel
                .entry(triple.relation.0)
                .or_insert_with(|| vec![0.0; d]);
            for i in 0..d {
                gr[i] -= u[i];
            }
            let ge = self
                .ent
                .entry(triple.head.0)
                .or_insert_with(|| vec![0.0; d]);
            // ∂f_R/∂h = M_rᵀ u
            for i in 0..d {
                if u[i] == 0.0 {
                    continue;
                }
                let row = &m[i * d..(i + 1) * d];
                for j in 0..d {
                    ge[j] += u[i] * row[j];
                }
            }
            let gm = self
                .mat
                .entry(triple.relation.0)
                .or_insert_with(|| vec![0.0; d * d]);
            // ∂f_R/∂M_r = u hᵀ
            for i in 0..d {
                if u[i] == 0.0 {
                    continue;
                }
                let dst = &mut gm[i * d..(i + 1) * d];
                for (g, &hv) in dst.iter_mut().zip(h) {
                    *g += u[i] * hv;
                }
            }
        }
    }
}

#[inline]
fn sgn(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// Lazy row-wise Adam state for the three parameter blocks.
pub struct Trainer {
    /// Training hyper-parameters.
    pub cfg: TrainConfig,
    m_ent: Vec<f32>,
    v_ent: Vec<f32>,
    m_rel: Vec<f32>,
    v_rel: Vec<f32>,
    m_mat: Vec<f32>,
    v_mat: Vec<f32>,
    t: u64,
}

const BETA1: f32 = 0.9;
const BETA2: f32 = 0.999;
const EPS: f32 = 1e-8;

impl Trainer {
    /// Allocate optimizer state sized to `model`.
    pub fn new(model: &PkgmModel, cfg: TrainConfig) -> Self {
        Self {
            cfg,
            m_ent: vec![0.0; model.ent.len()],
            v_ent: vec![0.0; model.ent.len()],
            m_rel: vec![0.0; model.rel.len()],
            v_rel: vec![0.0; model.rel.len()],
            m_mat: vec![0.0; model.mats.len()],
            v_mat: vec![0.0; model.mats.len()],
            t: 0,
        }
    }

    /// Adam steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Run `cfg.epochs` passes over the store's triples.
    pub fn train(&mut self, model: &mut PkgmModel, store: &TripleStore) -> TrainReport {
        let start = std::time::Instant::now();
        let mut epochs = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            epochs.push(self.train_epoch(model, store, epoch as u64));
        }
        TrainReport {
            epochs,
            wall_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// One pass over the triples, in shuffled minibatches.
    pub fn train_epoch(
        &mut self,
        model: &mut PkgmModel,
        store: &TripleStore,
        epoch: u64,
    ) -> EpochStats {
        let sampler = NegativeSampler::new(store);
        let mut order: Vec<u32> = (0..store.len() as u32).collect();
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ (epoch << 32) ^ 0x5EED);
        order.shuffle(&mut rng);

        let mut total_loss = 0.0f64;
        let mut total_violations = 0usize;
        let mut total_pairs = 0usize;

        let batch_size = self.cfg.batch_size.max(1);
        for (batch_idx, batch) in order.chunks(batch_size).enumerate() {
            let acc = self.batch_gradients(model, store, &sampler, batch, epoch, batch_idx as u64);
            total_loss += acc.loss;
            total_violations += acc.violations;
            total_pairs += acc.pairs;
            self.apply(model, acc);
        }

        EpochStats {
            mean_loss: if total_pairs > 0 {
                (total_loss / total_pairs as f64) as f32
            } else {
                0.0
            },
            violation_rate: if total_pairs > 0 {
                total_violations as f32 / total_pairs as f32
            } else {
                0.0
            },
            pairs: total_pairs,
        }
    }

    fn batch_gradients(
        &self,
        model: &PkgmModel,
        store: &TripleStore,
        sampler: &NegativeSampler,
        batch: &[u32],
        epoch: u64,
        batch_idx: u64,
    ) -> GradAcc {
        let d = model.dim();
        let margin = self.cfg.margin;
        let negatives = self.cfg.negatives.max(1);
        let seed = self.cfg.seed ^ (epoch << 40) ^ (batch_idx << 8);
        let triples = store.triples();

        let chunk_grads = |(chunk_idx, chunk): (usize, &[u32])| -> GradAcc {
            let mut rng = SmallRng::seed_from_u64(seed ^ chunk_idx as u64);
            let mut acc = GradAcc::new(d);
            for &idx in chunk {
                let pos = triples[idx as usize];
                for _ in 0..negatives {
                    let (neg, _) = sampler.corrupt(pos, store, &mut rng);
                    let f_pos = model.score(pos);
                    let f_neg = model.score(neg);
                    let viol = f_pos + margin - f_neg;
                    acc.pairs += 1;
                    if viol > 0.0 {
                        acc.loss += viol as f64;
                        acc.violations += 1;
                        acc.accumulate(model, pos, 1.0);
                        acc.accumulate(model, neg, -1.0);
                    } else {
                        acc.loss += f_neg.min(f_pos + margin) as f64 * 0.0; // hinge is 0
                    }
                }
            }
            acc
        };

        if self.cfg.parallel && batch.len() >= 128 {
            batch
                .par_chunks(64)
                .enumerate()
                .map(chunk_grads)
                .reduce(|| GradAcc::new(d), GradAcc::merge)
        } else {
            chunk_grads((0, batch))
        }
    }

    /// Apply one Adam step from the accumulated sparse gradients.
    fn apply(&mut self, model: &mut PkgmModel, acc: GradAcc) {
        self.t += 1;
        let bc1 = 1.0 - BETA1.powi(self.t as i32);
        let bc2 = 1.0 - BETA2.powi(self.t as i32);
        let lr_t = self.cfg.lr * bc2.sqrt() / bc1;
        let d = model.cfg.dim;
        let dd = d * d;

        let mut touched_entities: Vec<u32> = Vec::with_capacity(acc.ent.len());
        for (row, g) in acc.ent {
            let off = row as usize * d;
            adam_update(
                &mut model.ent[off..off + d],
                &g,
                &mut self.m_ent[off..off + d],
                &mut self.v_ent[off..off + d],
                lr_t,
            );
            touched_entities.push(row);
        }
        for (row, g) in acc.rel {
            let off = row as usize * d;
            adam_update(
                &mut model.rel[off..off + d],
                &g,
                &mut self.m_rel[off..off + d],
                &mut self.v_rel[off..off + d],
                lr_t,
            );
        }
        for (row, g) in acc.mat {
            let off = row as usize * dd;
            adam_update(
                &mut model.mats[off..off + dd],
                &g,
                &mut self.m_mat[off..off + dd],
                &mut self.v_mat[off..off + dd],
                lr_t,
            );
        }
        if self.cfg.normalize_entities {
            model.normalize_entities(touched_entities);
        }
    }
}

#[inline]
fn adam_update(w: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], lr_t: f32) {
    for i in 0..w.len() {
        let gi = g[i];
        m[i] = BETA1 * m[i] + (1.0 - BETA1) * gi;
        v[i] = BETA2 * v[i] + (1.0 - BETA2) * gi * gi;
        w[i] -= lr_t * m[i] / (v[i].sqrt() + EPS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PkgmConfig;
    use pkgm_store::StoreBuilder;

    /// A toy graph with structure: items 0..8 have brand (r0) and color (r1)
    /// values, two brands and two colors.
    fn toy_store() -> TripleStore {
        let mut b = StoreBuilder::new();
        for i in 0..8u32 {
            b.add_raw(i, 0, 8 + i % 2); // brand ∈ {8, 9}
            b.add_raw(i, 1, 10 + (i / 4) % 2); // color ∈ {10, 11}
        }
        b.build()
    }

    fn quick_cfg(seed: u64) -> TrainConfig {
        TrainConfig {
            lr: 0.05,
            margin: 2.0,
            batch_size: 16,
            epochs: 30,
            negatives: 2,
            seed,
            normalize_entities: true,
            parallel: false,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(16).with_seed(1),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(1));
        let report = trainer.train(&mut model, &store);
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.epochs.last().unwrap().mean_loss;
        assert!(
            last < first * 0.7,
            "loss did not drop: first {first}, last {last}"
        );
        assert!(trainer.steps() > 0);
    }

    #[test]
    fn trained_positives_score_below_negatives() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(16).with_seed(2),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(2));
        trainer.train(&mut model, &store);
        // Mean positive score must be clearly below mean corrupted score.
        let mut rng = SmallRng::seed_from_u64(0);
        let sampler = NegativeSampler::new(&store);
        let mut pos_sum = 0.0;
        let mut neg_sum = 0.0;
        for &t in store.triples() {
            pos_sum += model.score(t);
            let (n, _) = sampler.corrupt(t, &store, &mut rng);
            neg_sum += model.score(n);
        }
        // Mean margin achieved should be a decent fraction of γ = 2.0.
        let mean_gap = (neg_sum - pos_sum) / store.len() as f32;
        assert!(
            mean_gap > 1.0,
            "positives not separated: mean gap {mean_gap} (pos {pos_sum}, neg {neg_sum})"
        );
    }

    #[test]
    fn relation_module_learns_existence() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(16).with_seed(3),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(3));
        trainer.train(&mut model, &store);
        // Item 0 has relations 0 and 1. Value entity 8 has none (it is only
        // a tail). f_R should separate them.
        let has = model.score_relation(pkgm_store::EntityId(0), pkgm_store::RelationId(0));
        let hasnt = model.score_relation(pkgm_store::EntityId(8), pkgm_store::RelationId(0));
        assert!(
            has < hasnt,
            "relation module failed: f_R(has)={has} ≥ f_R(has-not)={hasnt}"
        );
    }

    #[test]
    fn parallel_and_serial_paths_both_converge() {
        let store = toy_store();
        for parallel in [false, true] {
            let mut model = PkgmModel::new(
                store.n_entities() as usize,
                store.n_relations() as usize,
                PkgmConfig::new(8).with_seed(4),
            );
            let cfg = TrainConfig {
                parallel,
                batch_size: 512,
                ..quick_cfg(4)
            };
            let mut trainer = Trainer::new(&model, cfg);
            let report = trainer.train(&mut model, &store);
            assert!(report.epochs.last().unwrap().violation_rate < 0.9);
        }
    }

    #[test]
    fn transe_ablation_trains_without_matrices() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::transe(16).with_seed(5),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(5));
        let report = trainer.train(&mut model, &store);
        assert!(model.mats.is_empty());
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.epochs.last().unwrap().mean_loss;
        assert!(last < first);
    }

    #[test]
    fn entity_norms_stay_bounded() {
        let store = toy_store();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(6),
        );
        let mut trainer = Trainer::new(&model, quick_cfg(6));
        trainer.train(&mut model, &store);
        for e in 0..store.n_entities() {
            let row = model.ent(pkgm_store::EntityId(e));
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm <= 1.0 + 1e-4, "entity {e} norm {norm} > 1");
        }
    }
}

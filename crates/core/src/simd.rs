//! Runtime-dispatched SIMD kernels for the crate's hot loops.
//!
//! Every hot primitive — the eight-lane dot ([`kernel_dot`]), the blocked
//! L1 distances ([`blocked_l1`] / [`blocked_l1_translation`]), their
//! early-exit comparators ([`l1_beats`] / [`translation_beats`]) and the
//! int8 absolute-difference sum behind `quant::prunes` ([`sad_i8`]) — has
//! exactly one **scalar twin** (in [`scalar`]) and, on x86-64, explicit
//! `std::arch` implementations selected once at runtime:
//!
//! * **AVX2** when `is_x86_feature_detected!("avx2")`;
//! * **SSE4.1** when only `is_x86_feature_detected!("sse4.1")`;
//! * the portable scalar twins otherwise, on non-x86 targets, or when the
//!   `PKGM_FORCE_SCALAR` environment variable is set (any value but `0`).
//!
//! The binary itself stays portable: it builds for the baseline x86-64
//! target (no `-C target-cpu=native`) and lights up the wide paths only on
//! hosts that have them.
//!
//! ## Why SIMD and scalar are bit-identical, not just close
//!
//! The scalar twins accumulate in eight independent lanes (`acc[j] += …`
//! per eight-element chunk) and combine them with the fixed tree
//! `((a₀+a₁)+(a₂+a₃)) + ((a₄+a₅)+(a₆+a₇))`, tail elements added serially
//! afterwards. One AVX2 `f32x8` register *is* those eight lanes: vertical
//! `vmulps`/`vaddps`/`vsubps`/`vandps` perform the identical IEEE-754
//! operation per lane in the identical order (no FMA contraction — the
//! intrinsics say `mul` then `add`, exactly like the scalar source), and
//! the horizontal reduction extracts the lanes and evaluates the same
//! fixed tree in scalar f32. The SSE4.1 path splits the eight lanes across
//! two `f32x4` registers — same per-lane order again. So for every input
//! the SIMD result is the *same deterministic function* as the scalar
//! twin, bit for bit; `tests/simd_parity.rs` enforces this across
//! non-lane-multiple dims, subnormals, and early-exit abandon points.
//!
//! The early-exit comparators keep their cadence: the partial lane sums
//! are combined and compared against the bound every
//! [`EXIT_STRIDE`] chunks, exactly where the scalar twin checks, so the
//! *decisions* (not just final values) are identical and ranks stay
//! bit-identical. The i8 scan is exact integer arithmetic
//! (`_mm256_sad_epu8` over sign-flipped bytes — `|a−b|` is translation
//! invariant, so XOR with `0x80` maps signed SAD onto the unsigned
//! instruction); any summation order gives the same `u32`.
//!
//! ## What stays scalar on purpose
//!
//! [`l1_dist`] — the serial, index-order L1 shared by the trainer, the
//! evaluation baselines and serving's tail completion — is pinned to its
//! scalar form: its contract is bit-identity with
//! `PkgmModel::score_relation`'s single-accumulator sum, and a serial f32
//! dependency chain cannot be vectorized without reassociating (changing
//! every trained model byte). It routes through this module so there is
//! one implementation, but both dispatch entries are the same scalar code.

use std::sync::OnceLock;

/// Early-exit cadence in eight-lane chunks: the comparators combine the
/// lanes and compare against the bound every `EXIT_STRIDE` chunks
/// (= 16 dimensions). Checking every chunk would spend more combine work
/// than it saves; the SIMD paths keep the same cadence so decisions match
/// the scalar twins exactly.
pub const EXIT_STRIDE: usize = 2;

/// The instruction set a [`SimdDispatch`] table was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar twins (also the `PKGM_FORCE_SCALAR` path).
    Scalar,
    /// 128-bit SSE4.1 paths (two `f32x4` lane registers).
    Sse41,
    /// 256-bit AVX2 paths (one `f32x8` lane register, `vpsadbw`).
    Avx2,
}

impl SimdLevel {
    /// Lower-case name used in logs and bench reports.
    pub fn name(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse41 => "sse4.1",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// A resolved table of kernel entry points, all computing the same
/// deterministic functions (see the module docs).
///
/// The crate's hot paths call the free functions ([`kernel_dot`],
/// [`blocked_l1`], …), which route through [`active`]; benches and the
/// parity suite grab [`SimdDispatch::scalar`] / [`SimdDispatch::detected`]
/// to compare implementations explicitly.
/// Entry type of [`SimdDispatch::translation_beats`]:
/// `(h, r, t, extra, bound) → beats`.
pub type TranslationBeatsFn = fn(&[f32], &[f32], &[f32], f32, f32) -> bool;

#[derive(Debug, Clone, Copy)]
pub struct SimdDispatch {
    /// Which instruction set this table's entries use.
    pub level: SimdLevel,
    /// Eight-lane fixed-order dot product.
    pub kernel_dot: fn(&[f32], &[f32]) -> f32,
    /// Eight-lane fixed-order `‖a − b‖₁`.
    pub blocked_l1: fn(&[f32], &[f32]) -> f32,
    /// Eight-lane fixed-order `‖h + r − t‖₁`.
    pub blocked_l1_translation: fn(&[f32], &[f32], &[f32]) -> f32,
    /// Decide `blocked_l1(a, b) + extra < bound` with the exact early exit.
    pub l1_beats: fn(&[f32], &[f32], f32, f32) -> bool,
    /// Decide `blocked_l1_translation(h, r, t) + extra < bound` likewise.
    pub translation_beats: TranslationBeatsFn,
    /// Exact `Σ |a_i − b_i|` over i8 slices (the quantized scan's block sum).
    pub sad_i8: fn(&[i8], &[i8]) -> u32,
}

static SCALAR: SimdDispatch = SimdDispatch {
    level: SimdLevel::Scalar,
    kernel_dot: scalar::kernel_dot,
    blocked_l1: scalar::blocked_l1,
    blocked_l1_translation: scalar::blocked_l1_translation,
    l1_beats: scalar::l1_beats,
    translation_beats: scalar::translation_beats,
    sad_i8: scalar::sad_i8,
};

impl SimdDispatch {
    /// The portable scalar table (every entry is a scalar twin).
    pub fn scalar() -> &'static SimdDispatch {
        &SCALAR
    }

    /// The best table the host supports, ignoring `PKGM_FORCE_SCALAR` —
    /// what [`active`] would pick without the override. The parity suite
    /// compares this against [`SimdDispatch::scalar`] even when the test
    /// run itself is forced scalar.
    pub fn detected() -> &'static SimdDispatch {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return &x86::AVX2;
            }
            if std::arch::is_x86_feature_detected!("sse4.1") {
                return &x86::SSE41;
            }
        }
        &SCALAR
    }
}

/// Whether `PKGM_FORCE_SCALAR` requests the scalar fallback: set and
/// neither empty nor `0`.
pub fn force_scalar_requested() -> bool {
    force_scalar_value(std::env::var_os("PKGM_FORCE_SCALAR").as_deref())
}

/// Testable core of [`force_scalar_requested`].
fn force_scalar_value(v: Option<&std::ffi::OsStr>) -> bool {
    match v {
        None => false,
        Some(s) => !s.is_empty() && s != "0",
    }
}

/// The dispatch table every crate-internal kernel call routes through,
/// probed once per process: [`SimdDispatch::detected`] unless
/// [`force_scalar_requested`].
pub fn active() -> &'static SimdDispatch {
    static ACTIVE: OnceLock<&'static SimdDispatch> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        if force_scalar_requested() {
            SimdDispatch::scalar()
        } else {
            SimdDispatch::detected()
        }
    })
}

/// The one-line dispatch report the daemon, the benches and `pkgm simd`
/// print (and CI's `simd-smoke` job asserts on):
/// `simd dispatch: avx2 (avx2=yes, sse4.1=yes, forced_scalar=no)`.
pub fn describe() -> String {
    fn yn(b: bool) -> &'static str {
        if b {
            "yes"
        } else {
            "no"
        }
    }
    #[cfg(target_arch = "x86_64")]
    let (avx2, sse41) = (
        std::arch::is_x86_feature_detected!("avx2"),
        std::arch::is_x86_feature_detected!("sse4.1"),
    );
    #[cfg(not(target_arch = "x86_64"))]
    let (avx2, sse41) = (false, false);
    format!(
        "simd dispatch: {} (avx2={}, sse4.1={}, forced_scalar={})",
        active().level.name(),
        yn(avx2),
        yn(sse41),
        yn(force_scalar_requested())
    )
}

// ---------------------------------------------------------------------------
// Dispatched entry points (what the rest of the crate calls)
// ---------------------------------------------------------------------------

/// Eight-lane multi-accumulator dot product with a **fixed** combine order,
/// dispatched to the active instruction set.
///
/// `pkgm_dot`'s single-accumulator reduction is a serial f32 dependency
/// chain (float addition is not associative); eight independent lane
/// accumulators break the chain and the fixed tree combine makes the
/// result a deterministic function of the inputs — the *same* function on
/// every dispatch level. Both training-kernel twins share this ordering,
/// which is what keeps them bit-equal. Slices must be equally long.
#[inline]
pub fn kernel_dot(a: &[f32], b: &[f32]) -> f32 {
    (active().kernel_dot)(a, b)
}

/// `‖a − b‖₁` with eight-lane fixed-order accumulation, dispatched — the
/// evaluation twin of [`kernel_dot`].
#[inline]
pub fn blocked_l1(a: &[f32], b: &[f32]) -> f32 {
    (active().blocked_l1)(a, b)
}

/// `‖h + r − t‖₁` in the same eight-lane blocked order, dispatched.
#[inline]
pub fn blocked_l1_translation(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    (active().blocked_l1_translation)(h, r, t)
}

/// Decide `blocked_l1(a, b) + extra < bound` with an exact early exit,
/// dispatched.
///
/// Aborts (returning `false`) as soon as the partially combined sum plus
/// `extra` reaches `bound` — sound because every L1 term is nonnegative
/// and IEEE-754 round-to-nearest addition is monotone, so the final value
/// can only be larger. When the loop runs to completion the returned
/// decision evaluates the exact blocked expression; every dispatch level
/// checks at the same [`EXIT_STRIDE`] cadence, so decisions are
/// bit-identical across levels.
#[inline]
pub fn l1_beats(a: &[f32], b: &[f32], extra: f32, bound: f32) -> bool {
    (active().l1_beats)(a, b, extra, bound)
}

/// Decide `blocked_l1_translation(h, r, t) + extra < bound` with the same
/// exact early exit as [`l1_beats`], dispatched.
#[inline]
pub fn translation_beats(h: &[f32], r: &[f32], t: &[f32], extra: f32, bound: f32) -> bool {
    (active().translation_beats)(h, r, t, extra, bound)
}

/// Exact `Σ_i |a_i − b_i|` over i8 slices, dispatched — the per-block
/// integer sum of the quantized pruning scan. Integer arithmetic is exact,
/// so every dispatch level returns the identical `u32`.
#[inline]
pub fn sad_i8(a: &[i8], b: &[i8]) -> u32 {
    (active().sad_i8)(a, b)
}

/// `Σ_i |a[i] − b[i]|` in index order — the crate's single serial L1
/// distance, **pinned to scalar** (see the module docs): its contract is
/// bit-identity with `PkgmModel::score_relation`'s serial sum, which no
/// vectorization can preserve. The trainer, the evaluation baselines and
/// serving's tail completion share this one implementation.
#[inline]
pub fn l1_dist(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0;
    for i in 0..a.len() {
        s += (a[i] - b[i]).abs();
    }
    s
}

// ---------------------------------------------------------------------------
// Scalar twins (the portable contract arithmetic)
// ---------------------------------------------------------------------------

/// The portable scalar twins — one per primitive, the contract arithmetic
/// every SIMD path must reproduce bit-for-bit. These are the bodies the
/// pre-SIMD kernels used verbatim (`kernels.rs` / `eval_kernels.rs` /
/// `quant.rs` now route here), kept `pub` so parity tests and benches can
/// name them explicitly.
pub mod scalar {
    use super::EXIT_STRIDE;

    /// The fixed tree-shaped lane combine shared by every eight-lane
    /// primitive (and reproduced by the SIMD horizontal reductions).
    #[inline]
    pub fn combine8(acc: &[f32; 8]) -> f32 {
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    }

    /// Scalar twin of [`super::kernel_dot`].
    #[inline]
    pub fn kernel_dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; 8];
        let mut ca = a.chunks_exact(8);
        let mut cb = b.chunks_exact(8);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            for j in 0..8 {
                acc[j] += xa[j] * xb[j];
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            tail += x * y;
        }
        combine8(&acc) + tail
    }

    /// Scalar twin of [`super::blocked_l1`].
    #[inline]
    pub fn blocked_l1(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; 8];
        let mut ca = a.chunks_exact(8);
        let mut cb = b.chunks_exact(8);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            for j in 0..8 {
                acc[j] += (xa[j] - xb[j]).abs();
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            tail += (x - y).abs();
        }
        combine8(&acc) + tail
    }

    /// Scalar twin of [`super::blocked_l1_translation`].
    #[inline]
    pub fn blocked_l1_translation(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let mut acc = [0.0f32; 8];
        let mut ch = h.chunks_exact(8);
        let mut cr = r.chunks_exact(8);
        let mut ct = t.chunks_exact(8);
        for ((xh, xr), xt) in (&mut ch).zip(&mut cr).zip(&mut ct) {
            for j in 0..8 {
                acc[j] += (xh[j] + xr[j] - xt[j]).abs();
            }
        }
        let mut tail = 0.0f32;
        for ((x, y), z) in ch
            .remainder()
            .iter()
            .zip(cr.remainder())
            .zip(ct.remainder())
        {
            tail += (x + y - z).abs();
        }
        combine8(&acc) + tail
    }

    /// Scalar twin of [`super::l1_beats`].
    #[inline]
    pub fn l1_beats(a: &[f32], b: &[f32], extra: f32, bound: f32) -> bool {
        let mut acc = [0.0f32; 8];
        let mut ca = a.chunks_exact(8);
        let mut cb = b.chunks_exact(8);
        let mut pending = 0usize;
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            for j in 0..8 {
                acc[j] += (xa[j] - xb[j]).abs();
            }
            pending += 1;
            if pending == EXIT_STRIDE {
                pending = 0;
                if combine8(&acc) + extra >= bound {
                    return false;
                }
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            tail += (x - y).abs();
        }
        (combine8(&acc) + tail) + extra < bound
    }

    /// Scalar twin of [`super::translation_beats`].
    #[inline]
    pub fn translation_beats(h: &[f32], r: &[f32], t: &[f32], extra: f32, bound: f32) -> bool {
        let mut acc = [0.0f32; 8];
        let mut ch = h.chunks_exact(8);
        let mut cr = r.chunks_exact(8);
        let mut ct = t.chunks_exact(8);
        let mut pending = 0usize;
        for ((xh, xr), xt) in (&mut ch).zip(&mut cr).zip(&mut ct) {
            for j in 0..8 {
                acc[j] += (xh[j] + xr[j] - xt[j]).abs();
            }
            pending += 1;
            if pending == EXIT_STRIDE {
                pending = 0;
                if combine8(&acc) + extra >= bound {
                    return false;
                }
            }
        }
        let mut tail = 0.0f32;
        for ((x, y), z) in ch
            .remainder()
            .iter()
            .zip(cr.remainder())
            .zip(ct.remainder())
        {
            tail += (x + y - z).abs();
        }
        (combine8(&acc) + tail) + extra < bound
    }

    /// Scalar twin of [`super::sad_i8`]: block sums fit u32 trivially
    /// (the scan blocks are ≤ 32 bytes of ≤ 254 each); `u8::abs_diff`
    /// keeps the lanes narrow for the autovectorizer.
    #[inline]
    pub fn sad_i8(a: &[i8], b: &[i8]) -> u32 {
        let mut d = 0u32;
        for (&x, &y) in a.iter().zip(b) {
            d += x.abs_diff(y) as u32;
        }
        d
    }
}

// ---------------------------------------------------------------------------
// x86-64 SIMD implementations
// ---------------------------------------------------------------------------

/// AVX2 and SSE4.1 implementations. Every `unsafe` target-feature function
/// performs the identical per-lane IEEE-754 operations in the identical
/// order as its scalar twin (see the module docs); the safe entry wrappers
/// are only ever installed in a dispatch table after
/// `is_x86_feature_detected!` confirmed the feature, which is what makes
/// the calls sound.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{scalar, SimdDispatch, SimdLevel, EXIT_STRIDE};
    use core::arch::x86_64::*;

    pub(super) static AVX2: SimdDispatch = SimdDispatch {
        level: SimdLevel::Avx2,
        kernel_dot: |a, b| unsafe { kernel_dot_avx2(a, b) },
        blocked_l1: |a, b| unsafe { blocked_l1_avx2(a, b) },
        blocked_l1_translation: |h, r, t| unsafe { blocked_l1_translation_avx2(h, r, t) },
        l1_beats: |a, b, extra, bound| unsafe { l1_beats_avx2(a, b, extra, bound) },
        translation_beats: |h, r, t, extra, bound| unsafe {
            translation_beats_avx2(h, r, t, extra, bound)
        },
        sad_i8: |a, b| unsafe { sad_i8_avx2(a, b) },
    };

    pub(super) static SSE41: SimdDispatch = SimdDispatch {
        level: SimdLevel::Sse41,
        kernel_dot: |a, b| unsafe { kernel_dot_sse41(a, b) },
        blocked_l1: |a, b| unsafe { blocked_l1_sse41(a, b) },
        blocked_l1_translation: |h, r, t| unsafe { blocked_l1_translation_sse41(h, r, t) },
        l1_beats: |a, b, extra, bound| unsafe { l1_beats_sse41(a, b, extra, bound) },
        translation_beats: |h, r, t, extra, bound| unsafe {
            translation_beats_sse41(h, r, t, extra, bound)
        },
        sad_i8: |a, b| unsafe { sad_i8_sse41(a, b) },
    };

    /// Clear the sign bit of every lane — bit-identical to `f32::abs`
    /// per lane (NaN payloads included).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn abs256(v: __m256) -> __m256 {
        _mm256_and_ps(v, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff)))
    }

    /// Extract the eight lane accumulators and evaluate the scalar fixed
    /// tree combine on them — the same expression as `scalar::combine8`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn combine256(v: __m256) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        scalar::combine8(&lanes)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn kernel_dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for i in 0..chunks {
            let va = _mm256_loadu_ps(pa.add(i * 8));
            let vb = _mm256_loadu_ps(pb.add(i * 8));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += a[i] * b[i];
        }
        combine256(acc) + tail
    }

    #[target_feature(enable = "avx2")]
    unsafe fn blocked_l1_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for i in 0..chunks {
            let va = _mm256_loadu_ps(pa.add(i * 8));
            let vb = _mm256_loadu_ps(pb.add(i * 8));
            acc = _mm256_add_ps(acc, abs256(_mm256_sub_ps(va, vb)));
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += (a[i] - b[i]).abs();
        }
        combine256(acc) + tail
    }

    #[target_feature(enable = "avx2")]
    unsafe fn blocked_l1_translation_avx2(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let n = h.len().min(r.len()).min(t.len());
        let chunks = n / 8;
        let (ph, pr, pt) = (h.as_ptr(), r.as_ptr(), t.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for i in 0..chunks {
            let vh = _mm256_loadu_ps(ph.add(i * 8));
            let vr = _mm256_loadu_ps(pr.add(i * 8));
            let vt = _mm256_loadu_ps(pt.add(i * 8));
            acc = _mm256_add_ps(acc, abs256(_mm256_sub_ps(_mm256_add_ps(vh, vr), vt)));
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += (h[i] + r[i] - t[i]).abs();
        }
        combine256(acc) + tail
    }

    #[target_feature(enable = "avx2")]
    unsafe fn l1_beats_avx2(a: &[f32], b: &[f32], extra: f32, bound: f32) -> bool {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut pending = 0usize;
        for i in 0..chunks {
            let va = _mm256_loadu_ps(pa.add(i * 8));
            let vb = _mm256_loadu_ps(pb.add(i * 8));
            acc = _mm256_add_ps(acc, abs256(_mm256_sub_ps(va, vb)));
            pending += 1;
            if pending == EXIT_STRIDE {
                pending = 0;
                if combine256(acc) + extra >= bound {
                    return false;
                }
            }
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += (a[i] - b[i]).abs();
        }
        (combine256(acc) + tail) + extra < bound
    }

    #[target_feature(enable = "avx2")]
    unsafe fn translation_beats_avx2(
        h: &[f32],
        r: &[f32],
        t: &[f32],
        extra: f32,
        bound: f32,
    ) -> bool {
        let n = h.len().min(r.len()).min(t.len());
        let chunks = n / 8;
        let (ph, pr, pt) = (h.as_ptr(), r.as_ptr(), t.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut pending = 0usize;
        for i in 0..chunks {
            let vh = _mm256_loadu_ps(ph.add(i * 8));
            let vr = _mm256_loadu_ps(pr.add(i * 8));
            let vt = _mm256_loadu_ps(pt.add(i * 8));
            acc = _mm256_add_ps(acc, abs256(_mm256_sub_ps(_mm256_add_ps(vh, vr), vt)));
            pending += 1;
            if pending == EXIT_STRIDE {
                pending = 0;
                if combine256(acc) + extra >= bound {
                    return false;
                }
            }
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += (h[i] + r[i] - t[i]).abs();
        }
        (combine256(acc) + tail) + extra < bound
    }

    /// `Σ |a − b|` over i8 via `vpsadbw`: XOR with `0x80` biases both
    /// operands into u8 (translation-invariant for `|a − b|`), then the
    /// unsigned SAD instruction sums 32 absolute differences into four
    /// u64 lanes per step. Integer arithmetic — exact in any order.
    #[target_feature(enable = "avx2")]
    unsafe fn sad_i8_avx2(a: &[i8], b: &[i8]) -> u32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let flip = _mm256_set1_epi8(-128);
        let mut total = 0u64;
        let mut i = 0usize;
        while i + 32 <= n {
            let va = _mm256_loadu_si256(pa.add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(pb.add(i) as *const __m256i);
            let sad = _mm256_sad_epu8(_mm256_xor_si256(va, flip), _mm256_xor_si256(vb, flip));
            let s = _mm_add_epi64(
                _mm256_castsi256_si128(sad),
                _mm256_extracti128_si256::<1>(sad),
            );
            let s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
            total += _mm_cvtsi128_si64(s) as u64;
            i += 32;
        }
        let mut rest = 0u32;
        while i < n {
            rest += a[i].abs_diff(b[i]) as u32;
            i += 1;
        }
        total as u32 + rest
    }

    /// Extract both four-lane accumulators (lanes 0–3 and 4–7) and
    /// evaluate the scalar fixed tree combine.
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn combine128(lo: __m128, hi: __m128) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), hi);
        scalar::combine8(&lanes)
    }

    /// Clear the sign bit of every lane (the 128-bit [`abs256`]).
    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn abs128(v: __m128) -> __m128 {
        _mm_and_ps(v, _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff)))
    }

    #[target_feature(enable = "sse4.1")]
    unsafe fn kernel_dot_sse41(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        for i in 0..chunks {
            let a0 = _mm_loadu_ps(pa.add(i * 8));
            let a1 = _mm_loadu_ps(pa.add(i * 8 + 4));
            let b0 = _mm_loadu_ps(pb.add(i * 8));
            let b1 = _mm_loadu_ps(pb.add(i * 8 + 4));
            lo = _mm_add_ps(lo, _mm_mul_ps(a0, b0));
            hi = _mm_add_ps(hi, _mm_mul_ps(a1, b1));
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += a[i] * b[i];
        }
        combine128(lo, hi) + tail
    }

    #[target_feature(enable = "sse4.1")]
    unsafe fn blocked_l1_sse41(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        for i in 0..chunks {
            let a0 = _mm_loadu_ps(pa.add(i * 8));
            let a1 = _mm_loadu_ps(pa.add(i * 8 + 4));
            let b0 = _mm_loadu_ps(pb.add(i * 8));
            let b1 = _mm_loadu_ps(pb.add(i * 8 + 4));
            lo = _mm_add_ps(lo, abs128(_mm_sub_ps(a0, b0)));
            hi = _mm_add_ps(hi, abs128(_mm_sub_ps(a1, b1)));
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += (a[i] - b[i]).abs();
        }
        combine128(lo, hi) + tail
    }

    #[target_feature(enable = "sse4.1")]
    unsafe fn blocked_l1_translation_sse41(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let n = h.len().min(r.len()).min(t.len());
        let chunks = n / 8;
        let (ph, pr, pt) = (h.as_ptr(), r.as_ptr(), t.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        for i in 0..chunks {
            let h0 = _mm_loadu_ps(ph.add(i * 8));
            let h1 = _mm_loadu_ps(ph.add(i * 8 + 4));
            let r0 = _mm_loadu_ps(pr.add(i * 8));
            let r1 = _mm_loadu_ps(pr.add(i * 8 + 4));
            let t0 = _mm_loadu_ps(pt.add(i * 8));
            let t1 = _mm_loadu_ps(pt.add(i * 8 + 4));
            lo = _mm_add_ps(lo, abs128(_mm_sub_ps(_mm_add_ps(h0, r0), t0)));
            hi = _mm_add_ps(hi, abs128(_mm_sub_ps(_mm_add_ps(h1, r1), t1)));
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += (h[i] + r[i] - t[i]).abs();
        }
        combine128(lo, hi) + tail
    }

    #[target_feature(enable = "sse4.1")]
    unsafe fn l1_beats_sse41(a: &[f32], b: &[f32], extra: f32, bound: f32) -> bool {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut pending = 0usize;
        for i in 0..chunks {
            let a0 = _mm_loadu_ps(pa.add(i * 8));
            let a1 = _mm_loadu_ps(pa.add(i * 8 + 4));
            let b0 = _mm_loadu_ps(pb.add(i * 8));
            let b1 = _mm_loadu_ps(pb.add(i * 8 + 4));
            lo = _mm_add_ps(lo, abs128(_mm_sub_ps(a0, b0)));
            hi = _mm_add_ps(hi, abs128(_mm_sub_ps(a1, b1)));
            pending += 1;
            if pending == EXIT_STRIDE {
                pending = 0;
                if combine128(lo, hi) + extra >= bound {
                    return false;
                }
            }
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += (a[i] - b[i]).abs();
        }
        (combine128(lo, hi) + tail) + extra < bound
    }

    #[target_feature(enable = "sse4.1")]
    unsafe fn translation_beats_sse41(
        h: &[f32],
        r: &[f32],
        t: &[f32],
        extra: f32,
        bound: f32,
    ) -> bool {
        let n = h.len().min(r.len()).min(t.len());
        let chunks = n / 8;
        let (ph, pr, pt) = (h.as_ptr(), r.as_ptr(), t.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut pending = 0usize;
        for i in 0..chunks {
            let h0 = _mm_loadu_ps(ph.add(i * 8));
            let h1 = _mm_loadu_ps(ph.add(i * 8 + 4));
            let r0 = _mm_loadu_ps(pr.add(i * 8));
            let r1 = _mm_loadu_ps(pr.add(i * 8 + 4));
            let t0 = _mm_loadu_ps(pt.add(i * 8));
            let t1 = _mm_loadu_ps(pt.add(i * 8 + 4));
            lo = _mm_add_ps(lo, abs128(_mm_sub_ps(_mm_add_ps(h0, r0), t0)));
            hi = _mm_add_ps(hi, abs128(_mm_sub_ps(_mm_add_ps(h1, r1), t1)));
            pending += 1;
            if pending == EXIT_STRIDE {
                pending = 0;
                if combine128(lo, hi) + extra >= bound {
                    return false;
                }
            }
        }
        let mut tail = 0.0f32;
        for i in chunks * 8..n {
            tail += (h[i] + r[i] - t[i]).abs();
        }
        (combine128(lo, hi) + tail) + extra < bound
    }

    /// The 128-bit SAD path (`psadbw` is SSE2, gated at the table's
    /// SSE4.1 level for one coherent tier).
    #[target_feature(enable = "sse4.1")]
    unsafe fn sad_i8_sse41(a: &[i8], b: &[i8]) -> u32 {
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let flip = _mm_set1_epi8(-128);
        let mut total = 0u64;
        let mut i = 0usize;
        while i + 16 <= n {
            let va = _mm_loadu_si128(pa.add(i) as *const __m128i);
            let vb = _mm_loadu_si128(pb.add(i) as *const __m128i);
            let sad = _mm_sad_epu8(_mm_xor_si128(va, flip), _mm_xor_si128(vb, flip));
            let s = _mm_add_epi64(sad, _mm_unpackhi_epi64(sad, sad));
            total += _mm_cvtsi128_si64(s) as u64;
            i += 16;
        }
        let mut rest = 0u32;
        while i < n {
            rest += a[i].abs_diff(b[i]) as u32;
            i += 1;
        }
        total as u32 + rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_parsing() {
        use std::ffi::OsStr;
        assert!(!force_scalar_value(None));
        assert!(!force_scalar_value(Some(OsStr::new(""))));
        assert!(!force_scalar_value(Some(OsStr::new("0"))));
        assert!(force_scalar_value(Some(OsStr::new("1"))));
        assert!(force_scalar_value(Some(OsStr::new("true"))));
    }

    #[test]
    fn describe_names_the_active_level() {
        let line = describe();
        assert!(
            line.contains(&format!("simd dispatch: {}", active().level.name())),
            "{line}"
        );
        assert!(line.contains("forced_scalar="), "{line}");
    }

    #[test]
    fn scalar_table_is_scalar() {
        assert_eq!(SimdDispatch::scalar().level, SimdLevel::Scalar);
        // The detected table is whatever the host offers; at minimum it
        // computes the same functions (spot check one input).
        let a = [1.0f32, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0, 9.5];
        let b = [0.5f32, 2.0, -3.0, 4.0, -5.0, 6.0, -7.0, 8.0, -9.5];
        let s = SimdDispatch::scalar();
        let d = SimdDispatch::detected();
        assert_eq!(
            (s.blocked_l1)(&a, &b).to_bits(),
            (d.blocked_l1)(&a, &b).to_bits()
        );
        assert_eq!(
            (s.kernel_dot)(&a, &b).to_bits(),
            (d.kernel_dot)(&a, &b).to_bits()
        );
    }

    #[test]
    fn l1_dist_is_serial_index_order() {
        // The scalar-pinned serial sum must differ from the blocked order
        // only by its association — same terms, and for short inputs with
        // exact arithmetic, the same value.
        let a = [1.0f32, 2.0, 3.0];
        let b = [0.0f32, 0.0, 0.0];
        assert_eq!(l1_dist(&a, &b), 6.0);
    }
}

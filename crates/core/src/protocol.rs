//! Wire protocol for the serving daemon: length-prefixed binary frames.
//!
//! Every message — request or response — is one **frame**. The current
//! (v2) frame carries a CRC32 trailer flagged in the length prefix:
//!
//! ```text
//! [ len|FRAME_FLAG_CRC: u32 LE ][ crc32(body): u32 LE ][ body: len bytes ]
//! body = [ tag: u8 ][ payload: len − 1 bytes ]
//! ```
//!
//! Bit 31 of the length prefix is the version flag ([`FRAME_FLAG_CRC`]):
//! set, the four bytes after the prefix are an IEEE CRC32 of the body and
//! the decoder rejects any mismatch with a typed
//! [`ProtocolError::CrcMismatch`] — a flipped bit anywhere in the checksum
//! or body is *detected*, never served as silently-wrong floats. Clear,
//! the frame is a tagless v1 frame (`[len][body]`, no checksum) and still
//! decodes — old clients keep working against a new daemon and vice versa.
//! Frame bodies are capped at [`MAX_FRAME_LEN`] (far below bit 31, so the
//! flag can never collide with a legal length); a larger prefix is
//! rejected *before* any allocation, so a hostile client cannot make the
//! server reserve gigabytes with four bytes. Decoding is total: any byte
//! sequence either parses or returns a typed [`ProtocolError`] — never a
//! panic, never an unbounded read.
//!
//! The payload formats are deliberately primitive (little-endian integers
//! and raw f32 rows) so a client in any language is a page of code:
//!
//! | request            | payload                                    |
//! |--------------------|--------------------------------------------|
//! | `Lookup`           | `n: u32`, then `n × u32` item ids          |
//! | `LookupDeadline`   | `budget_micros: u64`, `n: u32`, `n × u32`  |
//! | `Ping`             | empty                                      |
//! | `Stats`            | empty                                      |
//! | `Health`           | empty — liveness probe, JSON response      |
//! | `Ready`            | empty — readiness probe, JSON response     |
//! | `ShardMap`         | empty — shard topology query, JSON response|
//! | `Reload`           | UTF-8 snapshot path (daemon-local, ≤ 4 KiB)|
//! | `Shutdown`         | empty                                      |
//!
//! | response status    | payload                                    |
//! |--------------------|--------------------------------------------|
//! | `Ok`               | empty — plain acknowledgement              |
//! | `OkRows`           | `n: u32`, `row_len: u32`, `n×row_len` f32  |
//! | `OkJson`           | UTF-8 JSON                                 |
//! | `Overloaded`       | empty — request was shed, retry later      |
//! | `BadRequest`       | UTF-8 message                              |
//! | `ServerError`      | UTF-8 message                              |
//! | `DeadlineExceeded` | `stage: u8` — where the deadline expired   |
//! | `WrongShard`       | `id u32, shard u32, of u32, start u64, n u64` |
//!
//! Rows and JSON successes carry **distinct status bytes** — the payload
//! is never sniffed to tell them apart, so a row count whose low byte
//! happens to equal `b'{'` decodes exactly like any other.
//!
//! `LookupDeadline` is the deadline-propagation path: the client states
//! how much of its latency budget remains (`budget_micros`, measured from
//! the moment the daemon decodes the frame) and every downstream stage —
//! admission, the batch queue, the rayon batch call — sheds the work with
//! a typed [`Response::DeadlineExceeded`] the moment the budget cannot be
//! met, instead of burning compute on a response the caller has already
//! abandoned. `Overloaded` and `DeadlineExceeded` both guarantee the
//! lookup was **not** served, but only `Overloaded` invites a retry.

use crate::artifact::crc32;
use std::io::{self, Read, Write};

/// Bit set in the length prefix of v2 frames: the frame carries a CRC32
/// trailer between the prefix and the body. [`MAX_FRAME_LEN`] keeps legal
/// lengths far below this bit, so flag and length can never collide.
pub const FRAME_FLAG_CRC: u32 = 1 << 31;

/// Hard cap on a frame body. Large enough for a 4096-item lookup response
/// at d = 512 (4096 × 1024 × 4 B = 16 MiB), small enough that a hostile
/// length prefix cannot balloon server memory.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Cap on items in one lookup request; keeps a single client from queuing
/// an unbounded batch ahead of everyone else. This is the *protocol*
/// ceiling — a server whose rows are wide enough that this many rows would
/// overflow [`MAX_FRAME_LEN`] must also enforce
/// [`max_lookup_items_for_row_len`] and reject the excess as a bad request.
pub const MAX_LOOKUP_ITEMS: u32 = 65_536;

/// Cap on a reload request's snapshot path. Bounds every error/summary
/// message that echoes the path, so responses can never outgrow
/// [`MAX_FRAME_LEN`].
pub const MAX_RELOAD_PATH_LEN: usize = 4_096;

/// Bytes of a rows response body before the f32 payload: status tag,
/// `n: u32`, `row_len: u32`.
pub const ROWS_HEADER_LEN: usize = 9;

/// The largest lookup answerable in one frame when each row carries
/// `row_len` f32 values: `n` such that
/// `ROWS_HEADER_LEN + n × row_len × 4 ≤ MAX_FRAME_LEN`, further clamped to
/// [`MAX_LOOKUP_ITEMS`]. Servers must reject larger lookups up front
/// instead of building an unsendable response.
pub fn max_lookup_items_for_row_len(row_len: u32) -> u32 {
    let per_row = row_len as u64 * 4;
    if per_row == 0 {
        return MAX_LOOKUP_ITEMS;
    }
    let budget = MAX_FRAME_LEN as u64 - ROWS_HEADER_LEN as u64;
    (budget / per_row).min(MAX_LOOKUP_ITEMS as u64) as u32
}

/// Request opcodes (the first body byte of a request frame).
pub mod op {
    /// Batched condensed-service lookup.
    pub const LOOKUP: u8 = 0x01;
    /// Liveness probe; empty `Ok` response.
    pub const PING: u8 = 0x02;
    /// Daemon statistics as JSON.
    pub const STATS: u8 = 0x03;
    /// Hot-swap the serving snapshot from a daemon-local path.
    pub const RELOAD: u8 = 0x04;
    /// Graceful daemon shutdown.
    pub const SHUTDOWN: u8 = 0x05;
    /// Batched lookup with a deadline budget (`budget_micros: u64` before
    /// the id count).
    pub const LOOKUP_DL: u8 = 0x06;
    /// Liveness probe; JSON response (always answers while the process
    /// lives).
    pub const HEALTH: u8 = 0x07;
    /// Readiness probe; JSON response (`ready` is true only when the
    /// daemon can actually serve lookups right now).
    pub const READY: u8 = 0x08;
    /// Shard-topology query; JSON response describing the entity-range
    /// shard the current snapshot covers (the router's map source).
    pub const SHARD_MAP: u8 = 0x09;
}

/// Response statuses (the first body byte of a response frame).
pub mod status {
    /// Request served; empty payload (ping/shutdown acknowledgement).
    pub const OK: u8 = 0x00;
    /// Admission control shed the request — the queue was full. The
    /// request was **not** executed; retrying later is safe.
    pub const OVERLOADED: u8 = 0x01;
    /// The request frame was structurally invalid; payload is a message.
    pub const BAD_REQUEST: u8 = 0x02;
    /// The daemon failed to execute a valid request; payload is a message.
    pub const SERVER_ERROR: u8 = 0x03;
    /// Request served; payload is a rows header plus raw f32 rows.
    pub const OK_ROWS: u8 = 0x04;
    /// Request served; payload is UTF-8 JSON (stats, reload summaries).
    pub const OK_JSON: u8 = 0x05;
    /// The request's deadline budget expired before it could be served;
    /// payload is one stage byte ([`super::DeadlineStage`]). The request
    /// was **not** executed, but unlike `OVERLOADED` a retry is pointless —
    /// the caller's budget is already spent.
    pub const DEADLINE_EXCEEDED: u8 = 0x06;
    /// A lookup item falls outside the entity-range shard this daemon
    /// serves; payload is `id u32, shard_id u32, n_shards u32,
    /// row_start u64, n_rows u64` so the client can re-route. The request
    /// was **not** executed; retrying the same daemon cannot help.
    pub const WRONG_SHARD: u8 = 0x07;
}

/// Where in the serving pipeline a deadline budget ran out. Carried as the
/// single payload byte of a [`status::DEADLINE_EXCEEDED`] response and
/// counted per-stage in `BatchStats`, so an operator can tell "queue too
/// deep" (`Queued`) from "budget too small for one batch" (`Executing`)
/// from "client sent dead-on-arrival work" (`AtEnqueue`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineStage {
    /// Already expired when the daemon tried to enqueue it.
    AtEnqueue = 0,
    /// Expired while waiting in the batch queue.
    Queued = 1,
    /// Expired during (or by the end of) batch execution.
    Executing = 2,
}

impl DeadlineStage {
    /// Decode a stage byte; `None` for bytes no stage uses.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(DeadlineStage::AtEnqueue),
            1 => Some(DeadlineStage::Queued),
            2 => Some(DeadlineStage::Executing),
            _ => None,
        }
    }

    /// Human-readable stage name for logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DeadlineStage::AtEnqueue => "at-enqueue",
            DeadlineStage::Queued => "queued",
            DeadlineStage::Executing => "executing",
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up condensed service vectors for these item ids.
    Lookup(Vec<u32>),
    /// Look up with a latency budget: the daemon sheds the work with
    /// [`Response::DeadlineExceeded`] once `budget_micros` have elapsed
    /// from the moment it decoded this frame.
    LookupDeadline {
        /// Remaining client budget in microseconds, measured at decode.
        budget_micros: u64,
        /// Item ids to look up, same caps as `Lookup`.
        items: Vec<u32>,
    },
    /// Liveness probe.
    Ping,
    /// Fetch daemon statistics.
    Stats,
    /// Liveness probe with a JSON body (uptime, restart counters).
    Health,
    /// Readiness probe: can the daemon serve a lookup *right now*?
    Ready,
    /// Shard-topology query: which entity range does the current snapshot
    /// cover? Answered with JSON so a router can build its shard map.
    ShardMap,
    /// Hot-swap the serving snapshot from this daemon-local path.
    Reload(String),
    /// Ask the daemon to shut down gracefully.
    Shutdown,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Lookup result: one `row_len`-float vector per requested item, in
    /// request order.
    Rows { row_len: u32, rows: Vec<Vec<f32>> },
    /// Empty `Ok` (ping acknowledgement).
    Empty,
    /// `Ok` with a JSON payload (stats, reload summaries).
    Json(String),
    /// The request was shed by admission control.
    Overloaded,
    /// The request's deadline budget expired at this stage; it was not
    /// executed, and retrying cannot help.
    DeadlineExceeded(DeadlineStage),
    /// The request was malformed.
    BadRequest(String),
    /// The daemon failed internally.
    ServerError(String),
    /// A requested item id is outside the entity-range shard this daemon
    /// serves. Carries the offending id plus the daemon's shard identity
    /// and covered row range so the client can re-route the lookup.
    WrongShard {
        /// First requested id outside the shard range.
        id: u32,
        /// The daemon's shard index.
        shard_id: u32,
        /// Total shards the table was split into.
        n_shards: u32,
        /// Global id of the shard's first row.
        row_start: u64,
        /// Rows in the shard (covered ids are `[row_start, row_start + n_rows)`).
        n_rows: u64,
    },
}

/// Typed decode/transport errors. Every malformed input maps to one of
/// these; the daemon turns them into `BadRequest` responses and the client
/// into hard errors — neither side panics.
#[derive(Debug)]
pub enum ProtocolError {
    /// The body declared by the length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge { len: u32, max: u32 },
    /// A zero-length body (a frame must carry at least its tag byte).
    EmptyFrame,
    /// The stream ended inside a frame (header or body).
    Truncated { expected: usize, got: usize },
    /// An opcode byte no request uses.
    UnknownOpcode(u8),
    /// An unknown response status byte.
    UnknownStatus(u8),
    /// Structurally invalid payload for the tagged message.
    Malformed(&'static str),
    /// A lookup asked for more than [`MAX_LOOKUP_ITEMS`] items.
    TooManyItems { n: u32, max: u32 },
    /// A v2 frame's CRC32 trailer disagreed with its body — the frame was
    /// corrupted in flight.
    CrcMismatch { expected: u32, got: u32 },
    /// Underlying socket error.
    Io(io::Error),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::EmptyFrame => write!(f, "empty frame body (missing tag byte)"),
            ProtocolError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown request opcode {op:#04x}"),
            ProtocolError::UnknownStatus(s) => write!(f, "unknown response status {s:#04x}"),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtocolError::TooManyItems { n, max } => {
                write!(f, "lookup of {n} items exceeds the {max}-item cap")
            }
            ProtocolError::CrcMismatch { expected, got } => {
                write!(
                    f,
                    "frame CRC mismatch: trailer {expected:#010x}, body hashes to {got:#010x}"
                )
            }
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Split a little-endian `u32` off the front of `buf`.
fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    let (head, rest) = buf.split_first_chunk::<4>()?;
    *buf = rest;
    Some(u32::from_le_bytes(*head))
}

/// Split a little-endian `u64` off the front of `buf`.
fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    let (head, rest) = buf.split_first_chunk::<8>()?;
    *buf = rest;
    Some(u64::from_le_bytes(*head))
}

/// Decode the shared tail of `Lookup` / `LookupDeadline`: `n: u32` then
/// `n × u32` ids, capped at [`MAX_LOOKUP_ITEMS`].
fn decode_lookup_items(payload: &mut &[u8]) -> Result<Vec<u32>, ProtocolError> {
    let n = take_u32(payload).ok_or(ProtocolError::Malformed(
        "lookup payload shorter than count",
    ))?;
    if n > MAX_LOOKUP_ITEMS {
        return Err(ProtocolError::TooManyItems {
            n,
            max: MAX_LOOKUP_ITEMS,
        });
    }
    if payload.len() != n as usize * 4 {
        return Err(ProtocolError::Malformed(
            "lookup id bytes disagree with the declared count",
        ));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact yields 4 bytes")))
        .collect())
}

/// Decode a request body (tag + payload, no length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request, ProtocolError> {
    let (&opcode, mut payload) = body.split_first().ok_or(ProtocolError::EmptyFrame)?;
    match opcode {
        op::LOOKUP => Ok(Request::Lookup(decode_lookup_items(&mut payload)?)),
        op::LOOKUP_DL => {
            let budget_micros = take_u64(&mut payload).ok_or(ProtocolError::Malformed(
                "deadline lookup payload shorter than budget",
            ))?;
            let items = decode_lookup_items(&mut payload)?;
            Ok(Request::LookupDeadline {
                budget_micros,
                items,
            })
        }
        op::PING | op::STATS | op::SHUTDOWN | op::HEALTH | op::READY | op::SHARD_MAP => {
            if !payload.is_empty() {
                return Err(ProtocolError::Malformed(
                    "ping/stats/shutdown/health/ready/shard-map carry no payload",
                ));
            }
            Ok(match opcode {
                op::PING => Request::Ping,
                op::STATS => Request::Stats,
                op::HEALTH => Request::Health,
                op::READY => Request::Ready,
                op::SHARD_MAP => Request::ShardMap,
                _ => Request::Shutdown,
            })
        }
        op::RELOAD => {
            if payload.len() > MAX_RELOAD_PATH_LEN {
                return Err(ProtocolError::Malformed("reload path too long"));
            }
            let path = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::Malformed("reload path is not UTF-8"))?;
            if path.is_empty() {
                return Err(ProtocolError::Malformed("reload path is empty"));
            }
            Ok(Request::Reload(path.to_string()))
        }
        other => Err(ProtocolError::UnknownOpcode(other)),
    }
}

/// Encode a request into a full frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    match req {
        Request::Lookup(items) => {
            body.push(op::LOOKUP);
            body.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for id in items {
                body.extend_from_slice(&id.to_le_bytes());
            }
        }
        Request::LookupDeadline {
            budget_micros,
            items,
        } => {
            body.push(op::LOOKUP_DL);
            body.extend_from_slice(&budget_micros.to_le_bytes());
            body.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for id in items {
                body.extend_from_slice(&id.to_le_bytes());
            }
        }
        Request::Ping => body.push(op::PING),
        Request::Stats => body.push(op::STATS),
        Request::Health => body.push(op::HEALTH),
        Request::Ready => body.push(op::READY),
        Request::ShardMap => body.push(op::SHARD_MAP),
        Request::Reload(path) => {
            body.push(op::RELOAD);
            body.extend_from_slice(path.as_bytes());
        }
        Request::Shutdown => body.push(op::SHUTDOWN),
    }
    frame(body)
}

/// Decode a response body (tag + payload, no length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, ProtocolError> {
    let (&tag, mut payload) = body.split_first().ok_or(ProtocolError::EmptyFrame)?;
    match tag {
        status::OK => {
            if !payload.is_empty() {
                return Err(ProtocolError::Malformed("plain ok carries no payload"));
            }
            Ok(Response::Empty)
        }
        status::OK_JSON => {
            let json = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::Malformed("JSON payload is not UTF-8"))?;
            Ok(Response::Json(json.to_string()))
        }
        status::OK_ROWS => {
            let n = take_u32(&mut payload)
                .ok_or(ProtocolError::Malformed("rows payload shorter than header"))?;
            let row_len = take_u32(&mut payload)
                .ok_or(ProtocolError::Malformed("rows payload shorter than header"))?;
            let expect = (n as usize)
                .checked_mul(row_len as usize)
                .and_then(|f| f.checked_mul(4))
                .ok_or(ProtocolError::Malformed("rows header overflows"))?;
            if payload.len() != expect {
                return Err(ProtocolError::Malformed(
                    "row bytes disagree with the declared shape",
                ));
            }
            // Zero-width rows carry no bytes to validate `n` against; they
            // are never produced (row_len = 2·dim ≥ 2) and a huge `n`
            // would otherwise allocate unboundedly — and `chunks_exact`
            // panics on a zero chunk size.
            if row_len == 0 && n > 0 {
                return Err(ProtocolError::Malformed("zero-width rows"));
            }
            if row_len == 0 {
                return Ok(Response::Rows {
                    row_len,
                    rows: Vec::new(),
                });
            }
            let mut rows = Vec::with_capacity(n as usize);
            for row in payload.chunks_exact(row_len as usize * 4) {
                rows.push(
                    row.chunks_exact(4)
                        .map(|c| {
                            f32::from_le_bytes(c.try_into().expect("chunks_exact yields 4 bytes"))
                        })
                        .collect(),
                );
            }
            Ok(Response::Rows { row_len, rows })
        }
        status::OVERLOADED => {
            if !payload.is_empty() {
                return Err(ProtocolError::Malformed("overloaded carries no payload"));
            }
            Ok(Response::Overloaded)
        }
        status::DEADLINE_EXCEEDED => {
            let [stage] = payload else {
                return Err(ProtocolError::Malformed(
                    "deadline-exceeded carries exactly one stage byte",
                ));
            };
            let stage = DeadlineStage::from_byte(*stage)
                .ok_or(ProtocolError::Malformed("unknown deadline stage byte"))?;
            Ok(Response::DeadlineExceeded(stage))
        }
        status::WRONG_SHARD => {
            let id = take_u32(&mut payload);
            let shard_id = take_u32(&mut payload);
            let n_shards = take_u32(&mut payload);
            let row_start = take_u64(&mut payload);
            let n_rows = take_u64(&mut payload);
            match (id, shard_id, n_shards, row_start, n_rows) {
                (Some(id), Some(shard_id), Some(n_shards), Some(row_start), Some(n_rows))
                    if payload.is_empty() =>
                {
                    if n_shards == 0 || shard_id >= n_shards {
                        return Err(ProtocolError::Malformed(
                            "wrong-shard response declares an invalid shard",
                        ));
                    }
                    Ok(Response::WrongShard {
                        id,
                        shard_id,
                        n_shards,
                        row_start,
                        n_rows,
                    })
                }
                _ => Err(ProtocolError::Malformed(
                    "wrong-shard payload must be exactly id + shard + range",
                )),
            }
        }
        status::BAD_REQUEST | status::SERVER_ERROR => {
            let msg = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8"))?
                .to_string();
            Ok(if tag == status::BAD_REQUEST {
                Response::BadRequest(msg)
            } else {
                Response::ServerError(msg)
            })
        }
        other => Err(ProtocolError::UnknownStatus(other)),
    }
}

/// Encode a response into a full frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    match resp {
        Response::Rows { row_len, rows } => {
            body.push(status::OK_ROWS);
            body.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            body.extend_from_slice(&row_len.to_le_bytes());
            for row in rows {
                debug_assert_eq!(row.len(), *row_len as usize);
                for x in row {
                    body.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        Response::Empty => body.push(status::OK),
        Response::Json(json) => {
            body.push(status::OK_JSON);
            body.extend_from_slice(json.as_bytes());
        }
        Response::Overloaded => body.push(status::OVERLOADED),
        Response::DeadlineExceeded(stage) => {
            body.push(status::DEADLINE_EXCEEDED);
            body.push(*stage as u8);
        }
        Response::BadRequest(msg) => {
            body.push(status::BAD_REQUEST);
            body.extend_from_slice(msg.as_bytes());
        }
        Response::ServerError(msg) => {
            body.push(status::SERVER_ERROR);
            body.extend_from_slice(msg.as_bytes());
        }
        Response::WrongShard {
            id,
            shard_id,
            n_shards,
            row_start,
            n_rows,
        } => {
            body.push(status::WRONG_SHARD);
            body.extend_from_slice(&id.to_le_bytes());
            body.extend_from_slice(&shard_id.to_le_bytes());
            body.extend_from_slice(&n_shards.to_le_bytes());
            body.extend_from_slice(&row_start.to_le_bytes());
            body.extend_from_slice(&n_rows.to_le_bytes());
        }
    }
    frame(body)
}

/// Encode an `Ok` rows response directly from borrowed rows — the daemon's
/// hot path, which must not clone every served vector just to frame it.
/// Decodes identically to [`Response::Rows`].
pub fn encode_rows_response<'a>(
    row_len: u32,
    rows: impl ExactSizeIterator<Item = &'a [f32]>,
) -> Vec<u8> {
    let mut body = Vec::with_capacity(ROWS_HEADER_LEN + rows.len() * row_len as usize * 4);
    body.push(status::OK_ROWS);
    body.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    body.extend_from_slice(&row_len.to_le_bytes());
    for row in rows {
        debug_assert_eq!(row.len(), row_len as usize);
        for x in row {
            body.extend_from_slice(&x.to_le_bytes());
        }
    }
    frame(body)
}

/// Prefix `body` with its CRC-flagged length and CRC32 trailer (a v2
/// frame). Decoders that predate the flag reject it with `FrameTooLarge`;
/// [`downgrade_frame`] exists for talking to them.
///
/// # Panics
/// If the body exceeds [`MAX_FRAME_LEN`] — a backstop, enforced in every
/// build: callers bound their payloads up front ([`MAX_LOOKUP_ITEMS`],
/// [`MAX_RELOAD_PATH_LEN`], [`max_lookup_items_for_row_len`]) so a frame
/// the peer would reject is a caller bug, not a runtime condition.
fn frame(body: Vec<u8>) -> Vec<u8> {
    assert!(
        body.len() <= MAX_FRAME_LEN as usize,
        "frame body of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
        body.len()
    );
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32 | FRAME_FLAG_CRC).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend(body);
    out
}

/// Re-encode a v2 frame as a v1 (tagless, no-CRC) frame, for exercising
/// the backward-compatible decode path and for clients of pre-CRC daemons.
pub fn downgrade_frame(framed: &[u8]) -> Vec<u8> {
    let Some((head, rest)) = framed.split_first_chunk::<4>() else {
        return framed.to_vec();
    };
    let len = u32::from_le_bytes(*head);
    if len & FRAME_FLAG_CRC == 0 || rest.len() < 4 {
        return framed.to_vec();
    }
    let mut out = Vec::with_capacity(framed.len() - 4);
    out.extend_from_slice(&(len & !FRAME_FLAG_CRC).to_le_bytes());
    out.extend_from_slice(&rest[4..]);
    out
}

/// Read one frame body from `r`, accepting both v2 (CRC-flagged) and
/// legacy v1 (tagless) frames.
///
/// `Ok(None)` means the peer closed the connection cleanly *between*
/// frames (EOF at the first header byte); EOF anywhere else is a
/// [`ProtocolError::Truncated`]. The length prefix is validated against
/// [`MAX_FRAME_LEN`] before the body buffer is allocated, and a flagged
/// frame whose CRC32 trailer disagrees with its body is rejected as
/// [`ProtocolError::CrcMismatch`] — corruption is detected, never decoded.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(ProtocolError::Truncated { expected: 4, got }),
    }
    let prefix = u32::from_le_bytes(header);
    let checked = prefix & FRAME_FLAG_CRC != 0;
    let len = prefix & !FRAME_FLAG_CRC;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    if len == 0 {
        return Err(ProtocolError::EmptyFrame);
    }
    let expected_crc = if checked {
        let mut trailer = [0u8; 4];
        let got = read_exact_or_eof(r, &mut trailer)?;
        if got != 4 {
            return Err(ProtocolError::Truncated {
                expected: len as usize + 4,
                got,
            });
        }
        Some(u32::from_le_bytes(trailer))
    } else {
        None
    };
    let mut body = vec![0u8; len as usize];
    let got = read_exact_or_eof(r, &mut body)?;
    if got != body.len() {
        return Err(ProtocolError::Truncated {
            expected: len as usize,
            got,
        });
    }
    if let Some(expected) = expected_crc {
        let actual = crc32(&body);
        if actual != expected {
            return Err(ProtocolError::CrcMismatch {
                expected,
                got: actual,
            });
        }
    }
    Ok(Some(body))
}

/// Fill `buf`, returning how many bytes arrived before EOF. Interrupted
/// reads retry; other socket errors propagate.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(filled)
}

/// Write one already-framed message to `w` and flush it.
pub fn write_frame(w: &mut impl Write, framed: &[u8]) -> Result<(), ProtocolError> {
    w.write_all(framed)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Lookup(vec![0, 1, u32::MAX]),
            Request::Lookup(vec![]),
            Request::LookupDeadline {
                budget_micros: 2_500,
                items: vec![7, 8, 9],
            },
            Request::LookupDeadline {
                budget_micros: u64::MAX,
                items: vec![],
            },
            Request::Ping,
            Request::Stats,
            Request::Health,
            Request::Ready,
            Request::ShardMap,
            Request::Reload("snapshots/serving.snap".into()),
            Request::Shutdown,
        ];
        for req in reqs {
            let framed = encode_request(&req);
            let body = read_frame(&mut &framed[..]).unwrap().unwrap();
            assert_eq!(decode_request(&body).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Rows {
                row_len: 2,
                rows: vec![vec![1.0, -2.5], vec![f32::MIN_POSITIVE, 0.0]],
            },
            Response::Rows {
                row_len: 4,
                rows: vec![],
            },
            Response::Empty,
            Response::Json("{\"qps\": 12.5}".into()),
            Response::Overloaded,
            Response::DeadlineExceeded(DeadlineStage::AtEnqueue),
            Response::DeadlineExceeded(DeadlineStage::Queued),
            Response::DeadlineExceeded(DeadlineStage::Executing),
            Response::BadRequest("no".into()),
            Response::ServerError("disk on fire".into()),
            Response::WrongShard {
                id: 9_999_999,
                shard_id: 2,
                n_shards: 8,
                row_start: 2_500_000,
                n_rows: 1_250_000,
            },
        ];
        for resp in resps {
            let framed = encode_response(&resp);
            let body = read_frame(&mut &framed[..]).unwrap().unwrap();
            assert_eq!(decode_response(&body).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_wrong_shard_payloads_are_rejected() {
        let good = Response::WrongShard {
            id: 5,
            shard_id: 1,
            n_shards: 4,
            row_start: 100,
            n_rows: 50,
        };
        let framed = encode_response(&good);
        let body = read_frame(&mut &framed[..]).unwrap().unwrap();
        // Truncated at every prefix of the 28-byte payload.
        for cut in 1..body.len() {
            assert!(
                decode_response(&body[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // Trailing garbage.
        let mut long = body.clone();
        long.push(0);
        assert!(decode_response(&long).is_err());
        // A shard id outside the declared shard count is nonsense.
        let bad = encode_response(&Response::WrongShard {
            id: 5,
            shard_id: 4,
            n_shards: 4,
            row_start: 0,
            n_rows: 1,
        });
        let bad_body = read_frame(&mut &bad[..]).unwrap().unwrap();
        assert!(decode_response(&bad_body).is_err());
    }

    #[test]
    fn rows_whose_count_low_byte_is_a_brace_still_decode_as_rows() {
        // Regression: the decoder once sniffed payload[0] == b'{' to tell
        // JSON from rows, misparsing any rows response with n % 256 == 123
        // (0x7B, the low byte of the little-endian count). Distinct status
        // bytes make the count irrelevant.
        for n in [123usize, 256 + 123] {
            let rows: Vec<Vec<f32>> = (0..n).map(|r| vec![r as f32, -(r as f32)]).collect();
            let resp = Response::Rows {
                row_len: 2,
                rows: rows.clone(),
            };
            let framed = encode_response(&resp);
            let body = read_frame(&mut &framed[..]).unwrap().unwrap();
            match decode_response(&body).unwrap() {
                Response::Rows { row_len, rows: got } => {
                    assert_eq!(row_len, 2);
                    assert_eq!(got, rows, "count {n} must round-trip as rows");
                }
                other => panic!("count {n}: expected rows, got {other:?}"),
            }
        }
        // And a JSON payload is JSON regardless of its first byte.
        let json = Response::Json("[1,2,3]".into());
        let framed = encode_response(&json);
        let body = read_frame(&mut &framed[..]).unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap(), json);
    }

    #[test]
    fn plain_ok_with_payload_is_malformed() {
        assert!(matches!(
            decode_response(&[status::OK, 1]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn zero_width_rows_with_nonzero_count_rejected() {
        // tag + n=5 + row_len=0, no row bytes: must not allocate n rows or
        // panic in chunking.
        let mut body = vec![status::OK_ROWS];
        body.extend_from_slice(&5u32.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_response(&body).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        // n = 0, row_len = 0 is degenerate but harmless.
        let mut body = vec![status::OK_ROWS];
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_response(&body).unwrap(),
            Response::Rows { rows, .. } if rows.is_empty()
        ));
    }

    #[test]
    fn item_cap_shrinks_with_row_width_so_responses_fit_one_frame() {
        // Narrow rows: the protocol cap dominates.
        assert_eq!(max_lookup_items_for_row_len(16), MAX_LOOKUP_ITEMS);
        // d = 512 ⇒ row_len = 1024 ⇒ 4 KiB/row: the frame cap dominates.
        let cap = max_lookup_items_for_row_len(1024);
        assert!(cap < MAX_LOOKUP_ITEMS);
        let worst = ROWS_HEADER_LEN as u64 + (cap as u64 + 1) * 1024 * 4;
        assert!(worst > MAX_FRAME_LEN as u64, "cap must be tight");
        let fits = ROWS_HEADER_LEN as u64 + cap as u64 * 1024 * 4;
        assert!(fits <= MAX_FRAME_LEN as u64, "cap-sized response must fit");
        // A cap-sized response really frames (no panic in `frame`); v2
        // overhead is the 4-byte prefix plus the 4-byte CRC trailer.
        let row = vec![0.0f32; 1024];
        let framed = encode_rows_response(1024, (0..cap as usize).map(|_| row.as_slice()));
        assert!(framed.len() as u64 - 8 <= MAX_FRAME_LEN as u64);
    }

    #[test]
    fn overlong_reload_path_rejected() {
        let mut body = vec![op::RELOAD];
        body.extend(std::iter::repeat_n(b'p', MAX_RELOAD_PATH_LEN + 1));
        assert!(matches!(
            decode_request(&body).unwrap_err(),
            ProtocolError::Malformed("reload path too long")
        ));
        // Exactly at the cap is fine.
        let mut body = vec![op::RELOAD];
        body.extend(std::iter::repeat_n(b'p', MAX_RELOAD_PATH_LEN));
        assert!(decode_request(&body).is_ok());
    }

    #[test]
    fn eof_between_frames_is_clean_close() {
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
    }

    #[test]
    fn legacy_tagless_frames_still_decode() {
        // A pre-CRC peer sends [len][body] with no flag and no trailer.
        for req in [
            Request::Lookup(vec![3, 1, 4]),
            Request::Ping,
            Request::Reload("a/b.snap".into()),
        ] {
            let legacy = downgrade_frame(&encode_request(&req));
            let prefix = u32::from_le_bytes(legacy[..4].try_into().unwrap());
            assert_eq!(prefix & FRAME_FLAG_CRC, 0, "downgraded frame must be v1");
            let body = read_frame(&mut &legacy[..]).unwrap().unwrap();
            assert_eq!(decode_request(&body).unwrap(), req);
        }
        // Downgrading a v1 frame is the identity.
        let legacy = downgrade_frame(&encode_request(&Request::Ping));
        assert_eq!(downgrade_frame(&legacy), legacy);
    }

    #[test]
    fn corrupted_v2_frames_are_detected_not_decoded() {
        let framed = encode_request(&Request::Lookup(vec![10, 20, 30]));
        // Flip one bit in every byte of the CRC trailer and the body; each
        // must be caught. (Header corruption can re-route between the v1
        // and v2 paths, so only the trailer+body region is guaranteed.)
        for byte in 4..framed.len() {
            for bit in 0..8 {
                let mut hurt = framed.clone();
                hurt[byte] ^= 1 << bit;
                let err = read_frame(&mut &hurt[..]).unwrap_err();
                assert!(
                    matches!(err, ProtocolError::CrcMismatch { .. }),
                    "byte {byte} bit {bit}: expected CrcMismatch, got {err}"
                );
            }
        }
    }

    #[test]
    fn v2_frame_truncated_inside_trailer_is_truncated() {
        let framed = encode_request(&Request::Ping);
        for cut in 4..8 {
            assert!(matches!(
                read_frame(&mut &framed[..cut]).unwrap_err(),
                ProtocolError::Truncated { .. }
            ));
        }
    }

    #[test]
    fn unknown_deadline_stage_byte_is_malformed() {
        assert!(matches!(
            decode_response(&[status::DEADLINE_EXCEEDED, 3]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        assert!(matches!(
            decode_response(&[status::DEADLINE_EXCEEDED]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        assert!(matches!(
            decode_response(&[status::DEADLINE_EXCEEDED, 0, 0]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn deadline_lookup_shares_the_item_caps() {
        let mut body = vec![op::LOOKUP_DL];
        body.extend_from_slice(&1_000u64.to_le_bytes());
        body.extend_from_slice(&(MAX_LOOKUP_ITEMS + 1).to_le_bytes());
        assert!(matches!(
            decode_request(&body).unwrap_err(),
            ProtocolError::TooManyItems { .. }
        ));
        // Budget shorter than 8 bytes.
        assert!(matches!(
            decode_request(&[op::LOOKUP_DL, 1, 2, 3]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn eof_inside_header_or_body_is_truncated() {
        let framed = encode_request(&Request::Ping);
        for cut in 1..framed.len() {
            let err = read_frame(&mut &framed[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.push(op::PING);
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::FrameTooLarge { .. }
        ));
        // u32::MAX would be a 4 GiB allocation if the cap were missing.
        let bytes = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let bytes = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::EmptyFrame
        ));
    }

    #[test]
    fn garbage_opcodes_and_payloads_yield_typed_errors() {
        assert!(matches!(
            decode_request(&[0xEE]).unwrap_err(),
            ProtocolError::UnknownOpcode(0xEE)
        ));
        assert!(matches!(
            decode_request(&[]).unwrap_err(),
            ProtocolError::EmptyFrame
        ));
        // Lookup whose id bytes disagree with the count.
        let mut body = vec![op::LOOKUP];
        body.extend_from_slice(&3u32.to_le_bytes());
        body.extend_from_slice(&7u32.to_le_bytes()); // one id, not three
        assert!(matches!(
            decode_request(&body).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        // Lookup count above the cap.
        let mut body = vec![op::LOOKUP];
        body.extend_from_slice(&(MAX_LOOKUP_ITEMS + 1).to_le_bytes());
        assert!(matches!(
            decode_request(&body).unwrap_err(),
            ProtocolError::TooManyItems { .. }
        ));
        // Ping with a payload.
        assert!(matches!(
            decode_request(&[op::PING, 1]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        // Reload with invalid UTF-8.
        assert!(matches!(
            decode_request(&[op::RELOAD, 0xFF, 0xFE]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }
}

//! Wire protocol for the serving daemon: length-prefixed binary frames.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! [ len: u32 LE ][ body: len bytes ]
//! body = [ tag: u8 ][ payload: len − 1 bytes ]
//! ```
//!
//! For requests the tag is an opcode ([`Request`]); for responses it is a
//! status ([`Status`]). The length prefix covers the body only and is
//! capped at [`MAX_FRAME_LEN`]; a larger prefix is rejected *before* any
//! allocation, so a hostile client cannot make the server reserve gigabytes
//! with four bytes. Decoding is total: any byte sequence either parses or
//! returns a typed [`ProtocolError`] — never a panic, never an unbounded
//! read.
//!
//! The payload formats are deliberately primitive (little-endian integers
//! and raw f32 rows) so a client in any language is a page of code:
//!
//! | request            | payload                                    |
//! |--------------------|--------------------------------------------|
//! | `Lookup`           | `n: u32`, then `n × u32` item ids          |
//! | `Ping`             | empty                                      |
//! | `Stats`            | empty                                      |
//! | `Reload`           | UTF-8 snapshot path (daemon-local, ≤ 4 KiB)|
//! | `Shutdown`         | empty                                      |
//!
//! | response status    | payload                                    |
//! |--------------------|--------------------------------------------|
//! | `Ok`               | empty — plain acknowledgement              |
//! | `OkRows`           | `n: u32`, `row_len: u32`, `n×row_len` f32  |
//! | `OkJson`           | UTF-8 JSON                                 |
//! | `Overloaded`       | empty — request was shed, retry later      |
//! | `BadRequest`       | UTF-8 message                              |
//! | `ServerError`      | UTF-8 message                              |
//!
//! Rows and JSON successes carry **distinct status bytes** — the payload
//! is never sniffed to tell them apart, so a row count whose low byte
//! happens to equal `b'{'` decodes exactly like any other.

use std::io::{self, Read, Write};

/// Hard cap on a frame body. Large enough for a 4096-item lookup response
/// at d = 512 (4096 × 1024 × 4 B = 16 MiB), small enough that a hostile
/// length prefix cannot balloon server memory.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Cap on items in one lookup request; keeps a single client from queuing
/// an unbounded batch ahead of everyone else. This is the *protocol*
/// ceiling — a server whose rows are wide enough that this many rows would
/// overflow [`MAX_FRAME_LEN`] must also enforce
/// [`max_lookup_items_for_row_len`] and reject the excess as a bad request.
pub const MAX_LOOKUP_ITEMS: u32 = 65_536;

/// Cap on a reload request's snapshot path. Bounds every error/summary
/// message that echoes the path, so responses can never outgrow
/// [`MAX_FRAME_LEN`].
pub const MAX_RELOAD_PATH_LEN: usize = 4_096;

/// Bytes of a rows response body before the f32 payload: status tag,
/// `n: u32`, `row_len: u32`.
pub const ROWS_HEADER_LEN: usize = 9;

/// The largest lookup answerable in one frame when each row carries
/// `row_len` f32 values: `n` such that
/// `ROWS_HEADER_LEN + n × row_len × 4 ≤ MAX_FRAME_LEN`, further clamped to
/// [`MAX_LOOKUP_ITEMS`]. Servers must reject larger lookups up front
/// instead of building an unsendable response.
pub fn max_lookup_items_for_row_len(row_len: u32) -> u32 {
    let per_row = row_len as u64 * 4;
    if per_row == 0 {
        return MAX_LOOKUP_ITEMS;
    }
    let budget = MAX_FRAME_LEN as u64 - ROWS_HEADER_LEN as u64;
    (budget / per_row).min(MAX_LOOKUP_ITEMS as u64) as u32
}

/// Request opcodes (the first body byte of a request frame).
pub mod op {
    /// Batched condensed-service lookup.
    pub const LOOKUP: u8 = 0x01;
    /// Liveness probe; empty `Ok` response.
    pub const PING: u8 = 0x02;
    /// Daemon statistics as JSON.
    pub const STATS: u8 = 0x03;
    /// Hot-swap the serving snapshot from a daemon-local path.
    pub const RELOAD: u8 = 0x04;
    /// Graceful daemon shutdown.
    pub const SHUTDOWN: u8 = 0x05;
}

/// Response statuses (the first body byte of a response frame).
pub mod status {
    /// Request served; empty payload (ping/shutdown acknowledgement).
    pub const OK: u8 = 0x00;
    /// Admission control shed the request — the queue was full. The
    /// request was **not** executed; retrying later is safe.
    pub const OVERLOADED: u8 = 0x01;
    /// The request frame was structurally invalid; payload is a message.
    pub const BAD_REQUEST: u8 = 0x02;
    /// The daemon failed to execute a valid request; payload is a message.
    pub const SERVER_ERROR: u8 = 0x03;
    /// Request served; payload is a rows header plus raw f32 rows.
    pub const OK_ROWS: u8 = 0x04;
    /// Request served; payload is UTF-8 JSON (stats, reload summaries).
    pub const OK_JSON: u8 = 0x05;
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up condensed service vectors for these item ids.
    Lookup(Vec<u32>),
    /// Liveness probe.
    Ping,
    /// Fetch daemon statistics.
    Stats,
    /// Hot-swap the serving snapshot from this daemon-local path.
    Reload(String),
    /// Ask the daemon to shut down gracefully.
    Shutdown,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Lookup result: one `row_len`-float vector per requested item, in
    /// request order.
    Rows { row_len: u32, rows: Vec<Vec<f32>> },
    /// Empty `Ok` (ping acknowledgement).
    Empty,
    /// `Ok` with a JSON payload (stats, reload summaries).
    Json(String),
    /// The request was shed by admission control.
    Overloaded,
    /// The request was malformed.
    BadRequest(String),
    /// The daemon failed internally.
    ServerError(String),
}

/// Typed decode/transport errors. Every malformed input maps to one of
/// these; the daemon turns them into `BadRequest` responses and the client
/// into hard errors — neither side panics.
#[derive(Debug)]
pub enum ProtocolError {
    /// The body declared by the length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge { len: u32, max: u32 },
    /// A zero-length body (a frame must carry at least its tag byte).
    EmptyFrame,
    /// The stream ended inside a frame (header or body).
    Truncated { expected: usize, got: usize },
    /// An opcode byte no request uses.
    UnknownOpcode(u8),
    /// An unknown response status byte.
    UnknownStatus(u8),
    /// Structurally invalid payload for the tagged message.
    Malformed(&'static str),
    /// A lookup asked for more than [`MAX_LOOKUP_ITEMS`] items.
    TooManyItems { n: u32, max: u32 },
    /// Underlying socket error.
    Io(io::Error),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::EmptyFrame => write!(f, "empty frame body (missing tag byte)"),
            ProtocolError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown request opcode {op:#04x}"),
            ProtocolError::UnknownStatus(s) => write!(f, "unknown response status {s:#04x}"),
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtocolError::TooManyItems { n, max } => {
                write!(f, "lookup of {n} items exceeds the {max}-item cap")
            }
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Split a little-endian `u32` off the front of `buf`.
fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    let (head, rest) = buf.split_first_chunk::<4>()?;
    *buf = rest;
    Some(u32::from_le_bytes(*head))
}

/// Decode a request body (tag + payload, no length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request, ProtocolError> {
    let (&opcode, mut payload) = body.split_first().ok_or(ProtocolError::EmptyFrame)?;
    match opcode {
        op::LOOKUP => {
            let n = take_u32(&mut payload).ok_or(ProtocolError::Malformed(
                "lookup payload shorter than count",
            ))?;
            if n > MAX_LOOKUP_ITEMS {
                return Err(ProtocolError::TooManyItems {
                    n,
                    max: MAX_LOOKUP_ITEMS,
                });
            }
            if payload.len() != n as usize * 4 {
                return Err(ProtocolError::Malformed(
                    "lookup id bytes disagree with the declared count",
                ));
            }
            let items = payload
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact yields 4 bytes")))
                .collect();
            Ok(Request::Lookup(items))
        }
        op::PING | op::STATS | op::SHUTDOWN => {
            if !payload.is_empty() {
                return Err(ProtocolError::Malformed(
                    "ping/stats/shutdown carry no payload",
                ));
            }
            Ok(match opcode {
                op::PING => Request::Ping,
                op::STATS => Request::Stats,
                _ => Request::Shutdown,
            })
        }
        op::RELOAD => {
            if payload.len() > MAX_RELOAD_PATH_LEN {
                return Err(ProtocolError::Malformed("reload path too long"));
            }
            let path = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::Malformed("reload path is not UTF-8"))?;
            if path.is_empty() {
                return Err(ProtocolError::Malformed("reload path is empty"));
            }
            Ok(Request::Reload(path.to_string()))
        }
        other => Err(ProtocolError::UnknownOpcode(other)),
    }
}

/// Encode a request into a full frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    match req {
        Request::Lookup(items) => {
            body.push(op::LOOKUP);
            body.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for id in items {
                body.extend_from_slice(&id.to_le_bytes());
            }
        }
        Request::Ping => body.push(op::PING),
        Request::Stats => body.push(op::STATS),
        Request::Reload(path) => {
            body.push(op::RELOAD);
            body.extend_from_slice(path.as_bytes());
        }
        Request::Shutdown => body.push(op::SHUTDOWN),
    }
    frame(body)
}

/// Decode a response body (tag + payload, no length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, ProtocolError> {
    let (&tag, mut payload) = body.split_first().ok_or(ProtocolError::EmptyFrame)?;
    match tag {
        status::OK => {
            if !payload.is_empty() {
                return Err(ProtocolError::Malformed("plain ok carries no payload"));
            }
            Ok(Response::Empty)
        }
        status::OK_JSON => {
            let json = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::Malformed("JSON payload is not UTF-8"))?;
            Ok(Response::Json(json.to_string()))
        }
        status::OK_ROWS => {
            let n = take_u32(&mut payload)
                .ok_or(ProtocolError::Malformed("rows payload shorter than header"))?;
            let row_len = take_u32(&mut payload)
                .ok_or(ProtocolError::Malformed("rows payload shorter than header"))?;
            let expect = (n as usize)
                .checked_mul(row_len as usize)
                .and_then(|f| f.checked_mul(4))
                .ok_or(ProtocolError::Malformed("rows header overflows"))?;
            if payload.len() != expect {
                return Err(ProtocolError::Malformed(
                    "row bytes disagree with the declared shape",
                ));
            }
            // Zero-width rows carry no bytes to validate `n` against; they
            // are never produced (row_len = 2·dim ≥ 2) and a huge `n`
            // would otherwise allocate unboundedly — and `chunks_exact`
            // panics on a zero chunk size.
            if row_len == 0 && n > 0 {
                return Err(ProtocolError::Malformed("zero-width rows"));
            }
            if row_len == 0 {
                return Ok(Response::Rows {
                    row_len,
                    rows: Vec::new(),
                });
            }
            let mut rows = Vec::with_capacity(n as usize);
            for row in payload.chunks_exact(row_len as usize * 4) {
                rows.push(
                    row.chunks_exact(4)
                        .map(|c| {
                            f32::from_le_bytes(c.try_into().expect("chunks_exact yields 4 bytes"))
                        })
                        .collect(),
                );
            }
            Ok(Response::Rows { row_len, rows })
        }
        status::OVERLOADED => {
            if !payload.is_empty() {
                return Err(ProtocolError::Malformed("overloaded carries no payload"));
            }
            Ok(Response::Overloaded)
        }
        status::BAD_REQUEST | status::SERVER_ERROR => {
            let msg = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8"))?
                .to_string();
            Ok(if tag == status::BAD_REQUEST {
                Response::BadRequest(msg)
            } else {
                Response::ServerError(msg)
            })
        }
        other => Err(ProtocolError::UnknownStatus(other)),
    }
}

/// Encode a response into a full frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    match resp {
        Response::Rows { row_len, rows } => {
            body.push(status::OK_ROWS);
            body.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            body.extend_from_slice(&row_len.to_le_bytes());
            for row in rows {
                debug_assert_eq!(row.len(), *row_len as usize);
                for x in row {
                    body.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        Response::Empty => body.push(status::OK),
        Response::Json(json) => {
            body.push(status::OK_JSON);
            body.extend_from_slice(json.as_bytes());
        }
        Response::Overloaded => body.push(status::OVERLOADED),
        Response::BadRequest(msg) => {
            body.push(status::BAD_REQUEST);
            body.extend_from_slice(msg.as_bytes());
        }
        Response::ServerError(msg) => {
            body.push(status::SERVER_ERROR);
            body.extend_from_slice(msg.as_bytes());
        }
    }
    frame(body)
}

/// Encode an `Ok` rows response directly from borrowed rows — the daemon's
/// hot path, which must not clone every served vector just to frame it.
/// Decodes identically to [`Response::Rows`].
pub fn encode_rows_response<'a>(
    row_len: u32,
    rows: impl ExactSizeIterator<Item = &'a [f32]>,
) -> Vec<u8> {
    let mut body = Vec::with_capacity(ROWS_HEADER_LEN + rows.len() * row_len as usize * 4);
    body.push(status::OK_ROWS);
    body.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    body.extend_from_slice(&row_len.to_le_bytes());
    for row in rows {
        debug_assert_eq!(row.len(), row_len as usize);
        for x in row {
            body.extend_from_slice(&x.to_le_bytes());
        }
    }
    frame(body)
}

/// Prefix `body` with its length.
///
/// # Panics
/// If the body exceeds [`MAX_FRAME_LEN`] — a backstop, enforced in every
/// build: callers bound their payloads up front ([`MAX_LOOKUP_ITEMS`],
/// [`MAX_RELOAD_PATH_LEN`], [`max_lookup_items_for_row_len`]) so a frame
/// the peer would reject is a caller bug, not a runtime condition.
fn frame(body: Vec<u8>) -> Vec<u8> {
    assert!(
        body.len() <= MAX_FRAME_LEN as usize,
        "frame body of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
        body.len()
    );
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend(body);
    out
}

/// Read one frame body from `r`.
///
/// `Ok(None)` means the peer closed the connection cleanly *between*
/// frames (EOF at the first header byte); EOF anywhere else is a
/// [`ProtocolError::Truncated`]. The length prefix is validated against
/// [`MAX_FRAME_LEN`] before the body buffer is allocated.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(ProtocolError::Truncated { expected: 4, got }),
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    if len == 0 {
        return Err(ProtocolError::EmptyFrame);
    }
    let mut body = vec![0u8; len as usize];
    let got = read_exact_or_eof(r, &mut body)?;
    if got != body.len() {
        return Err(ProtocolError::Truncated {
            expected: len as usize,
            got,
        });
    }
    Ok(Some(body))
}

/// Fill `buf`, returning how many bytes arrived before EOF. Interrupted
/// reads retry; other socket errors propagate.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(filled)
}

/// Write one already-framed message to `w` and flush it.
pub fn write_frame(w: &mut impl Write, framed: &[u8]) -> Result<(), ProtocolError> {
    w.write_all(framed)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Lookup(vec![0, 1, u32::MAX]),
            Request::Lookup(vec![]),
            Request::Ping,
            Request::Stats,
            Request::Reload("snapshots/serving.snap".into()),
            Request::Shutdown,
        ];
        for req in reqs {
            let framed = encode_request(&req);
            let body = read_frame(&mut &framed[..]).unwrap().unwrap();
            assert_eq!(decode_request(&body).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Rows {
                row_len: 2,
                rows: vec![vec![1.0, -2.5], vec![f32::MIN_POSITIVE, 0.0]],
            },
            Response::Rows {
                row_len: 4,
                rows: vec![],
            },
            Response::Empty,
            Response::Json("{\"qps\": 12.5}".into()),
            Response::Overloaded,
            Response::BadRequest("no".into()),
            Response::ServerError("disk on fire".into()),
        ];
        for resp in resps {
            let framed = encode_response(&resp);
            let body = read_frame(&mut &framed[..]).unwrap().unwrap();
            assert_eq!(decode_response(&body).unwrap(), resp);
        }
    }

    #[test]
    fn rows_whose_count_low_byte_is_a_brace_still_decode_as_rows() {
        // Regression: the decoder once sniffed payload[0] == b'{' to tell
        // JSON from rows, misparsing any rows response with n % 256 == 123
        // (0x7B, the low byte of the little-endian count). Distinct status
        // bytes make the count irrelevant.
        for n in [123usize, 256 + 123] {
            let rows: Vec<Vec<f32>> = (0..n).map(|r| vec![r as f32, -(r as f32)]).collect();
            let resp = Response::Rows {
                row_len: 2,
                rows: rows.clone(),
            };
            let framed = encode_response(&resp);
            let body = read_frame(&mut &framed[..]).unwrap().unwrap();
            match decode_response(&body).unwrap() {
                Response::Rows { row_len, rows: got } => {
                    assert_eq!(row_len, 2);
                    assert_eq!(got, rows, "count {n} must round-trip as rows");
                }
                other => panic!("count {n}: expected rows, got {other:?}"),
            }
        }
        // And a JSON payload is JSON regardless of its first byte.
        let json = Response::Json("[1,2,3]".into());
        let framed = encode_response(&json);
        let body = read_frame(&mut &framed[..]).unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap(), json);
    }

    #[test]
    fn plain_ok_with_payload_is_malformed() {
        assert!(matches!(
            decode_response(&[status::OK, 1]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn zero_width_rows_with_nonzero_count_rejected() {
        // tag + n=5 + row_len=0, no row bytes: must not allocate n rows or
        // panic in chunking.
        let mut body = vec![status::OK_ROWS];
        body.extend_from_slice(&5u32.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_response(&body).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        // n = 0, row_len = 0 is degenerate but harmless.
        let mut body = vec![status::OK_ROWS];
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_response(&body).unwrap(),
            Response::Rows { rows, .. } if rows.is_empty()
        ));
    }

    #[test]
    fn item_cap_shrinks_with_row_width_so_responses_fit_one_frame() {
        // Narrow rows: the protocol cap dominates.
        assert_eq!(max_lookup_items_for_row_len(16), MAX_LOOKUP_ITEMS);
        // d = 512 ⇒ row_len = 1024 ⇒ 4 KiB/row: the frame cap dominates.
        let cap = max_lookup_items_for_row_len(1024);
        assert!(cap < MAX_LOOKUP_ITEMS);
        let worst = ROWS_HEADER_LEN as u64 + (cap as u64 + 1) * 1024 * 4;
        assert!(worst > MAX_FRAME_LEN as u64, "cap must be tight");
        let fits = ROWS_HEADER_LEN as u64 + cap as u64 * 1024 * 4;
        assert!(fits <= MAX_FRAME_LEN as u64, "cap-sized response must fit");
        // A cap-sized response really frames (no panic in `frame`).
        let row = vec![0.0f32; 1024];
        let framed = encode_rows_response(1024, (0..cap as usize).map(|_| row.as_slice()));
        assert!(framed.len() as u64 - 4 <= MAX_FRAME_LEN as u64);
    }

    #[test]
    fn overlong_reload_path_rejected() {
        let mut body = vec![op::RELOAD];
        body.extend(std::iter::repeat_n(b'p', MAX_RELOAD_PATH_LEN + 1));
        assert!(matches!(
            decode_request(&body).unwrap_err(),
            ProtocolError::Malformed("reload path too long")
        ));
        // Exactly at the cap is fine.
        let mut body = vec![op::RELOAD];
        body.extend(std::iter::repeat_n(b'p', MAX_RELOAD_PATH_LEN));
        assert!(decode_request(&body).is_ok());
    }

    #[test]
    fn eof_between_frames_is_clean_close() {
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
    }

    #[test]
    fn eof_inside_header_or_body_is_truncated() {
        let framed = encode_request(&Request::Ping);
        for cut in 1..framed.len() {
            let err = read_frame(&mut &framed[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.push(op::PING);
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::FrameTooLarge { .. }
        ));
        // u32::MAX would be a 4 GiB allocation if the cap were missing.
        let bytes = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let bytes = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &bytes[..]).unwrap_err(),
            ProtocolError::EmptyFrame
        ));
    }

    #[test]
    fn garbage_opcodes_and_payloads_yield_typed_errors() {
        assert!(matches!(
            decode_request(&[0xEE]).unwrap_err(),
            ProtocolError::UnknownOpcode(0xEE)
        ));
        assert!(matches!(
            decode_request(&[]).unwrap_err(),
            ProtocolError::EmptyFrame
        ));
        // Lookup whose id bytes disagree with the count.
        let mut body = vec![op::LOOKUP];
        body.extend_from_slice(&3u32.to_le_bytes());
        body.extend_from_slice(&7u32.to_le_bytes()); // one id, not three
        assert!(matches!(
            decode_request(&body).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        // Lookup count above the cap.
        let mut body = vec![op::LOOKUP];
        body.extend_from_slice(&(MAX_LOOKUP_ITEMS + 1).to_le_bytes());
        assert!(matches!(
            decode_request(&body).unwrap_err(),
            ProtocolError::TooManyItems { .. }
        ));
        // Ping with a payload.
        assert!(matches!(
            decode_request(&[op::PING, 1]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
        // Reload with invalid UTF-8.
        assert!(matches!(
            decode_request(&[op::RELOAD, 0xFF, 0xFE]).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }
}

//! `PKGMSS3` — the alignment-aware, section-offset snapshot layout for
//! zero-copy out-of-core serving.
//!
//! `PKGMSS1`/`PKGMSS2` are streams: loading them means decoding every row
//! into heap memory, so startup cost and RSS both scale with the table. At
//! the paper's 142.6M-item scale that is the difference between a serving
//! node that starts in milliseconds and one that spends minutes faulting a
//! 68 GiB table into RAM it may not have. `PKGMSS3` instead lays the table
//! out so the on-disk bytes *are* the serving format:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "PKGMSS3\0"
//!      8     4  version (u32, = 1)
//!     12     4  flags   (u32, bit0 = quantized)
//!     16     4  dim     (u32)                     rows are 2·dim floats
//!     20     4  k       (u32)
//!     24     8  n_rows  (u64)                     rows in THIS shard
//!     32     8  row_start (u64)                   global id of row 0
//!     40     4  n_shards (u32)  44  4  shard_id (u32)
//!     48     4  block   (u32, 0 for dense)
//!     52     4  n_sections (u32)
//!     56     8  n_exact (u64)
//!     64   24·n section table: kind u32, crc32 u32, offset u64, len u64
//!      +     4  header_crc32 (over bytes [0, 64 + 24·n))
//!   4096   ...  sections, each page-aligned, zero padding between
//! ```
//!
//! Dense files carry sections `[DENSE_F32, FALLBACK_F32]`; quantized files
//! `[QDATA_I8, SCALES_F32, ROWERR_F32, EXACT_IDS_U32, EXACT_ROWS_F32,
//! FALLBACK_F32]` (escape ids are shard-local row indices). Because every
//! section starts on a page boundary, mapping the file and reinterpreting a
//! section as `&[f32]`/`&[u32]`/`&[i8]` is alignment-sound, and a row
//! lookup is pointer arithmetic into the mapping — no per-row decode, no
//! heap copy. The fallback (mean served row) is stored as its own section
//! so a mapped open never scans the table.
//!
//! Integrity: the header CRC and section bounds/alignment are always
//! verified at open. Section CRCs are verified eagerly only for sections
//! smaller than [`SS3_EAGER_CRC_LIMIT`] — checksumming a multi-GiB table
//! would defeat the O(1) startup this format exists for — while the
//! resident decoder ([`snapshot_from_ss3_bytes`]) verifies everything.
//! Files are written raw (no `PKGMAF1` container: its 28-byte header would
//! break page alignment relative to the file start); the magic keeps
//! loaders unambiguous.

use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::artifact::{crc32, crc32_update, ArtifactError};
use crate::mmap::MmapRegion;
use crate::quant::{self, QuantTable};
use crate::serialize::SerializeError;
use crate::snapshot::{ServiceSnapshot, ShardSpec, Storage};

/// Leading bytes of every `PKGMSS3` snapshot file.
pub const SS3_MAGIC: &[u8; 8] = b"PKGMSS3\0";
/// Current `PKGMSS3` format version.
const SS3_VERSION: u32 = 1;
/// Header flag bit: rows are int8-quantized.
const FLAG_QUANTIZED: u32 = 1;
/// Section alignment: every section starts on a page boundary.
const PAGE: u64 = 4096;
/// Fixed header bytes before the section table.
const HEADER_FIXED: usize = 64;
/// Bytes per section-table entry.
const SECTION_ENTRY: usize = 24;
/// Mapped opens verify CRCs eagerly only for sections smaller than this;
/// larger sections rely on the always-verified header CRC + bounds checks
/// (the resident decoder verifies every section regardless of size).
pub const SS3_EAGER_CRC_LIMIT: u64 = 1 << 20;
/// Mirror of `serialize::MAX_QUANT_BLOCK` for header validation.
const MAX_BLOCK: u32 = 4096;

// Section kinds.
const SEC_DENSE_F32: u32 = 1;
const SEC_FALLBACK_F32: u32 = 2;
const SEC_QDATA_I8: u32 = 3;
const SEC_SCALES_F32: u32 = 4;
const SEC_ROWERR_F32: u32 = 5;
const SEC_EXACT_IDS_U32: u32 = 6;
const SEC_EXACT_ROWS_F32: u32 = 7;

const DENSE_KINDS: [u32; 2] = [SEC_DENSE_F32, SEC_FALLBACK_F32];
const QUANT_KINDS: [u32; 6] = [
    SEC_QDATA_I8,
    SEC_SCALES_F32,
    SEC_ROWERR_F32,
    SEC_EXACT_IDS_U32,
    SEC_EXACT_ROWS_F32,
    SEC_FALLBACK_F32,
];

fn corrupt(what: impl Into<String>) -> SerializeError {
    SerializeError::Corrupt(what.into())
}

fn align_page(off: u64) -> u64 {
    off.div_ceil(PAGE) * PAGE
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Section {
    kind: u32,
    crc: u32,
    offset: u64,
    len: u64,
}

#[derive(Debug, Clone)]
struct Header {
    quantized: bool,
    dim: u32,
    k: u32,
    n_rows: u64,
    shard: ShardSpec,
    block: u32,
    n_exact: u64,
    sections: Vec<Section>,
}

impl Header {
    fn row_len(&self) -> usize {
        2 * self.dim as usize
    }

    /// The section of `kind` (validation guarantees presence/uniqueness).
    fn section(&self, kind: u32) -> &Section {
        self.sections
            .iter()
            .find(|s| s.kind == kind)
            .expect("validated section present")
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_FIXED + self.sections.len() * SECTION_ENTRY + 4);
        out.extend_from_slice(SS3_MAGIC);
        out.extend_from_slice(&SS3_VERSION.to_le_bytes());
        let flags = if self.quantized { FLAG_QUANTIZED } else { 0 };
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.n_rows.to_le_bytes());
        out.extend_from_slice(&self.shard.row_start.to_le_bytes());
        out.extend_from_slice(&self.shard.n_shards.to_le_bytes());
        out.extend_from_slice(&self.shard.shard_id.to_le_bytes());
        out.extend_from_slice(&self.block.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.n_exact.to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_FIXED);
        for s in &self.sections {
            out.extend_from_slice(&s.kind.to_le_bytes());
            out.extend_from_slice(&s.crc.to_le_bytes());
            out.extend_from_slice(&s.offset.to_le_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

fn get_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

fn get_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

/// Parse and fully validate a `PKGMSS3` header against the file length:
/// magic/version/flags, header CRC, section kinds and order, page-aligned
/// in-bounds non-overlapping sections, and exact per-kind section lengths.
/// Everything here is O(header), independent of table size.
fn parse_header(bytes: &[u8]) -> Result<Header, SerializeError> {
    if bytes.len() < HEADER_FIXED {
        return Err(corrupt(format!(
            "PKGMSS3 header truncated at {} bytes",
            bytes.len()
        )));
    }
    if &bytes[..8] != SS3_MAGIC {
        return Err(corrupt("bad PKGMSS3 magic"));
    }
    let version = get_u32(bytes, 8);
    if version != SS3_VERSION {
        return Err(corrupt(format!("unsupported PKGMSS3 version {version}")));
    }
    let flags = get_u32(bytes, 12);
    if flags & !FLAG_QUANTIZED != 0 {
        return Err(corrupt(format!("unsupported PKGMSS3 flags {flags:#x}")));
    }
    let quantized = flags & FLAG_QUANTIZED != 0;
    let dim = get_u32(bytes, 16);
    let k = get_u32(bytes, 20);
    let n_rows = get_u64(bytes, 24);
    let row_start = get_u64(bytes, 32);
    let n_shards = get_u32(bytes, 40);
    let shard_id = get_u32(bytes, 44);
    let block = get_u32(bytes, 48);
    let n_sections = get_u32(bytes, 52) as usize;
    let n_exact = get_u64(bytes, 56);

    if dim == 0 {
        return Err(corrupt("snapshot dim must be positive"));
    }
    if n_rows == 0 {
        return Err(corrupt("PKGMSS3 shard has zero rows"));
    }
    if n_shards == 0 || shard_id >= n_shards {
        return Err(corrupt(format!(
            "invalid shard spec: shard {shard_id} of {n_shards}"
        )));
    }
    // Entity ids are u32: the shard's global range must fit.
    let row_end = row_start
        .checked_add(n_rows)
        .filter(|&e| e <= u64::from(u32::MAX) + 1)
        .ok_or_else(|| corrupt("shard row range exceeds the u32 id space"))?;
    let _ = row_end;
    let row_len = 2 * dim as u64;
    let expected_kinds: &[u32] = if quantized {
        &QUANT_KINDS
    } else {
        &DENSE_KINDS
    };
    if n_sections != expected_kinds.len() {
        return Err(corrupt(format!(
            "expected {} sections, header declares {n_sections}",
            expected_kinds.len()
        )));
    }
    if quantized {
        if block == 0 || block > MAX_BLOCK || u64::from(block) > row_len {
            return Err(corrupt(format!("invalid quant block {block}")));
        }
        if n_exact > n_rows {
            return Err(corrupt(format!(
                "{n_exact} exact rows exceed the {n_rows}-row shard"
            )));
        }
    } else if block != 0 || n_exact != 0 {
        return Err(corrupt("dense PKGMSS3 must have block = n_exact = 0"));
    }

    let table_end = HEADER_FIXED + n_sections * SECTION_ENTRY;
    if bytes.len() < table_end + 4 {
        return Err(corrupt("PKGMSS3 section table truncated"));
    }
    let stored_crc = get_u32(bytes, table_end);
    let actual_crc = crc32(&bytes[..table_end]);
    if stored_crc != actual_crc {
        return Err(corrupt(format!(
            "header CRC mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }

    let file_len = bytes.len() as u64;
    let nb = if quantized {
        row_len.div_ceil(u64::from(block))
    } else {
        0
    };
    let mut sections = Vec::with_capacity(n_sections);
    let mut min_next_offset = PAGE;
    for (i, &want_kind) in expected_kinds.iter().enumerate() {
        let off = HEADER_FIXED + i * SECTION_ENTRY;
        let s = Section {
            kind: get_u32(bytes, off),
            crc: get_u32(bytes, off + 4),
            offset: get_u64(bytes, off + 8),
            len: get_u64(bytes, off + 16),
        };
        if s.kind != want_kind {
            return Err(corrupt(format!(
                "section {i}: expected kind {want_kind}, found {}",
                s.kind
            )));
        }
        if !s.offset.is_multiple_of(PAGE) {
            return Err(corrupt(format!(
                "section {i} offset {} is not page-aligned",
                s.offset
            )));
        }
        if s.offset < min_next_offset {
            return Err(corrupt(format!(
                "section {i} offset {} overlaps the preceding bytes",
                s.offset
            )));
        }
        let end = s
            .offset
            .checked_add(s.len)
            .filter(|&e| e <= file_len)
            .ok_or_else(|| {
                corrupt(format!(
                    "section {i} [{}, +{}) exceeds the {file_len}-byte file",
                    s.offset, s.len
                ))
            })?;
        let expect_len = match want_kind {
            SEC_DENSE_F32 => n_rows.checked_mul(row_len).map(|x| x * 4),
            SEC_FALLBACK_F32 => Some(row_len * 4),
            SEC_QDATA_I8 => n_rows.checked_mul(row_len),
            SEC_SCALES_F32 => n_rows.checked_mul(nb).map(|x| x * 4),
            SEC_ROWERR_F32 => n_rows.checked_mul(4),
            SEC_EXACT_IDS_U32 => n_exact.checked_mul(4),
            SEC_EXACT_ROWS_F32 => n_exact.checked_mul(row_len).map(|x| x * 4),
            _ => unreachable!("expected kinds are exhaustive"),
        }
        .ok_or_else(|| corrupt("section size overflows u64"))?;
        if s.len != expect_len {
            return Err(corrupt(format!(
                "section {i} (kind {want_kind}) is {} bytes, expected {expect_len}",
                s.len
            )));
        }
        min_next_offset = align_page(end).max(PAGE);
        sections.push(s);
    }
    // Sections must be decodable on this host (usize indexing).
    if usize::try_from(file_len).is_err() {
        return Err(corrupt("file too large for this host"));
    }
    Ok(Header {
        quantized,
        dim,
        k,
        n_rows,
        shard: ShardSpec {
            n_shards,
            shard_id,
            row_start,
        },
        block,
        n_exact,
        sections,
    })
}

/// Verify section CRCs: all of them (`eager_limit = None`, the resident
/// decoder), or only sections smaller than the limit (mapped opens).
fn verify_section_crcs(
    bytes: &[u8],
    header: &Header,
    eager_limit: Option<u64>,
) -> Result<(), SerializeError> {
    for s in &header.sections {
        if eager_limit.is_some_and(|limit| s.len >= limit) {
            continue;
        }
        let body = &bytes[s.offset as usize..(s.offset + s.len) as usize];
        let actual = crc32(body);
        if actual != s.crc {
            return Err(corrupt(format!(
                "section kind {} CRC mismatch: stored {:#010x}, computed {actual:#010x}",
                s.kind, s.crc
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Zero-copy section views
// ---------------------------------------------------------------------------

/// Reinterpret a section as `&[f32]`. Sound: sections are page-aligned and
/// the region base is at least 8-byte aligned, every u32 bit pattern is a
/// valid f32, and the length was validated against the file size.
fn f32_section(bytes: &[u8], offset: usize, n: usize) -> &[f32] {
    let body = &bytes[offset..offset + 4 * n];
    debug_assert_eq!(body.as_ptr() as usize % 4, 0);
    unsafe { std::slice::from_raw_parts(body.as_ptr() as *const f32, n) }
}

fn u32_section(bytes: &[u8], offset: usize, n: usize) -> &[u32] {
    let body = &bytes[offset..offset + 4 * n];
    debug_assert_eq!(body.as_ptr() as usize % 4, 0);
    unsafe { std::slice::from_raw_parts(body.as_ptr() as *const u32, n) }
}

fn i8_section(bytes: &[u8], offset: usize, n: usize) -> &[i8] {
    let body = &bytes[offset..offset + n];
    unsafe { std::slice::from_raw_parts(body.as_ptr() as *const i8, n) }
}

/// Dense rows served straight out of a mapped `PKGMSS3` region.
#[derive(Debug, Clone)]
pub(crate) struct MappedDense {
    region: Arc<MmapRegion>,
    table_off: usize,
    n_rows: usize,
    row_len: usize,
}

impl MappedDense {
    pub(crate) fn table(&self) -> &[f32] {
        f32_section(
            self.region.bytes(),
            self.table_off,
            self.n_rows * self.row_len,
        )
    }

    pub(crate) fn n_rows(&self) -> usize {
        self.n_rows
    }
}

/// Quantized rows (data/scales/errors/escapes) served straight out of a
/// mapped `PKGMSS3` region, dequantizing through the same loop as the
/// resident [`QuantTable`] so both backings produce bit-identical floats.
#[derive(Debug, Clone)]
pub(crate) struct MappedQuant {
    region: Arc<MmapRegion>,
    row_len: usize,
    block: usize,
    n_rows: usize,
    n_exact: usize,
    data_off: usize,
    scales_off: usize,
    errs_off: usize,
    ids_off: usize,
    exact_off: usize,
}

impl MappedQuant {
    pub(crate) fn data(&self) -> &[i8] {
        i8_section(
            self.region.bytes(),
            self.data_off,
            self.n_rows * self.row_len,
        )
    }

    pub(crate) fn scales(&self) -> &[f32] {
        let nb = self.row_len.div_ceil(self.block);
        f32_section(self.region.bytes(), self.scales_off, self.n_rows * nb)
    }

    pub(crate) fn row_errs(&self) -> &[f32] {
        f32_section(self.region.bytes(), self.errs_off, self.n_rows)
    }

    pub(crate) fn exact_ids(&self) -> &[u32] {
        u32_section(self.region.bytes(), self.ids_off, self.n_exact)
    }

    pub(crate) fn exact_rows_f32(&self) -> &[f32] {
        f32_section(
            self.region.bytes(),
            self.exact_off,
            self.n_exact * self.row_len,
        )
    }

    pub(crate) fn block(&self) -> usize {
        self.block
    }

    pub(crate) fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Serve local row `id` (exact escape if present, else dequantized) —
    /// the mapped twin of `QuantizedRows::row_into`.
    pub(crate) fn row_into(&self, id: usize, out: &mut [f32]) {
        if let Ok(e) = self.exact_ids().binary_search(&(id as u32)) {
            out.copy_from_slice(&self.exact_rows_f32()[e * self.row_len..(e + 1) * self.row_len]);
        } else {
            self.dequantize_into(id, out);
        }
    }

    pub(crate) fn dequantize_into(&self, row: usize, out: &mut [f32]) {
        quant::dequantize_row_into(
            self.data(),
            self.scales(),
            self.row_len,
            self.block,
            row,
            out,
        );
    }
}

// ---------------------------------------------------------------------------
// One-shot writer (bytes in memory)
// ---------------------------------------------------------------------------

fn push_f32s_le(out: &mut Vec<u8>, xs: &[f32]) {
    #[cfg(target_endian = "little")]
    out.extend_from_slice(unsafe {
        std::slice::from_raw_parts(xs.as_ptr() as *const u8, xs.len() * 4)
    });
    #[cfg(not(target_endian = "little"))]
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn push_u32s_le(out: &mut Vec<u8>, xs: &[u32]) {
    #[cfg(target_endian = "little")]
    out.extend_from_slice(unsafe {
        std::slice::from_raw_parts(xs.as_ptr() as *const u8, xs.len() * 4)
    });
    #[cfg(not(target_endian = "little"))]
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn i8s_as_bytes(xs: &[i8]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(xs.as_ptr() as *const u8, xs.len()) }
}

/// Serialize `snapshot` (either backing) into `PKGMSS3` bytes. Errors on
/// an empty table — a zero-row shard is never valid on disk.
pub fn snapshot_to_ss3_bytes(snapshot: &ServiceSnapshot) -> Result<Vec<u8>, SerializeError> {
    if snapshot.n_rows() == 0 {
        return Err(corrupt("refusing to write a zero-row PKGMSS3 shard"));
    }
    let mut fallback = Vec::new();
    push_f32s_le(&mut fallback, snapshot.fallback_row());
    let bodies: Vec<(u32, Vec<u8>)> = if let Some(q) = snapshot.quant_slices() {
        let mut scales = Vec::new();
        push_f32s_le(&mut scales, q.scales);
        let mut errs = Vec::new();
        push_f32s_le(&mut errs, q.row_errs);
        let mut ids = Vec::new();
        push_u32s_le(&mut ids, q.exact_ids);
        let mut exact = Vec::new();
        push_f32s_le(&mut exact, q.exact_rows);
        vec![
            (SEC_QDATA_I8, i8s_as_bytes(q.data).to_vec()),
            (SEC_SCALES_F32, scales),
            (SEC_ROWERR_F32, errs),
            (SEC_EXACT_IDS_U32, ids),
            (SEC_EXACT_ROWS_F32, exact),
            (SEC_FALLBACK_F32, fallback),
        ]
    } else {
        let mut table = Vec::new();
        push_f32s_le(&mut table, snapshot.dense_table().expect("dense snapshot"));
        vec![(SEC_DENSE_F32, table), (SEC_FALLBACK_F32, fallback)]
    };

    let mut sections = Vec::with_capacity(bodies.len());
    let mut offset = PAGE;
    for (kind, body) in &bodies {
        sections.push(Section {
            kind: *kind,
            crc: crc32(body),
            offset,
            len: body.len() as u64,
        });
        offset = align_page(offset + body.len() as u64);
    }
    let header = Header {
        quantized: snapshot.is_quantized(),
        dim: snapshot.dim() as u32,
        k: snapshot.k() as u32,
        n_rows: snapshot.n_rows() as u64,
        shard: snapshot.shard(),
        block: snapshot.quant_slices().map_or(0, |q| q.block as u32),
        n_exact: snapshot
            .quant_slices()
            .map_or(0, |q| q.exact_ids.len() as u64),
        sections: sections.clone(),
    };
    let last = sections.last().expect("at least two sections");
    let total = (last.offset + last.len) as usize;
    let mut out = vec![0u8; total];
    let hbytes = header.encode();
    out[..hbytes.len()].copy_from_slice(&hbytes);
    for (s, (_, body)) in sections.iter().zip(&bodies) {
        out[s.offset as usize..s.offset as usize + body.len()].copy_from_slice(body);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Resident decode (full verification)
// ---------------------------------------------------------------------------

fn read_f32s_le(bytes: &[u8], s: &Section) -> Vec<f32> {
    bytes[s.offset as usize..(s.offset + s.len) as usize]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

fn read_u32s_le(bytes: &[u8], s: &Section) -> Vec<u32> {
    bytes[s.offset as usize..(s.offset + s.len) as usize]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

/// Decode `PKGMSS3` bytes into a fully resident snapshot, verifying the
/// header CRC and **every** section CRC — the trust-nothing path
/// `serialize::snapshot_from_bytes` dispatches to.
pub(crate) fn snapshot_from_ss3_bytes(bytes: &[u8]) -> Result<ServiceSnapshot, SerializeError> {
    let header = parse_header(bytes)?;
    verify_section_crcs(bytes, &header, None)?;
    let fallback = read_f32s_le(bytes, header.section(SEC_FALLBACK_F32));
    let dim = header.dim as usize;
    let k = header.k as usize;
    let snap = if header.quantized {
        let data: Vec<i8> = bytes[header.section(SEC_QDATA_I8).offset as usize..]
            [..header.section(SEC_QDATA_I8).len as usize]
            .iter()
            .map(|&b| b as i8)
            .collect();
        let scales = read_f32s_le(bytes, header.section(SEC_SCALES_F32));
        let errs = read_f32s_le(bytes, header.section(SEC_ROWERR_F32));
        let ids = read_u32s_le(bytes, header.section(SEC_EXACT_IDS_U32));
        let exact_rows = read_f32s_le(bytes, header.section(SEC_EXACT_ROWS_F32));
        let table =
            QuantTable::from_parts(header.row_len(), header.block as usize, data, scales, errs)
                .map_err(corrupt)?;
        ServiceSnapshot::from_quantized_parts(dim, k, table, ids, exact_rows).map_err(corrupt)?
    } else {
        let rows = read_f32s_le(bytes, header.section(SEC_DENSE_F32));
        ServiceSnapshot::from_parts(dim, k, rows)
    };
    Ok(snap.with_shard_and_fallback(header.shard, fallback))
}

// ---------------------------------------------------------------------------
// Mapped open
// ---------------------------------------------------------------------------

fn corrupt_at(path: &Path, e: SerializeError) -> ArtifactError {
    ArtifactError::Corrupt {
        path: path.to_path_buf(),
        what: e.to_string(),
    }
}

/// Open a `PKGMSS3` file for zero-copy serving: map it (heap-buffer
/// fallback where mapping is unavailable), validate the header and small
/// sections, and serve rows by pointer arithmetic into the region. Work
/// done here is O(header + small sections), independent of table size.
///
/// `force_heap` skips the `mmap` syscall (tests exercise the fallback);
/// the `PKGM_NO_MMAP` environment variable does the same globally.
pub fn open_mapped_snapshot(
    path: &Path,
    force_heap: bool,
) -> Result<ServiceSnapshot, ArtifactError> {
    let region = MmapRegion::open(path, force_heap).map_err(|source| ArtifactError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    if cfg!(target_endian = "big") {
        // Zero-copy reinterpretation assumes little-endian storage; decode
        // resident instead so the file still serves correctly.
        return snapshot_from_ss3_bytes(region.bytes()).map_err(|e| corrupt_at(path, e));
    }
    let header = parse_header(region.bytes()).map_err(|e| corrupt_at(path, e))?;
    verify_section_crcs(region.bytes(), &header, Some(SS3_EAGER_CRC_LIMIT))
        .map_err(|e| corrupt_at(path, e))?;
    let fallback = read_f32s_le(region.bytes(), header.section(SEC_FALLBACK_F32));
    let dim = header.dim as usize;
    let k = header.k as usize;
    let row_len = header.row_len();
    let n_rows = header.n_rows as usize;
    let region = Arc::new(region);
    let storage = if header.quantized {
        let m = MappedQuant {
            region: Arc::clone(&region),
            row_len,
            block: header.block as usize,
            n_rows,
            n_exact: header.n_exact as usize,
            data_off: header.section(SEC_QDATA_I8).offset as usize,
            scales_off: header.section(SEC_SCALES_F32).offset as usize,
            errs_off: header.section(SEC_ROWERR_F32).offset as usize,
            ids_off: header.section(SEC_EXACT_IDS_U32).offset as usize,
            exact_off: header.section(SEC_EXACT_ROWS_F32).offset as usize,
        };
        // Escape-id ordering is what makes binary_search sound; it is
        // cheap to check (≤ n_exact reads) and not covered by the lazy
        // CRC policy for large files.
        let ids = m.exact_ids();
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt_at(
                path,
                corrupt("exact-row ids are not strictly increasing"),
            ));
        }
        if let Some(&last) = ids.last() {
            if last as usize >= n_rows {
                return Err(corrupt_at(
                    path,
                    corrupt(format!("exact-row id {last} beyond the {n_rows}-row shard")),
                ));
            }
        }
        Storage::MappedQuantized(m)
    } else {
        Storage::MappedDense(MappedDense {
            region: Arc::clone(&region),
            table_off: header.section(SEC_DENSE_F32).offset as usize,
            n_rows,
            row_len,
        })
    };
    Ok(ServiceSnapshot::from_storage(
        dim,
        k,
        storage,
        fallback,
        header.shard,
    ))
}

// ---------------------------------------------------------------------------
// Streaming dense writer
// ---------------------------------------------------------------------------

/// Streams a dense `PKGMSS3` shard to disk row-by-row without holding the
/// table in memory: rows are written (and CRC'd, and mean-accumulated)
/// as they arrive, the fallback + header land in [`Ss3DenseWriter::finish`],
/// and the file is published with the same temp + fsync + rename dance as
/// every other artifact. The bytes produced are identical to
/// [`snapshot_to_ss3_bytes`] on the same rows.
pub struct Ss3DenseWriter {
    file: Option<File>,
    tmp: PathBuf,
    dest: PathBuf,
    dim: u32,
    k: u32,
    shard: ShardSpec,
    n_rows: u64,
    rows_written: u64,
    row_len: usize,
    /// Pre-finalized CRC state of the dense section.
    crc_state: u32,
    /// Running column sums for the fallback (same accumulation order as
    /// `snapshot::mean_row`, so the stored fallback is bit-identical to a
    /// resident build over the same rows).
    mean: Vec<f32>,
    finished: bool,
}

impl Ss3DenseWriter {
    /// Start a dense shard of exactly `n_rows` rows (must be > 0) covering
    /// global ids `[shard.row_start, shard.row_start + n_rows)`.
    pub fn create(
        dest: &Path,
        dim: usize,
        k: usize,
        n_rows: u64,
        shard: ShardSpec,
    ) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        if n_rows == 0 {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "refusing to write a zero-row PKGMSS3 shard",
            ));
        }
        if shard.n_shards == 0 || shard.shard_id >= shard.n_shards {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "invalid shard spec: shard {} of {}",
                    shard.shard_id, shard.n_shards
                ),
            ));
        }
        if shard
            .row_start
            .checked_add(n_rows)
            .is_none_or(|e| e > u64::from(u32::MAX) + 1)
        {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "shard row range exceeds the u32 id space",
            ));
        }
        if let Some(parent) = dest.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file_name = dest
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| Error::new(ErrorKind::InvalidInput, "destination has no file name"))?;
        let tmp = dest.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
        let mut file = File::create(&tmp)?;
        // Sections start at the first page boundary; the header is written
        // in finish() once every section CRC is known. The gap stays zero
        // (file holes read back as zeros), matching the one-shot writer's
        // explicit zero padding.
        file.seek(SeekFrom::Start(PAGE))?;
        Ok(Self {
            file: Some(file),
            tmp,
            dest: dest.to_path_buf(),
            dim: dim as u32,
            k: k as u32,
            shard,
            n_rows,
            rows_written: 0,
            row_len: 2 * dim,
            crc_state: !0u32,
            mean: vec![0.0f32; 2 * dim],
            finished: false,
        })
    }

    /// Append whole rows (`rows.len()` must be a multiple of `2·dim`).
    pub fn write_rows(&mut self, rows: &[f32]) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        if !rows.len().is_multiple_of(self.row_len) {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "rows must be whole multiples of 2*dim floats",
            ));
        }
        let n = (rows.len() / self.row_len) as u64;
        if self.rows_written + n > self.n_rows {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!("shard declared {} rows, writing more", self.n_rows),
            ));
        }
        let mut bytes = Vec::with_capacity(rows.len() * 4);
        push_f32s_le(&mut bytes, rows);
        self.file
            .as_mut()
            .expect("writer not finished")
            .write_all(&bytes)?;
        self.crc_state = crc32_update(self.crc_state, &bytes);
        for row in rows.chunks_exact(self.row_len) {
            for (m, &x) in self.mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        self.rows_written += n;
        Ok(())
    }

    /// Write the fallback section and header, fsync, and atomically rename
    /// into place. Errors if fewer rows than declared were written.
    pub fn finish(mut self) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        if self.rows_written != self.n_rows {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "shard declared {} rows, only {} written",
                    self.n_rows, self.rows_written
                ),
            ));
        }
        let mut file = self.file.take().expect("writer not finished");
        let dense_len = self.n_rows * self.row_len as u64 * 4;
        let fb_off = align_page(PAGE + dense_len);
        let mut fallback = std::mem::take(&mut self.mean);
        for m in &mut fallback {
            *m /= self.n_rows as f32;
        }
        let mut fb_bytes = Vec::with_capacity(fallback.len() * 4);
        push_f32s_le(&mut fb_bytes, &fallback);
        file.seek(SeekFrom::Start(fb_off))?;
        file.write_all(&fb_bytes)?;
        let header = Header {
            quantized: false,
            dim: self.dim,
            k: self.k,
            n_rows: self.n_rows,
            shard: self.shard,
            block: 0,
            n_exact: 0,
            sections: vec![
                Section {
                    kind: SEC_DENSE_F32,
                    crc: !self.crc_state,
                    offset: PAGE,
                    len: dense_len,
                },
                Section {
                    kind: SEC_FALLBACK_F32,
                    crc: crc32(&fb_bytes),
                    offset: fb_off,
                    len: fb_bytes.len() as u64,
                },
            ],
        };
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.dest)?;
        self.finished = true;
        // Best-effort directory fsync so the rename itself is durable.
        if let Some(parent) = self.dest.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

impl Drop for Ss3DenseWriter {
    fn drop(&mut self) {
        if !self.finished {
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Streams a **quantized** `PKGMSS3` shard to disk without ever holding
/// the dense f32 table: each incoming row is blockwise-int8 quantized with
/// the exact per-row loop of [`QuantTable::quantize_table`] and its i8
/// payload appended to the file immediately. Only per-row metadata stays
/// resident (one error f32 and `ceil(2d/block)` scale f32s per row — a few
/// percent of the dense bytes).
///
/// [`Ss3QuantWriter::finish`] then replays
/// [`ServiceSnapshot::quantize`]'s escape selection over the buffered
/// errors (median threshold, worst-first cap), pulls the escapes' verbatim
/// f32 rows back from the caller, and recomputes the fallback by
/// re-reading the quantized payload in one sequential pass — the same
/// ascending served-row accumulation as the resident build. The resulting
/// file is **byte-identical** to `snapshot_to_ss3_bytes` of
/// `shard.quantize()` on the same rows, so int8 shards still map zero-copy
/// through [`open_mapped_snapshot`].
pub struct Ss3QuantWriter {
    file: Option<File>,
    tmp: PathBuf,
    dest: PathBuf,
    dim: u32,
    k: u32,
    shard: ShardSpec,
    n_rows: u64,
    rows_written: u64,
    row_len: usize,
    block: usize,
    /// Pre-finalized CRC state of the QDATA section.
    crc_state: u32,
    /// Per-block scales, `n_blocks(row_len, block)` per row.
    scales: Vec<f32>,
    /// Per-row measured error (inflated), the escape-selection input.
    row_errs: Vec<f32>,
    finished: bool,
}

impl Ss3QuantWriter {
    /// Start a quantized shard of exactly `n_rows` rows (must be > 0)
    /// covering global ids `[shard.row_start, shard.row_start + n_rows)`.
    pub fn create(
        dest: &Path,
        dim: usize,
        k: usize,
        n_rows: u64,
        shard: ShardSpec,
    ) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        if n_rows == 0 {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "refusing to write a zero-row PKGMSS3 shard",
            ));
        }
        if shard.n_shards == 0 || shard.shard_id >= shard.n_shards {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "invalid shard spec: shard {} of {}",
                    shard.shard_id, shard.n_shards
                ),
            ));
        }
        if shard
            .row_start
            .checked_add(n_rows)
            .is_none_or(|e| e > u64::from(u32::MAX) + 1)
        {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "shard row range exceeds the u32 id space",
            ));
        }
        if let Some(parent) = dest.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file_name = dest
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| Error::new(ErrorKind::InvalidInput, "destination has no file name"))?;
        let tmp = dest.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
        // Read + write: finish() re-reads the streamed QDATA payload to
        // rebuild the served-row mean without the dense table.
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.seek(SeekFrom::Start(PAGE))?;
        let row_len = 2 * dim;
        let block = crate::quant::QUANT_BLOCK.min(row_len);
        let nb = row_len.div_ceil(block);
        Ok(Self {
            file: Some(file),
            tmp,
            dest: dest.to_path_buf(),
            dim: dim as u32,
            k: k as u32,
            shard,
            n_rows,
            rows_written: 0,
            row_len,
            block,
            crc_state: !0u32,
            scales: Vec::with_capacity((n_rows as usize).saturating_mul(nb)),
            row_errs: Vec::with_capacity(n_rows as usize),
            finished: false,
        })
    }

    /// Quantize and append whole rows (`rows.len()` must be a multiple of
    /// `2·dim`), using the exact arithmetic of
    /// [`QuantTable::quantize_table`] so the streamed payload is
    /// bit-identical to a one-shot quantization of the same table.
    pub fn write_rows(&mut self, rows: &[f32]) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        if !rows.len().is_multiple_of(self.row_len) {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                "rows must be whole multiples of 2*dim floats",
            ));
        }
        let n = (rows.len() / self.row_len) as u64;
        if self.rows_written + n > self.n_rows {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!("shard declared {} rows, writing more", self.n_rows),
            ));
        }
        let mut bytes = Vec::with_capacity(rows.len());
        for row in rows.chunks_exact(self.row_len) {
            let mut err = 0.0f32;
            for chunk in row.chunks(self.block) {
                let amax = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                let (scale, inv) = if amax > 0.0 {
                    (amax / 127.0, 127.0 / amax)
                } else {
                    (0.0, 0.0)
                };
                self.scales.push(scale);
                for &x in chunk {
                    let q = (x * inv).round().clamp(-127.0, 127.0) as i8;
                    bytes.push(q as u8);
                    err = err.max((x - q as f32 * scale).abs());
                }
            }
            self.row_errs.push(err * quant::ERR_INFLATE);
        }
        self.file
            .as_mut()
            .expect("writer not finished")
            .write_all(&bytes)?;
        self.crc_state = crc32_update(self.crc_state, &bytes);
        self.rows_written += n;
        Ok(())
    }

    /// Select escape rows, fetch their verbatim f32 rows from `exact_row`
    /// (called with ascending shard-local row ids), rebuild the served-row
    /// fallback in one sequential re-read of the quantized payload, then
    /// write the metadata sections + header, fsync and atomically rename.
    pub fn finish(mut self, mut exact_row: impl FnMut(u64, &mut [f32])) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind, Read};
        if self.rows_written != self.n_rows {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "shard declared {} rows, only {} written",
                    self.n_rows, self.rows_written
                ),
            ));
        }
        let mut file = self.file.take().expect("writer not finished");
        let n_rows = self.n_rows as usize;
        let row_len = self.row_len;
        let nb = row_len.div_ceil(self.block);

        // Escape selection — the exact algorithm of
        // ServiceSnapshot::quantize: median threshold, worst offenders
        // first (ties by id), capped, stored ascending.
        let errs = &self.row_errs;
        let mut sorted = errs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite quant errors"));
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        let mut escapes: Vec<u32> = (0..n_rows as u32)
            .filter(|&i| errs[i as usize] > crate::snapshot::EXACT_ERR_FACTOR * median)
            .collect();
        escapes.sort_by(|&a, &b| {
            errs[b as usize]
                .partial_cmp(&errs[a as usize])
                .expect("finite quant errors")
                .then(a.cmp(&b))
        });
        escapes.truncate(n_rows / crate::snapshot::EXACT_ROW_DIVISOR);
        escapes.sort_unstable();
        let mut exact_rows = vec![0.0f32; escapes.len() * row_len];
        for (e, &id) in escapes.iter().enumerate() {
            exact_row(id as u64, &mut exact_rows[e * row_len..(e + 1) * row_len]);
        }

        // Fallback: the same ascending accumulation over *served* rows as
        // snapshot::mean_served_row, re-reading the quantized payload
        // sequentially instead of holding the dense table.
        let mut mean = vec![0.0f32; row_len];
        let mut row = vec![0.0f32; row_len];
        let mut qrow_u8 = vec![0u8; row_len];
        let mut qrow = vec![0i8; row_len];
        file.seek(SeekFrom::Start(PAGE))?;
        {
            let mut reader = std::io::BufReader::with_capacity(1 << 20, &mut file);
            let mut next_escape = 0usize;
            for id in 0..n_rows {
                reader.read_exact(&mut qrow_u8)?;
                let served: &[f32] =
                    if next_escape < escapes.len() && escapes[next_escape] as usize == id {
                        let s = &exact_rows[next_escape * row_len..(next_escape + 1) * row_len];
                        next_escape += 1;
                        s
                    } else {
                        for (q, &b) in qrow.iter_mut().zip(&qrow_u8) {
                            *q = b as i8;
                        }
                        quant::dequantize_row_into(
                            &qrow,
                            &self.scales[id * nb..(id + 1) * nb],
                            row_len,
                            self.block,
                            0,
                            &mut row,
                        );
                        &row
                    };
                for (m, &x) in mean.iter_mut().zip(served) {
                    *m += x;
                }
            }
        }
        for m in &mut mean {
            *m /= n_rows as f32;
        }

        // Metadata sections, laid out exactly like the one-shot writer.
        let mut scales_b = Vec::with_capacity(self.scales.len() * 4);
        push_f32s_le(&mut scales_b, &self.scales);
        let mut errs_b = Vec::with_capacity(self.row_errs.len() * 4);
        push_f32s_le(&mut errs_b, &self.row_errs);
        let mut ids_b = Vec::with_capacity(escapes.len() * 4);
        push_u32s_le(&mut ids_b, &escapes);
        let mut exact_b = Vec::with_capacity(exact_rows.len() * 4);
        push_f32s_le(&mut exact_b, &exact_rows);
        let mut fb_b = Vec::with_capacity(mean.len() * 4);
        push_f32s_le(&mut fb_b, &mean);

        let qdata_len = self.n_rows * row_len as u64;
        let mut sections = vec![Section {
            kind: SEC_QDATA_I8,
            crc: !self.crc_state,
            offset: PAGE,
            len: qdata_len,
        }];
        let mut offset = align_page(PAGE + qdata_len);
        for (kind, body) in [
            (SEC_SCALES_F32, &scales_b),
            (SEC_ROWERR_F32, &errs_b),
            (SEC_EXACT_IDS_U32, &ids_b),
            (SEC_EXACT_ROWS_F32, &exact_b),
            (SEC_FALLBACK_F32, &fb_b),
        ] {
            sections.push(Section {
                kind,
                crc: crc32(body),
                offset,
                len: body.len() as u64,
            });
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(body)?;
            offset = align_page(offset + body.len() as u64);
        }
        // Match the one-shot byte length exactly: no padding after the
        // final section.
        let last = sections.last().expect("six sections");
        file.set_len(last.offset + last.len)?;

        let header = Header {
            quantized: true,
            dim: self.dim,
            k: self.k,
            n_rows: self.n_rows,
            shard: self.shard,
            block: self.block as u32,
            n_exact: escapes.len() as u64,
            sections,
        };
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.dest)?;
        self.finished = true;
        if let Some(parent) = self.dest.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

impl Drop for Ss3QuantWriter {
    fn drop(&mut self) {
        if !self.finished {
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Split `n_rows` global rows into `n_shards` contiguous ranges (first
/// shards one row longer when it does not divide evenly). Returns each
/// shard's [`ShardSpec`] plus its row count.
pub fn shard_ranges(n_rows: u64, n_shards: u32) -> Vec<(ShardSpec, u64)> {
    assert!(n_shards > 0, "need at least one shard");
    let n = u64::from(n_shards);
    let base = n_rows / n;
    let extra = n_rows % n;
    let mut out = Vec::with_capacity(n_shards as usize);
    let mut start = 0u64;
    for s in 0..n_shards {
        let len = base + u64::from(u64::from(s) < extra);
        out.push((
            ShardSpec {
                n_shards,
                shard_id: s,
                row_start: start,
            },
            len,
        ));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use crate::service::KnowledgeService;
    use pkgm_store::{EntityId, KeyRelationSelector, StoreBuilder};

    fn service_n(n: u32) -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..n {
            b.add_raw(i, 0, n + i % 3);
            b.add_raw(i, 1, n + 3);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..n).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 2, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(3),
        );
        KnowledgeService::new(model, sel)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pkgm-ss3-{}-{name}", std::process::id()))
    }

    #[test]
    fn dense_roundtrip_resident_and_mapped() {
        let snap = ServiceSnapshot::build(&service_n(40));
        let bytes = snapshot_to_ss3_bytes(&snap).unwrap();
        let back = crate::serialize::snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.backing(), crate::snapshot::SnapshotBacking::Resident);

        let path = temp_path("dense-rt");
        std::fs::write(&path, &bytes).unwrap();
        for force_heap in [false, true] {
            let mapped = open_mapped_snapshot(&path, force_heap).unwrap();
            assert_eq!(mapped.backing(), crate::snapshot::SnapshotBacking::Mapped);
            assert_eq!(mapped, snap);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for i in 0..snap.n_rows() as u32 + 3 {
                let ra = snap.lookup_exact(EntityId(i), &mut a);
                let rb = mapped.lookup_exact(EntityId(i), &mut b);
                assert_eq!(ra, rb, "id {i}");
                assert_eq!(a, b, "id {i} rows must be bit-identical");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_roundtrip_resident_and_mapped() {
        let snap = ServiceSnapshot::build(&service_n(200)).quantize();
        let bytes = snapshot_to_ss3_bytes(&snap).unwrap();
        let back = crate::serialize::snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);

        let path = temp_path("quant-rt");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = open_mapped_snapshot(&path, true).unwrap();
        assert!(mapped.is_quantized());
        assert_eq!(mapped, snap);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..snap.n_rows() as u32 + 3 {
            assert_eq!(
                snap.lookup_exact(EntityId(i), &mut a),
                mapped.lookup_exact(EntityId(i), &mut b)
            );
            assert_eq!(a, b, "id {i} rows must be bit-identical");
        }
        // Round-trip a mapped snapshot back to bytes: identical file.
        assert_eq!(snapshot_to_ss3_bytes(&mapped).unwrap(), bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_shard_roundtrip_serves_identical_condensed_rows() {
        // The CLI's `snapshot --format ss3 --shards N --quantize true` flow:
        // slice the dense table, quantize the slice, write, open mapped.
        let snap = ServiceSnapshot::build(&service_n(200));
        let ranges = shard_ranges(snap.n_rows() as u64, 2);
        let (spec, len) = ranges[1];
        let shard = snap.shard_slice(spec, len).unwrap().quantize();
        let bytes = snapshot_to_ss3_bytes(&shard).unwrap();
        let path = temp_path("quant-shard");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = open_mapped_snapshot(&path, true).unwrap();
        assert_eq!(mapped, shard);
        for gid in spec.row_start..spec.row_start + len {
            let want = shard.condensed(EntityId(gid as u32)).expect("in range");
            let got = mapped.condensed(EntityId(gid as u32)).expect("in range");
            let wb: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
            let gb: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(wb, gb, "id {gid} differs between backings");
            // Item rows carry signal; the trailing value entities (ids
            // ≥ 200 in service_n(200)) legitimately condense to zero.
            assert!(
                gid >= 200 || want.iter().any(|&x| x != 0.0),
                "id {gid}: quantized item row must not be all zeros"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_writer_matches_one_shot_bytes() {
        let snap = ServiceSnapshot::build(&service_n(33));
        let expect = snapshot_to_ss3_bytes(&snap).unwrap();
        let table = snap.dense_table().unwrap();
        let row_len = 2 * snap.dim();
        let path = temp_path("stream");
        let mut w = Ss3DenseWriter::create(
            &path,
            snap.dim(),
            snap.k(),
            snap.n_rows() as u64,
            ShardSpec::default(),
        )
        .unwrap();
        // Deliberately ragged chunk sizes.
        let mut off = 0;
        for chunk in [5usize, 1, 20, 7].iter().cycle() {
            if off == snap.n_rows() {
                break;
            }
            let n = (*chunk).min(snap.n_rows() - off);
            w.write_rows(&table[off * row_len..(off + n) * row_len])
                .unwrap();
            off += n;
        }
        w.finish().unwrap();
        let got = std::fs::read(&path).unwrap();
        assert_eq!(got, expect, "streamed bytes must equal one-shot bytes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_quant_writer_matches_one_shot_bytes() {
        // Sharded so escape ids / row_start handling is exercised too.
        let snap = ServiceSnapshot::build(&service_n(90));
        let table = snap.dense_table().unwrap().to_vec();
        let row_len = 2 * snap.dim();
        for (spec, len) in shard_ranges(snap.n_rows() as u64, 3) {
            let shard = snap.shard_slice(spec, len).unwrap();
            let expect = snapshot_to_ss3_bytes(&shard.quantize()).unwrap();
            let shard_rows = &table[spec.row_start as usize * row_len..][..len as usize * row_len];
            let path = temp_path(&format!("qstream{}", spec.shard_id));
            let mut w = Ss3QuantWriter::create(&path, snap.dim(), snap.k(), len, spec).unwrap();
            let mut off = 0usize;
            for chunk in [3usize, 11, 1, 8].iter().cycle() {
                if off == len as usize {
                    break;
                }
                let n = (*chunk).min(len as usize - off);
                w.write_rows(&shard_rows[off * row_len..(off + n) * row_len])
                    .unwrap();
                off += n;
            }
            w.finish(|id, out| {
                out.copy_from_slice(&shard_rows[id as usize * row_len..][..row_len]);
            })
            .unwrap();
            let got = std::fs::read(&path).unwrap();
            assert_eq!(
                got, expect,
                "streamed quantized shard {} must equal one-shot bytes",
                spec.shard_id
            );
            // And the streamed file still maps zero-copy.
            let mapped = open_mapped_snapshot(&path, false).unwrap();
            assert_eq!(mapped, shard.quantize());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn sharded_lookups_translate_global_ids() {
        let snap = ServiceSnapshot::build(&service_n(40));
        let table = snap.dense_table().unwrap().to_vec();
        let row_len = 2 * snap.dim();
        let ranges = shard_ranges(snap.n_rows() as u64, 3);
        assert_eq!(
            ranges.iter().map(|(_, n)| n).sum::<u64>(),
            snap.n_rows() as u64
        );
        let mut expect = Vec::new();
        let mut got = Vec::new();
        for (spec, len) in ranges {
            let path = temp_path(&format!("shard-{}", spec.shard_id));
            let mut w = Ss3DenseWriter::create(&path, snap.dim(), snap.k(), len, spec).unwrap();
            let s = spec.row_start as usize;
            w.write_rows(&table[s * row_len..(s + len as usize) * row_len])
                .unwrap();
            w.finish().unwrap();
            let shard = open_mapped_snapshot(&path, true).unwrap();
            assert_eq!(shard.shard(), spec);
            assert_eq!(shard.n_rows(), len as usize);
            // Global ids inside the range serve the same bits as the
            // whole-table snapshot; outside, the shard's own fallback.
            for id in 0..snap.n_rows() as u32 {
                let inside = shard.covers(id);
                assert_eq!(
                    inside,
                    (id as u64) >= spec.row_start && (id as u64) < spec.row_start + len
                );
                if inside {
                    assert!(shard.lookup_exact(EntityId(id), &mut got));
                    snap.lookup_exact(EntityId(id), &mut expect);
                    assert_eq!(got, expect, "global id {id}");
                } else {
                    assert!(!shard.lookup_exact(EntityId(id), &mut got));
                    assert_eq!(got.as_slice(), shard.fallback_row());
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn zero_row_snapshots_are_rejected() {
        let snap = ServiceSnapshot::from_parts(4, 2, Vec::new());
        assert!(snapshot_to_ss3_bytes(&snap).is_err());
        assert!(Ss3DenseWriter::create(&temp_path("zero"), 4, 2, 0, ShardSpec::default()).is_err());
    }

    #[test]
    fn writer_enforces_declared_row_count() {
        let path = temp_path("short");
        let mut w = Ss3DenseWriter::create(&path, 2, 1, 3, ShardSpec::default()).unwrap();
        w.write_rows(&[0.0; 8]).unwrap(); // 2 of 3 rows
        assert!(w.finish().is_err());
        assert!(!path.exists(), "unfinished shard must not be published");
        let mut w = Ss3DenseWriter::create(&path, 2, 1, 1, ShardSpec::default()).unwrap();
        assert!(w.write_rows(&[0.0; 8]).is_err(), "too many rows");
        std::fs::remove_file(&path).ok();
    }
}

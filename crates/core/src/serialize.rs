//! Compact binary snapshots of trained models and services.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "PKGMMD1\0"      8 bytes
//! dim                    u32
//! flags                  u32   (bit 0: relation module)
//! n_entities             u64
//! n_relations            u64
//! ent                    n_entities × dim × f32
//! rel                    n_relations × dim × f32
//! mats                   n_relations × dim² × f32  (iff relation module)
//! ```
//!
//! A [`KnowledgeService`] snapshot appends the selector as a length-prefixed
//! JSON blob (the selector is tiny compared to the parameters).

use crate::artifact::{self, ArtifactError, ArtifactIo, ArtifactKind, StdIo};
use crate::model::{PkgmConfig, PkgmModel};
use crate::quant::QuantTable;
use crate::service::KnowledgeService;
use crate::snapshot::ServiceSnapshot;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pkgm_store::KeyRelationSelector;
use std::path::Path;

const MAGIC: &[u8; 8] = b"PKGMMD1\0";
const SNAPSHOT_MAGIC: &[u8; 8] = b"PKGMSS1\0";
const QUANT_SNAPSHOT_MAGIC: &[u8; 8] = b"PKGMSS2\0";

/// Sanity ceiling on a stored quantization block size: blocks are
/// [`crate::quant::QUANT_BLOCK`]-sized today, and anything huge in this
/// field means corrupt bytes, not a future format.
const MAX_QUANT_BLOCK: usize = 4096;

/// Serialization errors.
#[derive(Debug)]
pub enum SerializeError {
    /// Payload malformed or truncated.
    Corrupt(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Corrupt(what) => write!(f, "corrupt model snapshot: {what}"),
        }
    }
}

impl std::error::Error for SerializeError {}

/// Serialize a model.
pub fn model_to_bytes(model: &PkgmModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + model.param_bytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(model.dim() as u32);
    buf.put_u32_le(if model.cfg.relation_module { 1 } else { 0 });
    buf.put_u64_le(model.n_entities() as u64);
    buf.put_u64_le(model.n_relations() as u64);
    for &x in &model.ent {
        buf.put_f32_le(x);
    }
    for &x in &model.rel {
        buf.put_f32_le(x);
    }
    for &x in &model.mats {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserialize a model. Consumes exactly the model's bytes from the front of
/// `bytes` and returns the remainder offset.
pub fn model_from_bytes(bytes: &[u8]) -> Result<(PkgmModel, usize), SerializeError> {
    let mut b = bytes;
    if b.len() < 32 || &b[..8] != MAGIC {
        return Err(SerializeError::Corrupt(
            "bad magic or truncated header".into(),
        ));
    }
    b.advance(8);
    let dim = b.get_u32_le() as usize;
    let flags = b.get_u32_le();
    let relation_module = flags & 1 != 0;
    let n_entities = b.get_u64_le() as usize;
    let n_relations = b.get_u64_le() as usize;
    // Checked arithmetic throughout: a short buffer with huge declared counts
    // must be rejected here, not overflow the size computation and slice (or
    // allocate) out of range below.
    let n_floats = n_entities
        .checked_mul(dim)
        .and_then(|ent| n_relations.checked_mul(dim).map(|rel| (ent, rel)))
        .and_then(|(ent, rel)| {
            let mat = if relation_module {
                n_relations.checked_mul(dim)?.checked_mul(dim)?
            } else {
                0
            };
            ent.checked_add(rel)?.checked_add(mat)
        });
    let n_bytes = n_floats.and_then(|n| n.checked_mul(4));
    let Some(n_bytes) = n_bytes else {
        return Err(SerializeError::Corrupt(
            "declared entity/relation counts overflow".into(),
        ));
    };
    if b.remaining() < n_bytes {
        return Err(SerializeError::Corrupt(format!(
            "expected {} parameter bytes, found {}",
            n_bytes,
            b.remaining()
        )));
    }
    let mut read_block = |n: usize| -> Vec<f32> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(b.get_f32_le());
        }
        v
    };
    let ent = read_block(n_entities * dim);
    let rel = read_block(n_relations * dim);
    let mats = if relation_module {
        read_block(n_relations * dim * dim)
    } else {
        Vec::new()
    };
    let consumed = bytes.len() - b.remaining();
    let cfg = PkgmConfig {
        dim,
        relation_module,
        ..PkgmConfig::new(dim)
    };
    Ok((
        PkgmModel {
            cfg,
            n_entities,
            n_relations,
            ent,
            rel,
            mats,
        },
        consumed,
    ))
}

/// Serialize a knowledge service (model + selector).
pub fn service_to_bytes(service: &KnowledgeService) -> Bytes {
    let model_bytes = model_to_bytes(service.model());
    let selector_json = serde_json::to_vec(service.selector()).expect("selector serializes");
    let mut buf = BytesMut::with_capacity(model_bytes.len() + selector_json.len() + 8);
    buf.put_slice(&model_bytes);
    buf.put_u64_le(selector_json.len() as u64);
    buf.put_slice(&selector_json);
    buf.freeze()
}

/// Deserialize a knowledge service.
pub fn service_from_bytes(bytes: &[u8]) -> Result<KnowledgeService, SerializeError> {
    let (model, consumed) = model_from_bytes(bytes)?;
    let mut rest = &bytes[consumed..];
    if rest.len() < 8 {
        return Err(SerializeError::Corrupt("missing selector length".into()));
    }
    let len = rest.get_u64_le() as usize;
    if rest.remaining() < len {
        return Err(SerializeError::Corrupt("truncated selector blob".into()));
    }
    let selector: KeyRelationSelector = serde_json::from_slice(&rest[..len])
        .map_err(|e| SerializeError::Corrupt(format!("selector json: {e}")))?;
    // Typed error, not the constructor's assert: corrupt bytes must never
    // panic a loader.
    if !model.cfg.relation_module {
        return Err(SerializeError::Corrupt(
            "serialized service lacks the relation module".into(),
        ));
    }
    Ok(KnowledgeService::new(model, selector))
}

/// Serialize a precomputed serving snapshot.
///
/// Dense snapshots keep the legacy `PKGMSS1` layout (little-endian):
/// magic, `dim` u32, `k` u32, `n_rows` u64, then `n_rows × 2·dim` f32
/// rows. Quantized snapshots use `PKGMSS2`: magic, `dim` u32, `k` u32,
/// `n_rows` u64, `block` u32, `n_exact` u64, then the int8 payload
/// (`n_rows × 2·dim`), per-(row, block) scales
/// (`n_rows × ⌈2·dim/block⌉` f32), per-row errors (`n_rows` f32), sorted
/// escape ids (`n_exact` u32) and verbatim escape rows
/// (`n_exact × 2·dim` f32).
pub fn snapshot_to_bytes(snapshot: &ServiceSnapshot) -> Bytes {
    if let Some(q) = snapshot.quant_slices() {
        let mut buf = BytesMut::with_capacity(36 + snapshot.storage_bytes());
        buf.put_slice(QUANT_SNAPSHOT_MAGIC);
        buf.put_u32_le(snapshot.dim() as u32);
        buf.put_u32_le(snapshot.k() as u32);
        buf.put_u64_le(snapshot.n_rows() as u64);
        buf.put_u32_le(q.block as u32);
        buf.put_u64_le(q.exact_ids.len() as u64);
        for &v in q.data {
            buf.put_u8(v as u8);
        }
        for &s in q.scales {
            buf.put_f32_le(s);
        }
        for &e in q.row_errs {
            buf.put_f32_le(e);
        }
        for &id in q.exact_ids {
            buf.put_u32_le(id);
        }
        for &x in q.exact_rows {
            buf.put_f32_le(x);
        }
        return buf.freeze();
    }
    let table = snapshot
        .dense_table()
        .expect("non-quantized snapshot is dense");
    let mut buf = BytesMut::with_capacity(24 + table.len() * 4);
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u32_le(snapshot.dim() as u32);
    buf.put_u32_le(snapshot.k() as u32);
    buf.put_u64_le(snapshot.n_rows() as u64);
    for &x in table {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserialize a serving snapshot — the dense legacy `PKGMSS1` payload,
/// the quantized `PKGMSS2` form, or a fully-verified resident decode of
/// the mmap-oriented `PKGMSS3` layout.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<ServiceSnapshot, SerializeError> {
    if bytes.len() >= 8 && &bytes[..8] == QUANT_SNAPSHOT_MAGIC {
        return quant_snapshot_from_bytes(bytes);
    }
    if bytes.len() >= 8 && &bytes[..8] == crate::snapshot3::SS3_MAGIC {
        return crate::snapshot3::snapshot_from_ss3_bytes(bytes);
    }
    let mut b = bytes;
    if b.len() < 24 || &b[..8] != SNAPSHOT_MAGIC {
        return Err(SerializeError::Corrupt(
            "bad snapshot magic or truncated header".into(),
        ));
    }
    b.advance(8);
    let dim = b.get_u32_le() as usize;
    let k = b.get_u32_le() as usize;
    let n_rows = b.get_u64_le() as usize;
    if dim == 0 {
        return Err(SerializeError::Corrupt(
            "snapshot dim must be positive".into(),
        ));
    }
    // Checked: a huge declared row count must not overflow into a small
    // byte expectation that a short buffer satisfies.
    let n_bytes = n_rows.checked_mul(2 * dim).and_then(|n| n.checked_mul(4));
    let Some(n_bytes) = n_bytes else {
        return Err(SerializeError::Corrupt(
            "declared snapshot row count overflows".into(),
        ));
    };
    let n_floats = n_bytes / 4;
    if b.remaining() != n_bytes {
        return Err(SerializeError::Corrupt(format!(
            "expected {} snapshot table bytes, found {}",
            n_bytes,
            b.remaining()
        )));
    }
    let mut rows = Vec::with_capacity(n_floats);
    for _ in 0..n_floats {
        rows.push(b.get_f32_le());
    }
    Ok(ServiceSnapshot::from_parts(dim, k, rows))
}

/// Decode the quantized `PKGMSS2` payload. Every declared count goes
/// through checked arithmetic, the total byte length must match exactly,
/// and value-level invariants (finite nonnegative scales and errors,
/// sorted in-range escape ids) are verified — a flipped scale byte is a
/// typed `Corrupt` error, never a panic or a silently wrong table.
fn quant_snapshot_from_bytes(bytes: &[u8]) -> Result<ServiceSnapshot, SerializeError> {
    let mut b = bytes;
    if b.len() < 36 {
        return Err(SerializeError::Corrupt(
            "truncated quantized snapshot header".into(),
        ));
    }
    b.advance(8);
    let dim = b.get_u32_le() as usize;
    let k = b.get_u32_le() as usize;
    let n_rows = b.get_u64_le() as usize;
    let block = b.get_u32_le() as usize;
    let n_exact = b.get_u64_le() as usize;
    if dim == 0 {
        return Err(SerializeError::Corrupt(
            "snapshot dim must be positive".into(),
        ));
    }
    let row_len = dim
        .checked_mul(2)
        .ok_or_else(|| SerializeError::Corrupt("snapshot dim overflows".into()))?;
    if block == 0 || block > row_len || block > MAX_QUANT_BLOCK {
        return Err(SerializeError::Corrupt(format!(
            "implausible quantization block size {block} for {row_len}-long rows"
        )));
    }
    let n_blocks = row_len.div_ceil(block);
    // Checked section sizes: huge declared counts must fail the length
    // check, not overflow into a small expectation a short buffer meets.
    let n_bytes = (|| {
        let data = n_rows.checked_mul(row_len)?;
        let scales = n_rows.checked_mul(n_blocks)?.checked_mul(4)?;
        let errs = n_rows.checked_mul(4)?;
        let ids = n_exact.checked_mul(4)?;
        let exact = n_exact.checked_mul(row_len)?.checked_mul(4)?;
        data.checked_add(scales)?
            .checked_add(errs)?
            .checked_add(ids)?
            .checked_add(exact)
    })();
    let Some(n_bytes) = n_bytes else {
        return Err(SerializeError::Corrupt(
            "declared quantized snapshot counts overflow".into(),
        ));
    };
    if b.remaining() != n_bytes {
        return Err(SerializeError::Corrupt(format!(
            "expected {} quantized snapshot bytes, found {}",
            n_bytes,
            b.remaining()
        )));
    }
    let mut data = Vec::with_capacity(n_rows * row_len);
    for _ in 0..n_rows * row_len {
        data.push(b.get_u8() as i8);
    }
    let mut scales = Vec::with_capacity(n_rows * n_blocks);
    for _ in 0..n_rows * n_blocks {
        let s = b.get_f32_le();
        if !s.is_finite() || s < 0.0 {
            return Err(SerializeError::Corrupt(format!(
                "quantization scale {s} is not a finite nonnegative value"
            )));
        }
        scales.push(s);
    }
    let mut row_err = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let e = b.get_f32_le();
        if !e.is_finite() || e < 0.0 {
            return Err(SerializeError::Corrupt(format!(
                "quantization row error {e} is not a finite nonnegative value"
            )));
        }
        row_err.push(e);
    }
    let mut exact_ids = Vec::with_capacity(n_exact);
    for _ in 0..n_exact {
        exact_ids.push(b.get_u32_le());
    }
    let mut exact_rows = Vec::with_capacity(n_exact * row_len);
    for _ in 0..n_exact * row_len {
        exact_rows.push(b.get_f32_le());
    }
    let quant = QuantTable::from_parts(row_len, block, data, scales, row_err)
        .map_err(SerializeError::Corrupt)?;
    ServiceSnapshot::from_quantized_parts(dim, k, quant, exact_ids, exact_rows)
        .map_err(SerializeError::Corrupt)
}

// --- artifact-framed file I/O -----------------------------------------------
//
// The byte-level codecs above are payload formats; on disk every artifact is
// wrapped in the checksummed, versioned container from [`crate::artifact`]
// and written atomically (temp file + fsync + rename). Readers accept the
// pre-container ("legacy") raw payloads too, so files written by older
// builds still load.

fn corrupt(path: &Path, e: SerializeError) -> ArtifactError {
    ArtifactError::Corrupt {
        path: path.to_path_buf(),
        what: e.to_string(),
    }
}

/// Read an artifact file's payload, unwrapping the checksummed container
/// when present and falling back to the raw legacy payload otherwise.
fn read_payload(
    io: &dyn ArtifactIo,
    path: &Path,
    kind: ArtifactKind,
) -> Result<Vec<u8>, ArtifactError> {
    let bytes = io.read(path)?;
    if bytes.starts_with(artifact::ARTIFACT_MAGIC) {
        Ok(artifact::decode(path, kind, &bytes)?.to_vec())
    } else {
        Ok(bytes)
    }
}

/// Atomically write `model` to `path` inside a checksummed artifact frame.
pub fn write_model_file(
    io: &dyn ArtifactIo,
    path: &Path,
    model: &PkgmModel,
) -> Result<(), ArtifactError> {
    artifact::write_artifact(io, path, ArtifactKind::Model, &model_to_bytes(model))
}

/// Load a model artifact, validating checksum and framing; accepts legacy
/// raw `PKGMMD1` files.
pub fn read_model_file(io: &dyn ArtifactIo, path: &Path) -> Result<PkgmModel, ArtifactError> {
    let payload = read_payload(io, path, ArtifactKind::Model)?;
    let (model, consumed) = model_from_bytes(&payload).map_err(|e| corrupt(path, e))?;
    if consumed != payload.len() {
        return Err(ArtifactError::Corrupt {
            path: path.to_path_buf(),
            what: format!("{} trailing bytes after model", payload.len() - consumed),
        });
    }
    Ok(model)
}

/// Atomically write `service` to `path` inside a checksummed artifact frame.
pub fn write_service_file(
    io: &dyn ArtifactIo,
    path: &Path,
    service: &KnowledgeService,
) -> Result<(), ArtifactError> {
    artifact::write_artifact(io, path, ArtifactKind::Service, &service_to_bytes(service))
}

/// Load a service artifact, validating checksum and framing; accepts legacy
/// raw files.
pub fn read_service_file(
    io: &dyn ArtifactIo,
    path: &Path,
) -> Result<KnowledgeService, ArtifactError> {
    let payload = read_payload(io, path, ArtifactKind::Service)?;
    service_from_bytes(&payload).map_err(|e| corrupt(path, e))
}

/// Atomically write `snapshot` to `path` inside a checksummed artifact frame.
pub fn write_snapshot_file(
    io: &dyn ArtifactIo,
    path: &Path,
    snapshot: &ServiceSnapshot,
) -> Result<(), ArtifactError> {
    artifact::write_artifact(
        io,
        path,
        ArtifactKind::Snapshot,
        &snapshot_to_bytes(snapshot),
    )
}

/// Load a serving-snapshot artifact, validating checksum and framing;
/// accepts legacy raw `PKGMSS1` files.
pub fn read_snapshot_file(
    io: &dyn ArtifactIo,
    path: &Path,
) -> Result<ServiceSnapshot, ArtifactError> {
    let payload = read_payload(io, path, ArtifactKind::Snapshot)?;
    snapshot_from_bytes(&payload).map_err(|e| corrupt(path, e))
}

/// Atomically write `snapshot` to `path` as a raw `PKGMSS3` file.
///
/// `PKGMSS3` is deliberately *not* wrapped in the `PKGMAF1` container:
/// the 28-byte container header would shift every section off its page
/// boundary, breaking the zero-copy mapping. The format carries its own
/// header CRC and per-section CRCs instead.
pub fn write_snapshot_ss3_file(
    io: &dyn ArtifactIo,
    path: &Path,
    snapshot: &ServiceSnapshot,
) -> Result<(), ArtifactError> {
    let bytes = crate::snapshot3::snapshot_to_ss3_bytes(snapshot).map_err(|e| corrupt(path, e))?;
    io.write_atomic(path, &bytes)
}

/// Open a snapshot file by magic: `PKGMSS3` files are memory-mapped for
/// zero-copy serving (O(header) startup, [`SnapshotBacking::Mapped`]);
/// everything else goes through the resident [`read_snapshot_file`] path.
///
/// [`SnapshotBacking::Mapped`]: crate::snapshot::SnapshotBacking::Mapped
pub fn open_snapshot_file(path: &Path) -> Result<ServiceSnapshot, ArtifactError> {
    use std::io::Read;
    let mut magic = [0u8; 8];
    let mut file = std::fs::File::open(path).map_err(|source| ArtifactError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let n = file.read(&mut magic).map_err(|source| ArtifactError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    drop(file);
    if n == 8 && &magic == crate::snapshot3::SS3_MAGIC {
        crate::snapshot3::open_mapped_snapshot(path, false)
    } else {
        read_snapshot_file(&StdIo, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgm_store::{EntityId, StoreBuilder};

    fn model() -> PkgmModel {
        PkgmModel::new(6, 2, PkgmConfig::new(4).with_seed(3))
    }

    #[test]
    fn model_roundtrip_is_exact() {
        let m = model();
        let bytes = model_to_bytes(&m);
        let (back, consumed) = model_from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back.ent, m.ent);
        assert_eq!(back.rel, m.rel);
        assert_eq!(back.mats, m.mats);
        assert_eq!(back.dim(), m.dim());
    }

    #[test]
    fn transe_model_roundtrip() {
        let m = PkgmModel::new(6, 2, PkgmConfig::transe(4).with_seed(3));
        let bytes = model_to_bytes(&m);
        let (back, _) = model_from_bytes(&bytes).unwrap();
        assert!(!back.cfg.relation_module);
        assert!(back.mats.is_empty());
        assert_eq!(back.ent, m.ent);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let bytes = model_to_bytes(&model());
        assert!(model_from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(model_from_bytes(&bad).is_err());
        assert!(model_from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn service_roundtrip_preserves_vectors() {
        let mut b = StoreBuilder::new();
        for i in 0..4u32 {
            b.add_raw(i, 0, 4 + i % 2);
            b.add_raw(i, 1, 6);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..4).map(|i| (EntityId(i), 0)).collect();
        let selector = pkgm_store::KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(4).with_seed(5),
        );
        let svc = KnowledgeService::new(model, selector);
        let bytes = service_to_bytes(&svc);
        let back = service_from_bytes(&bytes).unwrap();
        assert_eq!(back.k(), svc.k());
        assert_eq!(
            back.sequence_service(EntityId(1)),
            svc.sequence_service(EntityId(1))
        );
        assert_eq!(
            back.condensed_service(EntityId(2)),
            svc.condensed_service(EntityId(2))
        );
    }

    fn test_service() -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..4u32 {
            b.add_raw(i, 0, 4 + i % 2);
            b.add_raw(i, 1, 6);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..4).map(|i| (EntityId(i), 0)).collect();
        let selector = pkgm_store::KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(4).with_seed(5),
        );
        KnowledgeService::new(model, selector)
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let snap = ServiceSnapshot::build(&test_service());
        let bytes = snapshot_to_bytes(&snap);
        let back = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.dim(), snap.dim());
        assert_eq!(back.k(), snap.k());
        assert_eq!(back.n_rows(), snap.n_rows());
    }

    #[test]
    fn huge_declared_counts_are_rejected_not_sliced() {
        // A 32-byte header declaring ~u64::MAX entities must fail cleanly:
        // before the checked arithmetic fix the size computation overflowed
        // and the short buffer passed the length check.
        let mut bad = Vec::new();
        bad.extend_from_slice(MAGIC);
        bad.extend_from_slice(&8u32.to_le_bytes()); // dim
        bad.extend_from_slice(&1u32.to_le_bytes()); // flags: relation module
        bad.extend_from_slice(&(u64::MAX / 2).to_le_bytes()); // n_entities
        bad.extend_from_slice(&(u64::MAX / 2).to_le_bytes()); // n_relations
        bad.extend_from_slice(&[0u8; 64]); // a little tail data
        assert!(model_from_bytes(&bad).is_err());

        let mut bad_snap = Vec::new();
        bad_snap.extend_from_slice(SNAPSHOT_MAGIC);
        bad_snap.extend_from_slice(&8u32.to_le_bytes()); // dim
        bad_snap.extend_from_slice(&2u32.to_le_bytes()); // k
        bad_snap.extend_from_slice(&u64::MAX.to_le_bytes()); // n_rows
        bad_snap.extend_from_slice(&[0u8; 64]);
        assert!(snapshot_from_bytes(&bad_snap).is_err());
    }

    #[test]
    fn file_roundtrips_are_framed_and_exact() {
        use crate::artifact::StdIo;
        let dir = std::env::temp_dir().join(format!("pkgm-serialize-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let m = model();
        let mp = dir.join("m.pkgm");
        write_model_file(&StdIo, &mp, &m).unwrap();
        let back = read_model_file(&StdIo, &mp).unwrap();
        assert_eq!(back.ent, m.ent);

        let svc = test_service();
        let sp = dir.join("s.pkgm");
        write_service_file(&StdIo, &sp, &svc).unwrap();
        let back = read_service_file(&StdIo, &sp).unwrap();
        assert_eq!(
            back.condensed_service(EntityId(1)),
            svc.condensed_service(EntityId(1))
        );

        let snap = ServiceSnapshot::build(&svc);
        let np = dir.join("n.pkgm");
        write_snapshot_file(&StdIo, &np, &snap).unwrap();
        assert_eq!(read_snapshot_file(&StdIo, &np).unwrap(), snap);

        // Kind confusion is a typed error, not a mis-decode.
        assert!(matches!(
            read_snapshot_file(&StdIo, &sp),
            Err(ArtifactError::WrongKind { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_raw_files_still_load() {
        use crate::artifact::StdIo;
        let dir = std::env::temp_dir().join(format!("pkgm-legacy-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let svc = test_service();
        let sp = dir.join("legacy-svc.bin");
        std::fs::write(&sp, service_to_bytes(&svc)).unwrap();
        let back = read_service_file(&StdIo, &sp).unwrap();
        assert_eq!(back.k(), svc.k());
        let snap = ServiceSnapshot::build(&svc);
        let np = dir.join("legacy-snap.bin");
        std::fs::write(&np, snapshot_to_bytes(&snap)).unwrap();
        assert_eq!(read_snapshot_file(&StdIo, &np).unwrap(), snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_bytes_are_rejected() {
        let bytes = snapshot_to_bytes(&ServiceSnapshot::build(&test_service()));
        assert!(snapshot_from_bytes(&bytes[..12]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(snapshot_from_bytes(&bad).is_err());
        assert!(snapshot_from_bytes(&bytes[..bytes.len() - 4]).is_err());
        // Model bytes are not a snapshot.
        let model_bytes = model_to_bytes(&model());
        assert!(snapshot_from_bytes(&model_bytes).is_err());
    }

    #[test]
    fn quantized_snapshot_roundtrip_is_exact() {
        let snap = ServiceSnapshot::build(&test_service()).quantize();
        assert!(snap.is_quantized());
        let bytes = snapshot_to_bytes(&snap);
        assert_eq!(&bytes[..8], QUANT_SNAPSHOT_MAGIC);
        let back = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert!(back.is_quantized());
        // Served rows reproduce bitwise — the PKGMSS2 contract.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..snap.n_rows() as u32 + 2 {
            let id = EntityId(i);
            assert_eq!(snap.lookup_exact(id, &mut a), back.lookup_exact(id, &mut b));
            let bits_a: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "row {i}");
        }
    }

    #[test]
    fn quantized_snapshot_file_roundtrip_and_size() {
        use crate::artifact::StdIo;
        let dir = std::env::temp_dir().join(format!("pkgm-quant-ser-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dense = ServiceSnapshot::build(&test_service());
        let quant = dense.quantize();
        let dp = dir.join("dense.pkgm");
        let qp = dir.join("quant.pkgm");
        write_snapshot_file(&StdIo, &dp, &dense).unwrap();
        write_snapshot_file(&StdIo, &qp, &quant).unwrap();
        assert_eq!(read_snapshot_file(&StdIo, &dp).unwrap(), dense);
        assert_eq!(read_snapshot_file(&StdIo, &qp).unwrap(), quant);
        let dense_len = std::fs::metadata(&dp).unwrap().len();
        let quant_len = std::fs::metadata(&qp).unwrap().len();
        assert!(
            quant_len < dense_len,
            "quantized file {quant_len} B not smaller than dense {dense_len} B"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_quantized_snapshot_bytes_are_rejected() {
        let snap = ServiceSnapshot::build(&test_service()).quantize();
        let bytes = snapshot_to_bytes(&snap);
        // Truncations at every section boundary are typed errors.
        for cut in [8, 20, 35, bytes.len() - 1] {
            assert!(snapshot_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A scale flipped to NaN/negative/inf must be rejected, not served.
        let n_rows = snap.n_rows();
        let row_len = 2 * snap.dim();
        let scales_at = 36 + n_rows * row_len;
        for val in [f32::NAN, -1.0f32, f32::INFINITY] {
            let mut bad = bytes.to_vec();
            bad[scales_at..scales_at + 4].copy_from_slice(&val.to_le_bytes());
            assert!(snapshot_from_bytes(&bad).is_err(), "scale {val}");
        }
        // An implausible block size is rejected.
        let mut bad = bytes.to_vec();
        bad[24..28].copy_from_slice(&0u32.to_le_bytes());
        assert!(snapshot_from_bytes(&bad).is_err());
        bad[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(snapshot_from_bytes(&bad).is_err());
        // Huge declared counts fail the checked length math.
        let mut bad = bytes.to_vec();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(snapshot_from_bytes(&bad).is_err());
    }
}

//! Compact binary snapshots of trained models and services.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "PKGMMD1\0"      8 bytes
//! dim                    u32
//! flags                  u32   (bit 0: relation module)
//! n_entities             u64
//! n_relations            u64
//! ent                    n_entities × dim × f32
//! rel                    n_relations × dim × f32
//! mats                   n_relations × dim² × f32  (iff relation module)
//! ```
//!
//! A [`KnowledgeService`] snapshot appends the selector as a length-prefixed
//! JSON blob (the selector is tiny compared to the parameters).

use crate::model::{PkgmConfig, PkgmModel};
use crate::service::KnowledgeService;
use crate::snapshot::ServiceSnapshot;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pkgm_store::KeyRelationSelector;

const MAGIC: &[u8; 8] = b"PKGMMD1\0";
const SNAPSHOT_MAGIC: &[u8; 8] = b"PKGMSS1\0";

/// Serialization errors.
#[derive(Debug)]
pub enum SerializeError {
    /// Payload malformed or truncated.
    Corrupt(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Corrupt(what) => write!(f, "corrupt model snapshot: {what}"),
        }
    }
}

impl std::error::Error for SerializeError {}

/// Serialize a model.
pub fn model_to_bytes(model: &PkgmModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + model.param_bytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(model.dim() as u32);
    buf.put_u32_le(if model.cfg.relation_module { 1 } else { 0 });
    buf.put_u64_le(model.n_entities() as u64);
    buf.put_u64_le(model.n_relations() as u64);
    for &x in &model.ent {
        buf.put_f32_le(x);
    }
    for &x in &model.rel {
        buf.put_f32_le(x);
    }
    for &x in &model.mats {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserialize a model. Consumes exactly the model's bytes from the front of
/// `bytes` and returns the remainder offset.
pub fn model_from_bytes(bytes: &[u8]) -> Result<(PkgmModel, usize), SerializeError> {
    let mut b = bytes;
    if b.len() < 32 || &b[..8] != MAGIC {
        return Err(SerializeError::Corrupt(
            "bad magic or truncated header".into(),
        ));
    }
    b.advance(8);
    let dim = b.get_u32_le() as usize;
    let flags = b.get_u32_le();
    let relation_module = flags & 1 != 0;
    let n_entities = b.get_u64_le() as usize;
    let n_relations = b.get_u64_le() as usize;
    let n_floats = n_entities * dim
        + n_relations * dim
        + if relation_module {
            n_relations * dim * dim
        } else {
            0
        };
    if b.remaining() < n_floats * 4 {
        return Err(SerializeError::Corrupt(format!(
            "expected {} parameter bytes, found {}",
            n_floats * 4,
            b.remaining()
        )));
    }
    let mut read_block = |n: usize| -> Vec<f32> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(b.get_f32_le());
        }
        v
    };
    let ent = read_block(n_entities * dim);
    let rel = read_block(n_relations * dim);
    let mats = if relation_module {
        read_block(n_relations * dim * dim)
    } else {
        Vec::new()
    };
    let consumed = bytes.len() - b.remaining();
    let cfg = PkgmConfig {
        dim,
        relation_module,
        ..PkgmConfig::new(dim)
    };
    Ok((
        PkgmModel {
            cfg,
            n_entities,
            n_relations,
            ent,
            rel,
            mats,
        },
        consumed,
    ))
}

/// Serialize a knowledge service (model + selector).
pub fn service_to_bytes(service: &KnowledgeService) -> Bytes {
    let model_bytes = model_to_bytes(service.model());
    let selector_json = serde_json::to_vec(service.selector()).expect("selector serializes");
    let mut buf = BytesMut::with_capacity(model_bytes.len() + selector_json.len() + 8);
    buf.put_slice(&model_bytes);
    buf.put_u64_le(selector_json.len() as u64);
    buf.put_slice(&selector_json);
    buf.freeze()
}

/// Deserialize a knowledge service.
pub fn service_from_bytes(bytes: &[u8]) -> Result<KnowledgeService, SerializeError> {
    let (model, consumed) = model_from_bytes(bytes)?;
    let mut rest = &bytes[consumed..];
    if rest.len() < 8 {
        return Err(SerializeError::Corrupt("missing selector length".into()));
    }
    let len = rest.get_u64_le() as usize;
    if rest.remaining() < len {
        return Err(SerializeError::Corrupt("truncated selector blob".into()));
    }
    let selector: KeyRelationSelector = serde_json::from_slice(&rest[..len])
        .map_err(|e| SerializeError::Corrupt(format!("selector json: {e}")))?;
    Ok(KnowledgeService::new(model, selector))
}

/// Serialize a precomputed serving snapshot.
///
/// Layout (little-endian): magic `"PKGMSS1\0"`, `dim` u32, `k` u32,
/// `n_rows` u64, then `n_rows × 2·dim` f32 rows.
pub fn snapshot_to_bytes(snapshot: &ServiceSnapshot) -> Bytes {
    let table = snapshot.table();
    let mut buf = BytesMut::with_capacity(24 + table.len() * 4);
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u32_le(snapshot.dim() as u32);
    buf.put_u32_le(snapshot.k() as u32);
    buf.put_u64_le(snapshot.n_rows() as u64);
    for &x in table {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserialize a serving snapshot.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<ServiceSnapshot, SerializeError> {
    let mut b = bytes;
    if b.len() < 24 || &b[..8] != SNAPSHOT_MAGIC {
        return Err(SerializeError::Corrupt(
            "bad snapshot magic or truncated header".into(),
        ));
    }
    b.advance(8);
    let dim = b.get_u32_le() as usize;
    let k = b.get_u32_le() as usize;
    let n_rows = b.get_u64_le() as usize;
    if dim == 0 {
        return Err(SerializeError::Corrupt(
            "snapshot dim must be positive".into(),
        ));
    }
    let n_floats = n_rows * 2 * dim;
    if b.remaining() != n_floats * 4 {
        return Err(SerializeError::Corrupt(format!(
            "expected {} snapshot table bytes, found {}",
            n_floats * 4,
            b.remaining()
        )));
    }
    let mut rows = Vec::with_capacity(n_floats);
    for _ in 0..n_floats {
        rows.push(b.get_f32_le());
    }
    Ok(ServiceSnapshot::from_parts(dim, k, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgm_store::{EntityId, StoreBuilder};

    fn model() -> PkgmModel {
        PkgmModel::new(6, 2, PkgmConfig::new(4).with_seed(3))
    }

    #[test]
    fn model_roundtrip_is_exact() {
        let m = model();
        let bytes = model_to_bytes(&m);
        let (back, consumed) = model_from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back.ent, m.ent);
        assert_eq!(back.rel, m.rel);
        assert_eq!(back.mats, m.mats);
        assert_eq!(back.dim(), m.dim());
    }

    #[test]
    fn transe_model_roundtrip() {
        let m = PkgmModel::new(6, 2, PkgmConfig::transe(4).with_seed(3));
        let bytes = model_to_bytes(&m);
        let (back, _) = model_from_bytes(&bytes).unwrap();
        assert!(!back.cfg.relation_module);
        assert!(back.mats.is_empty());
        assert_eq!(back.ent, m.ent);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let bytes = model_to_bytes(&model());
        assert!(model_from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(model_from_bytes(&bad).is_err());
        assert!(model_from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn service_roundtrip_preserves_vectors() {
        let mut b = StoreBuilder::new();
        for i in 0..4u32 {
            b.add_raw(i, 0, 4 + i % 2);
            b.add_raw(i, 1, 6);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..4).map(|i| (EntityId(i), 0)).collect();
        let selector = pkgm_store::KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(4).with_seed(5),
        );
        let svc = KnowledgeService::new(model, selector);
        let bytes = service_to_bytes(&svc);
        let back = service_from_bytes(&bytes).unwrap();
        assert_eq!(back.k(), svc.k());
        assert_eq!(
            back.sequence_service(EntityId(1)),
            svc.sequence_service(EntityId(1))
        );
        assert_eq!(
            back.condensed_service(EntityId(2)),
            svc.condensed_service(EntityId(2))
        );
    }

    fn test_service() -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..4u32 {
            b.add_raw(i, 0, 4 + i % 2);
            b.add_raw(i, 1, 6);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..4).map(|i| (EntityId(i), 0)).collect();
        let selector = pkgm_store::KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(4).with_seed(5),
        );
        KnowledgeService::new(model, selector)
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let snap = ServiceSnapshot::build(&test_service());
        let bytes = snapshot_to_bytes(&snap);
        let back = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.dim(), snap.dim());
        assert_eq!(back.k(), snap.k());
        assert_eq!(back.n_rows(), snap.n_rows());
    }

    #[test]
    fn corrupt_snapshot_bytes_are_rejected() {
        let bytes = snapshot_to_bytes(&ServiceSnapshot::build(&test_service()));
        assert!(snapshot_from_bytes(&bytes[..12]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(snapshot_from_bytes(&bad).is_err());
        assert!(snapshot_from_bytes(&bytes[..bytes.len() - 4]).is_err());
        // Model bytes are not a snapshot.
        let model_bytes = model_to_bytes(&model());
        assert!(snapshot_from_bytes(&model_bytes).is_err());
    }
}

//! Blockwise symmetric int8 quantization with certified L1 lower bounds.
//!
//! At the paper's scale (142.6M item embeddings) the f32 tables, not the
//! arithmetic, bound evaluation throughput: every candidate scan streams
//! `4·d` bytes per entity through the cache hierarchy. This module shrinks
//! that to `d` bytes by quantizing tables to int8 — but, unlike lossy
//! quantized retrieval, the quantized scan here is only a **pruning
//! filter**: each candidate gets a *certified lower bound* on its f32 L1
//! score, candidates whose bound already reaches the true score are
//! discarded in the cheap i8 domain, and the survivors are rescored
//! exactly in f32. Ranks stay bit-identical to the full-precision scan
//! (the `quant_parity` suite pins this) while memory traffic per pruned
//! candidate drops ~4×.
//!
//! Two table shapes, two jobs:
//!
//! * [`QuantTable`] — **per-(row, block)** scales, the accurate form used
//!   by quantized serving snapshots (`PKGMSS2`): each row quantizes
//!   against its own per-block max, and [`QuantTable::max_abs_err`]
//!   reports the measured per-row reconstruction error, giving the
//!   documented certificate `l1_q(h,t) − d·err_h − d·err_t ≤ l1_f32(h,t)`.
//! * [`QuantScanTable`] — **per-block scales shared by every row**, the
//!   kernel-facing form: because scales are shared, a query vector is
//!   quantized *once* and candidate bounds reduce to integer
//!   absolute-difference sums (`Σ_b s_b · Σ_{i∈b} |q_x − q_c|`), which is
//!   what makes the phase-1 scan cheap.
//!
//! ## Why the lower bound is sound in f32, not just on paper
//!
//! The real-arithmetic bound is the triangle inequality: with per-element
//! quantization errors `e_x = Σ|x − x̂|` and `e_c ≤ margin`,
//! `Σ|x̂ − ĉ| − e_x − e_c ≤ Σ|x − c|`. Three f32 effects could break it:
//!
//! 1. rounding while *accumulating* the quantized sum, the margins and the
//!    query error — each sum has O(d) roundings, relative error
//!    ≤ ~(d+4)·ε ≈ 2e-5 at d = 128;
//! 2. rounding while *forming* the query (`round(x·inv_s)` may land one
//!    step off when `x/s` sits within ~3e-5 of a half-integer);
//! 3. the comparison target itself: the kernels' eight-lane `blocked_l1`
//!    is a rounded version of the real L1, low by at most ~20·ε relative.
//!
//! All three are absorbed by explicit slack: candidate and query errors
//! are *measured* at quantization time and inflated by [`ERR_INFLATE`],
//! and the accumulated quantized sum is shaved by [`SUM_SHAVE`] — two
//! orders of magnitude more than the worst rounding drift, and negligible
//! against the measured rounding errors that dominate the bound. The
//! resulting guarantee, tested adversarially in `quant_parity`, is
//! `lower_bound(x, row) ≤ blocked_l1(x, row_f32)` for the *computed*
//! values on both sides, which is exactly what the two-phase kernels need
//! for bit-identical ranks.
//!
//! ## Outlier rows
//!
//! Trained embedding tables have heavy-tailed coordinate magnitudes; a
//! max-based shared scale would let one outlier row crush everyone else's
//! resolution (and with it the bound's tightness — a useless-but-sound
//! bound prunes nothing). [`QuantScanTable`] therefore sets each block's
//! scale at the [`SCAN_SCALE_QUANTILE`] of the per-row block maxima and
//! marks the few rows above it as **escapes** (`row_err = +∞`): their
//! lower bound is `−∞`, so they always survive to the exact phase-2
//! rescore — correct by construction, and rare enough not to matter for
//! throughput.

/// Dimensions per quantization block. At 32 a d = 64 row carries two
/// scales (8 bytes) next to 64 i8 payload bytes — ~12% overhead — and a
/// block's integer absolute-difference sum stays well inside i16/i32.
pub const QUANT_BLOCK: usize = 32;

/// Quantile of the per-row block maxima at which [`QuantScanTable`] sets
/// its shared block scales; rows above it become escapes (see the module
/// docs). At 0.995, at most ~0.5% of rows per block skip phase 1.
const SCAN_SCALE_QUANTILE: f64 = 0.995;

/// Multiplicative inflation applied to computed error sums so a sum that
/// f32-rounds *down* still upper-bounds the real error (O(d)·ε ≈ 2e-5
/// relative at d = 128, budgeted 1e-4).
pub(crate) const ERR_INFLATE: f32 = 1.0001;

/// Relative shave applied to the accumulated quantized sum, covering its
/// own accumulation rounding *and* the rounding deficit of the f32
/// `blocked_l1` it lower-bounds.
const SUM_SHAVE: f32 = 2e-4;

/// Deflation applied to the accumulated clamp bonus (distance a query
/// coordinate is guaranteed to keep from every in-range candidate, see
/// [`QuantScanTable::quantize_query`]) so f32 rounding cannot overstate
/// it.
const BONUS_DEFLATE: f32 = 0.9999;

/// Round-to-nearest unit roundoff bound for f32 (2⁻²³); callers use it to
/// budget formation error of derived query vectors (e.g. `t − r`).
pub const F32_EPS: f32 = f32::EPSILON;

/// Quantize one value against a precomputed reciprocal scale, clamped to
/// the symmetric i8 range.
#[inline]
fn quantize_one(x: f32, inv: f32) -> i8 {
    (x * inv).round().clamp(-127.0, 127.0) as i8
}

/// Number of blocks covering `row_len` dimensions (last block ragged).
#[inline]
fn n_blocks(row_len: usize, block: usize) -> usize {
    row_len.div_ceil(block)
}

/// Deterministically reconstruct one row from raw quantized storage
/// (`q_i · s_block`). Shared by [`QuantTable::dequantize_into`] and the
/// memory-mapped snapshot path, which reads `data`/`scales` straight out
/// of an on-disk section — both must produce bit-identical floats, so
/// there is exactly one reconstruction loop.
pub(crate) fn dequantize_row_into(
    data: &[i8],
    scales: &[f32],
    row_len: usize,
    block: usize,
    row: usize,
    out: &mut [f32],
) {
    assert_eq!(out.len(), row_len, "output must be one row");
    let nb = n_blocks(row_len, block);
    let q = &data[row * row_len..(row + 1) * row_len];
    let scales = &scales[row * nb..(row + 1) * nb];
    for (b, (qc, oc)) in q.chunks(block).zip(out.chunks_mut(block)).enumerate() {
        let s = scales[b];
        for (&qv, o) in qc.iter().zip(oc) {
            *o = qv as f32 * s;
        }
    }
}

// ---------------------------------------------------------------------------
// QuantTable — per-(row, block) scales (snapshot storage form)
// ---------------------------------------------------------------------------

/// A row-major i8 table with independent symmetric scales per (row, block)
/// and a measured per-row reconstruction error bound.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTable {
    row_len: usize,
    block: usize,
    n_rows: usize,
    /// `n_rows × row_len` quantized values.
    data: Vec<i8>,
    /// `n_rows × n_blocks` scales (`s = amax / 127`, 0 for all-zero blocks).
    scales: Vec<f32>,
    /// Per-row measured `max_i |x_i − q_i·s|`, inflated by [`ERR_INFLATE`]
    /// so it upper-bounds the real error despite f32 rounding.
    row_err: Vec<f32>,
}

impl QuantTable {
    /// Quantize a row-major f32 table (`rows.len()` must be a whole number
    /// of `row_len`-sized rows; `row_len` must be positive).
    pub fn quantize_table(rows: &[f32], row_len: usize) -> Self {
        assert!(row_len > 0, "row_len must be positive");
        assert_eq!(rows.len() % row_len, 0, "table must be whole rows");
        let n_rows = rows.len() / row_len;
        let block = QUANT_BLOCK.min(row_len);
        let nb = n_blocks(row_len, block);
        let mut data = Vec::with_capacity(rows.len());
        let mut scales = Vec::with_capacity(n_rows * nb);
        let mut row_err = Vec::with_capacity(n_rows);
        for row in rows.chunks_exact(row_len) {
            let mut err = 0.0f32;
            for chunk in row.chunks(block) {
                let amax = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                let (scale, inv) = if amax > 0.0 {
                    (amax / 127.0, 127.0 / amax)
                } else {
                    (0.0, 0.0)
                };
                scales.push(scale);
                for &x in chunk {
                    let q = quantize_one(x, inv);
                    data.push(q);
                    err = err.max((x - q as f32 * scale).abs());
                }
            }
            row_err.push(err * ERR_INFLATE);
        }
        Self {
            row_len,
            block,
            n_rows,
            data,
            scales,
            row_err,
        }
    }

    /// Reassemble a table from stored parts (the `PKGMSS2` loader).
    /// Lengths must agree; the caller validates value-level invariants
    /// (finite nonnegative scales/errors) and reports typed errors.
    pub fn from_parts(
        row_len: usize,
        block: usize,
        data: Vec<i8>,
        scales: Vec<f32>,
        row_err: Vec<f32>,
    ) -> Result<Self, String> {
        if row_len == 0 || block == 0 || block > row_len {
            return Err(format!("bad quant shape: row_len {row_len}, block {block}"));
        }
        if !data.len().is_multiple_of(row_len) {
            return Err("quant data is not whole rows".into());
        }
        let n_rows = data.len() / row_len;
        let nb = n_blocks(row_len, block);
        if scales.len() != n_rows * nb {
            return Err(format!(
                "expected {} scales, found {}",
                n_rows * nb,
                scales.len()
            ));
        }
        if row_err.len() != n_rows {
            return Err(format!(
                "expected {n_rows} row errors, found {}",
                row_err.len()
            ));
        }
        Ok(Self {
            row_len,
            block,
            n_rows,
            data,
            scales,
            row_err,
        })
    }

    /// Row length in elements.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Block size in elements.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The quantized payload (`n_rows × row_len`).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The per-(row, block) scales (`n_rows × n_blocks`, row-major).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The per-row inflated reconstruction errors.
    pub fn row_errs(&self) -> &[f32] {
        &self.row_err
    }

    /// Certified per-element reconstruction error of `row`:
    /// `|x_i − dequant_i| ≤ max_abs_err(row)` for every element, so
    /// `l1_q(h,t) − d·err_h − d·err_t ≤ l1_f32(h,t)` — the pruning lower
    /// bound in its per-row form.
    pub fn max_abs_err(&self, row: usize) -> f32 {
        self.row_err[row]
    }

    /// Deterministically reconstruct `row` into `out` (`q_i · s_block`).
    pub fn dequantize_into(&self, row: usize, out: &mut [f32]) {
        dequantize_row_into(&self.data, &self.scales, self.row_len, self.block, row, out);
    }

    /// Bytes of quantized storage (payload + scales + per-row errors).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + 4 * self.scales.len() + 4 * self.row_err.len()
    }
}

// ---------------------------------------------------------------------------
// QuantScanTable — shared per-block scales (kernel scan form)
// ---------------------------------------------------------------------------

/// A row-major i8 table whose block scales are shared by **every** row,
/// so a query quantizes once and per-candidate lower bounds reduce to
/// integer absolute-difference sums.
///
/// Block scales sit at the [`SCAN_SCALE_QUANTILE`] of the per-row block
/// maxima; the few rows above a block's scale are escapes whose lower
/// bound is `−∞` (always rescored exactly). Each served row carries its
/// *measured* quantization error sum, so the bound's slack tracks the
/// actual rounding, not a worst case.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantScanTable {
    row_len: usize,
    block: usize,
    n_rows: usize,
    /// `n_rows × row_len` quantized values.
    data: Vec<i8>,
    /// One scale per block, shared across rows.
    scales: Vec<f32>,
    /// Reciprocal scales for query quantization (0 for empty blocks).
    inv_scales: Vec<f32>,
    /// Per-row measured `Σ_i |x_i − q_i·s_b|`, inflated by
    /// [`ERR_INFLATE`]; `+∞` marks an escape row (a block magnitude above
    /// the shared scale — never pruned).
    row_err: Vec<f32>,
}

impl QuantScanTable {
    /// Quantize a row-major f32 table with table-wide per-block scales.
    pub fn from_rows(rows: &[f32], row_len: usize) -> Self {
        assert!(row_len > 0, "row_len must be positive");
        assert_eq!(rows.len() % row_len, 0, "table must be whole rows");
        let n_rows = rows.len() / row_len;
        let block = QUANT_BLOCK.min(row_len);
        let nb = n_blocks(row_len, block);
        // Per-(row, block) max magnitudes, then a robust per-block scale at
        // the quantile — a handful of outlier rows must not set everyone's
        // resolution (they escape phase 1 instead).
        let mut amax = vec![0.0f32; n_rows * nb];
        for (r, row) in rows.chunks_exact(row_len).enumerate() {
            for (b, chunk) in row.chunks(block).enumerate() {
                amax[r * nb + b] = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            }
        }
        let mut scales = vec![0.0f32; nb];
        let mut column = vec![0.0f32; n_rows];
        if n_rows > 0 {
            for (b, scale) in scales.iter_mut().enumerate() {
                for r in 0..n_rows {
                    column[r] = amax[r * nb + b];
                }
                let k = ((n_rows - 1) as f64 * SCAN_SCALE_QUANTILE) as usize;
                let (_, kth, _) = column.select_nth_unstable_by(k, |a, b| a.total_cmp(b));
                *scale = if *kth > 0.0 { *kth / 127.0 } else { 0.0 };
            }
        }
        let inv_scales: Vec<f32> = scales
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        let mut data = Vec::with_capacity(rows.len());
        let mut row_err = Vec::with_capacity(n_rows);
        for (r, row) in rows.chunks_exact(row_len).enumerate() {
            let escapes = (0..nb).any(|b| scales[b] * 127.0 < amax[r * nb + b]);
            let mut err = 0.0f32;
            for (b, chunk) in row.chunks(block).enumerate() {
                let inv = inv_scales[b];
                let s = scales[b];
                for &x in chunk {
                    let q = quantize_one(x, inv);
                    data.push(q);
                    err += (x - q as f32 * s).abs();
                }
            }
            row_err.push(if escapes {
                f32::INFINITY
            } else {
                err * ERR_INFLATE
            });
        }
        Self {
            row_len,
            block,
            n_rows,
            data,
            scales,
            inv_scales,
            row_err,
        }
    }

    /// Row length in elements.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// One quantized row (`row_len` i8 values — the phase-1 bytes).
    #[inline]
    pub fn row(&self, row: u32) -> &[i8] {
        let start = row as usize * self.row_len;
        &self.data[start..start + self.row_len]
    }

    /// Bytes of quantized storage (payload + scales + per-row errors).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + 4 * (self.scales.len() + self.inv_scales.len() + self.row_err.len())
    }

    /// Whether `row` bypasses phase 1 (a block magnitude above the shared
    /// scale; its lower bound is `−∞`).
    pub fn is_escape(&self, row: u32) -> bool {
        self.row_err[row as usize] == f32::INFINITY
    }

    /// Quantize a query vector against the shared block scales and return
    /// the certified *net* query-side adjustment the lower bound must
    /// subtract — possibly negative.
    ///
    /// In-range coordinates contribute their measured rounding error
    /// `|x_i − q_i·s_b|` (inflated by [`ERR_INFLATE`]). Out-of-range
    /// coordinates clamp to `±127` and contribute a *bonus* instead: every
    /// non-escape candidate has `|c_i| ≤ 127·s_b` there, so
    /// `|x_i − c_i| ≥ (|x_i| − 127·s_b) + |x̂_i − ĉ_i| − |c_i − ĉ_i|` —
    /// the clamp excess is guaranteed distance, not error. This matters:
    /// translation queries (`h′ + r`, `t − r`) routinely exceed the entity
    /// table's coordinate range, and charging the excess as error would
    /// make the bound useless exactly where pruning pays most.
    ///
    /// `extra_err` carries any formation error of `x` itself (e.g.
    /// `ε·Σ(|t|+|r|)` when `x = fl(t − r)` stands in for `t − r` in a
    /// translation score).
    pub fn quantize_query(&self, x: &[f32], out: &mut [i8], extra_err: f32) -> f32 {
        assert_eq!(x.len(), self.row_len, "query must be one row");
        assert_eq!(out.len(), self.row_len, "output must be one row");
        let mut err = extra_err;
        let mut bonus = 0.0f32;
        for ((b, chunk), oc) in x
            .chunks(self.block)
            .enumerate()
            .zip(out.chunks_mut(self.block))
        {
            let inv = self.inv_scales[b];
            let s = self.scales[b];
            let lim = 127.0 * s;
            for (&v, o) in chunk.iter().zip(oc) {
                if v > lim {
                    *o = 127;
                    bonus += v - lim;
                } else if v < -lim {
                    *o = -127;
                    bonus += -v - lim;
                } else {
                    let q = quantize_one(v, inv);
                    *o = q;
                    err += (v - q as f32 * s).abs();
                }
            }
        }
        err * ERR_INFLATE - bonus * BONUS_DEFLATE
    }

    /// Certified lower bound on the kernels' computed eight-lane L1
    /// between the query `quantize_query` produced `(q, query_err)` from
    /// and row `row`'s original f32 values:
    ///
    /// `lower_bound(q, row, query_err) ≤ blocked_l1(x, row_f32)`
    ///
    /// for the computed f32 values on both sides (see the module docs for
    /// the rounding budget). The integer per-block sums are exact; only
    /// the tiny `n_blocks`-term scale combination rounds.
    #[inline]
    pub fn lower_bound(&self, q: &[i8], row: u32, query_err: f32) -> f32 {
        let row_err = self.row_err[row as usize];
        if row_err == f32::INFINITY {
            // Escape row: never pruned, skip the scan entirely.
            return f32::NEG_INFINITY;
        }
        let cand = self.row(row);
        let mut sum = 0.0f32;
        for (b, &scale) in self.scales.iter().enumerate() {
            // The per-block integer SAD is runtime-dispatched
            // (`_mm256_sad_epu8` on AVX2 hosts) and exact on every level,
            // so the bound is unchanged by dispatch.
            let start = b * self.block;
            let end = (start + self.block).min(self.row_len);
            let d = crate::simd::sad_i8(&cand[start..end], &q[start..end]);
            sum += scale * d as f32;
        }
        (sum - sum * SUM_SHAVE - row_err) - query_err
    }

    /// Early-exit form of [`Self::lower_bound`] for the hot pruning loop:
    /// `true` iff the certified lower bound on the blocked L1 between the
    /// query and `row` reaches `bound`. Per-block partial sums only grow,
    /// so the scan stops at the first block whose running total already
    /// proves the bound — on trained models most candidates are decided by
    /// the first block, halving the bytes touched at d = 64.
    ///
    /// The test is algebraically `lower_bound(q, row, query_err) ≥ bound`,
    /// rearranged so the threshold is precomputed and each block can
    /// decide. The rearrangement adds a couple of f32 roundings (~ε·bound),
    /// orders of magnitude inside the [`SUM_SHAVE`] budget, so a `true`
    /// still certifies that the exact blocked L1 reaches `bound`.
    #[inline]
    pub fn prunes(&self, q: &[i8], row: u32, query_err: f32, bound: f32) -> bool {
        let row_err = self.row_err[row as usize];
        if row_err == f32::INFINITY {
            // Escape row: never pruned, skip the scan entirely.
            return false;
        }
        let target = bound + query_err + row_err;
        let cand = self.row(row);
        let mut sum = 0.0f32;
        for (b, &scale) in self.scales.iter().enumerate() {
            // Same dispatched integer SAD as `lower_bound`; the per-block
            // early-exit cadence is unchanged.
            let start = b * self.block;
            let end = (start + self.block).min(self.row_len);
            let d = crate::simd::sad_i8(&cand[start..end], &q[start..end]);
            sum += scale * d as f32;
            if sum - sum * SUM_SHAVE >= target {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_rows(rng: &mut SmallRng, n_rows: usize, row_len: usize, amp: f32) -> Vec<f32> {
        (0..n_rows * row_len)
            .map(|_| rng.gen_range(-amp..amp))
            .collect()
    }

    /// The eight-lane blocked L1 of the evaluation kernels — the contract
    /// arithmetic the lower bound must stay under, named via its scalar
    /// twin so there is exactly one statement of it in the crate.
    use crate::simd::scalar::blocked_l1;

    #[test]
    fn quant_table_roundtrip_error_is_certified() {
        let mut rng = SmallRng::seed_from_u64(1);
        for row_len in [1usize, 3, 8, 32, 33, 64, 128] {
            let rows = random_rows(&mut rng, 7, row_len, 2.0);
            let qt = QuantTable::quantize_table(&rows, row_len);
            assert_eq!(qt.n_rows(), 7);
            let mut out = vec![0.0f32; row_len];
            for r in 0..7 {
                qt.dequantize_into(r, &mut out);
                let err = qt.max_abs_err(r);
                for (o, x) in out.iter().zip(&rows[r * row_len..(r + 1) * row_len]) {
                    assert!(
                        (o - x).abs() <= err,
                        "row {r}: |{o} - {x}| > certified {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_zero_scale_and_zero_error() {
        let rows = vec![0.0f32; 3 * 40];
        let qt = QuantTable::quantize_table(&rows, 40);
        assert!(qt.scales().iter().all(|&s| s == 0.0));
        assert!(qt.data().iter().all(|&q| q == 0));
        assert_eq!(qt.max_abs_err(1), 0.0);
        let mut out = vec![9.0f32; 40];
        qt.dequantize_into(2, &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_parts_rejects_mismatched_shapes() {
        assert!(QuantTable::from_parts(0, 1, vec![], vec![], vec![]).is_err());
        assert!(QuantTable::from_parts(4, 8, vec![0; 8], vec![0.0; 2], vec![0.0; 2]).is_err());
        assert!(QuantTable::from_parts(4, 4, vec![0; 7], vec![0.0; 2], vec![0.0; 2]).is_err());
        assert!(QuantTable::from_parts(4, 4, vec![0; 8], vec![0.0; 3], vec![0.0; 2]).is_err());
        assert!(QuantTable::from_parts(4, 4, vec![0; 8], vec![0.0; 2], vec![0.0; 3]).is_err());
        assert!(QuantTable::from_parts(4, 4, vec![0; 8], vec![0.0; 2], vec![0.0; 2]).is_ok());
    }

    #[test]
    fn scan_lower_bound_never_exceeds_blocked_l1() {
        let mut rng = SmallRng::seed_from_u64(2);
        for row_len in [1usize, 8, 13, 32, 64, 100, 128] {
            let rows = random_rows(&mut rng, 24, row_len, 1.0);
            let st = QuantScanTable::from_rows(&rows, row_len);
            let mut q = vec![0i8; row_len];
            for trial in 0..40 {
                // Queries up to 4× the table amplitude exercise clamping.
                let amp = [0.5f32, 1.0, 4.0][trial % 3];
                let x = random_rows(&mut rng, 1, row_len, amp);
                let err = st.quantize_query(&x, &mut q, 0.0);
                // May be negative: clamp excess is a certified bonus.
                assert!(err.is_finite());
                for r in 0..st.n_rows() as u32 {
                    let lb = st.lower_bound(&q, r, err);
                    let exact = blocked_l1(&x, &rows[r as usize * row_len..][..row_len]);
                    assert!(
                        lb <= exact,
                        "row_len {row_len} row {r}: lb {lb} > exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn prunes_only_when_exact_distance_reaches_bound() {
        let mut rng = SmallRng::seed_from_u64(9);
        let row_len = 64;
        let rows = random_rows(&mut rng, 32, row_len, 1.0);
        let st = QuantScanTable::from_rows(&rows, row_len);
        let mut q = vec![0i8; row_len];
        let mut fired = 0usize;
        for _ in 0..20 {
            // 2× the table amplitude so clamp-bonus paths are exercised.
            let x = random_rows(&mut rng, 1, row_len, 2.0);
            let err = st.quantize_query(&x, &mut q, 0.0);
            for r in 0..st.n_rows() as u32 {
                let exact = blocked_l1(&x, &rows[r as usize * row_len..][..row_len]);
                // Bounds straddling the exact distance probe the boundary.
                for bound in [0.5 * exact, 0.99 * exact, exact, 1.01 * exact] {
                    if st.prunes(&q, r, err, bound) {
                        fired += 1;
                        assert!(
                            exact >= bound,
                            "pruned row {r} with exact {exact} < bound {bound}"
                        );
                    }
                }
            }
        }
        assert!(fired > 100, "early-exit prune never fires ({fired})");
    }

    #[test]
    fn scan_lower_bound_is_tight_for_identical_vectors() {
        // A query equal to a stored row must not be bounded far above 0 —
        // the bound's only slack is the quantization margin.
        let mut rng = SmallRng::seed_from_u64(3);
        let row_len = 64;
        let rows = random_rows(&mut rng, 8, row_len, 1.0);
        let st = QuantScanTable::from_rows(&rows, row_len);
        let mut q = vec![0i8; row_len];
        let x = &rows[3 * row_len..4 * row_len];
        let err = st.quantize_query(x, &mut q, 0.0);
        let lb = st.lower_bound(&q, 3, err);
        assert!(lb <= 0.0, "self lower bound must be ≤ 0, got {lb}");
        // …and for a far-away query the bound must be strongly positive,
        // or phase 1 would never prune anything.
        let far: Vec<f32> = x.iter().map(|v| v + 0.5).collect();
        let err = st.quantize_query(&far, &mut q, 0.0);
        let lb = st.lower_bound(&q, 3, err);
        let exact = blocked_l1(&far, x);
        assert!(
            lb > 0.5 * exact,
            "bound too loose to prune: lb {lb} vs exact {exact}"
        );
    }

    #[test]
    fn query_error_includes_extra_formation_slack() {
        let mut rng = SmallRng::seed_from_u64(4);
        let rows = random_rows(&mut rng, 4, 16, 1.0);
        let st = QuantScanTable::from_rows(&rows, 16);
        let x = random_rows(&mut rng, 1, 16, 1.0);
        let mut q = vec![0i8; 16];
        let base = st.quantize_query(&x, &mut q, 0.0);
        let extra = st.quantize_query(&x, &mut q, 0.25);
        assert!(
            extra >= base + 0.25,
            "extra_err must add through: {extra} vs {base}"
        );
    }

    #[test]
    fn storage_is_about_a_quarter_of_f32() {
        let rows = vec![0.5f32; 1000 * 64];
        let f32_bytes = rows.len() * 4;
        let qt = QuantTable::quantize_table(&rows, 64);
        let st = QuantScanTable::from_rows(&rows, 64);
        assert!(
            qt.storage_bytes() < f32_bytes * 3 / 10,
            "{}",
            qt.storage_bytes()
        );
        assert!(
            st.storage_bytes() < f32_bytes * 3 / 10,
            "{}",
            st.storage_bytes()
        );
    }
}

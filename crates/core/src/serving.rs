//! Thread-safe serving front-end with memoization.
//!
//! In the paper's deployment, PKGM serves the *same* per-item vectors to many
//! downstream consumers (classification, alignment, recommendation all query
//! the items in their batches). Since service vectors are pure functions of
//! the frozen model, a small cache in front of [`KnowledgeService`] turns the
//! `O(k·d²)` relation-module matvecs into a hash lookup for hot items.

use crate::service::KnowledgeService;
use parking_lot::Mutex;
use pkgm_store::fxhash::FxHashMap;
use pkgm_store::EntityId;
use std::sync::Arc;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that computed fresh vectors.
    pub misses: u64,
    /// Entries evicted due to the capacity bound.
    pub evictions: u64,
}

/// A memoizing, thread-safe wrapper around [`KnowledgeService`].
///
/// Eviction is whole-generation: when the map reaches capacity it is cleared
/// (a "flush" cache). That keeps the hot path to one hash probe with no LRU
/// bookkeeping — appropriate for serving scans where batches sweep items in
/// waves.
pub struct CachedService {
    inner: KnowledgeService,
    capacity: usize,
    state: Mutex<CacheState>,
}

struct CacheState {
    sequences: FxHashMap<u32, Arc<Vec<Vec<f32>>>>,
    condensed: FxHashMap<u32, Arc<Vec<f32>>>,
    stats: CacheStats,
}

impl CachedService {
    /// Wrap a service with a cache bounded to `capacity` items per shape.
    pub fn new(inner: KnowledgeService, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            inner,
            capacity,
            state: Mutex::new(CacheState {
                sequences: FxHashMap::default(),
                condensed: FxHashMap::default(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &KnowledgeService {
        &self.inner
    }

    /// Cached sequence service (`2k` vectors, Fig. 2 shape).
    pub fn sequence_service(&self, item: EntityId) -> Arc<Vec<Vec<f32>>> {
        {
            let mut s = self.state.lock();
            if let Some(hit) = s.sequences.get(&item.0) {
                let hit = Arc::clone(hit);
                s.stats.hits += 1;
                return hit;
            }
            s.stats.misses += 1;
        }
        // Compute outside the lock; concurrent misses may compute twice,
        // which is benign (the function is pure).
        let fresh = Arc::new(self.inner.sequence_service(item));
        let mut s = self.state.lock();
        if s.sequences.len() >= self.capacity {
            s.stats.evictions += s.sequences.len() as u64;
            s.sequences.clear();
        }
        s.sequences.insert(item.0, Arc::clone(&fresh));
        fresh
    }

    /// Cached condensed service (`2d` vector, Fig. 3 shape).
    pub fn condensed_service(&self, item: EntityId) -> Arc<Vec<f32>> {
        {
            let mut s = self.state.lock();
            if let Some(hit) = s.condensed.get(&item.0) {
                let hit = Arc::clone(hit);
                s.stats.hits += 1;
                return hit;
            }
            s.stats.misses += 1;
        }
        let fresh = Arc::new(self.inner.condensed_service(item));
        let mut s = self.state.lock();
        if s.condensed.len() >= self.capacity {
            s.stats.evictions += s.condensed.len() as u64;
            s.condensed.clear();
        }
        s.condensed.insert(item.0, Arc::clone(&fresh));
        fresh
    }

    /// Snapshot of hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use pkgm_store::{KeyRelationSelector, StoreBuilder};

    fn service() -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..8u32 {
            b.add_raw(i, 0, 8 + i % 2);
            b.add_raw(i, 1, 10);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..8).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(1),
        );
        KnowledgeService::new(model, sel)
    }

    #[test]
    fn cache_returns_identical_vectors() {
        let cached = CachedService::new(service(), 16);
        let a = cached.sequence_service(EntityId(1));
        let b = cached.sequence_service(EntityId(1));
        assert_eq!(a, b);
        assert_eq!(*a, cached.inner().sequence_service(EntityId(1)));
        let stats = cached.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cache_evicts_at_capacity() {
        let cached = CachedService::new(service(), 2);
        for i in 0..6u32 {
            cached.condensed_service(EntityId(i));
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 6);
        assert!(stats.evictions >= 2, "expected evictions, got {stats:?}");
        // correctness survives eviction
        let v = cached.condensed_service(EntityId(0));
        assert_eq!(*v, cached.inner().condensed_service(EntityId(0)));
    }

    #[test]
    fn cache_is_thread_safe() {
        use rayon::prelude::*;
        let cached = CachedService::new(service(), 64);
        let results: Vec<Arc<Vec<f32>>> = (0..64u32)
            .into_par_iter()
            .map(|i| cached.condensed_service(EntityId(i % 8)))
            .collect();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(**r, cached.inner().condensed_service(EntityId(i as u32 % 8)));
        }
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert!(stats.hits > 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CachedService::new(service(), 0);
    }
}

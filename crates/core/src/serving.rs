//! Thread-safe serving front-end with memoization.
//!
//! In the paper's deployment, PKGM serves the *same* per-item vectors to many
//! downstream consumers (classification, alignment, recommendation all query
//! the items in their batches). Since service vectors are pure functions of
//! the frozen model, a small cache in front of [`KnowledgeService`] turns the
//! `O(k·d²)` relation-module matvecs into a hash lookup for hot items.
//!
//! The cache is **sharded**: items are distributed over up to
//! [`MAX_SHARDS`] independent `RwLock`-protected maps keyed by a
//! multiplicative hash of the item id. Hits take a single shard read lock
//! (shared, so concurrent readers never serialize); misses compute outside
//! any lock and take one shard write lock to publish. Counters are relaxed
//! atomics, so the hot path never contends on a global statistics lock.

use crate::service::{KnowledgeService, ServiceScratch};
use crate::snapshot::ServiceSnapshot;
use parking_lot::RwLock;
use pkgm_store::fxhash::{FxHashMap, FxHashSet};
use pkgm_store::EntityId;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on cache shards; small caches use fewer so each shard still
/// holds a useful number of entries.
pub const MAX_SHARDS: usize = 16;

/// Items per rayon task when computing batch misses.
const MISS_CHUNK: usize = 32;

/// Cache statistics.
///
/// Every request bumps **exactly one** of `hits`/`misses`/`degraded`, so
/// [`CacheStats::total_requests`] is the number of requests whose counter
/// increment the reader observed. Counters are written with `Release` and
/// read with `Acquire` (see [`CachedService::stats`]), so a reader that is
/// ordered after a request — through any synchronizing edge, such as the
/// hot-swap quiesce in the serving daemon — is guaranteed to count it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that computed fresh vectors.
    pub misses: u64,
    /// Entries evicted due to the capacity bound.
    pub evictions: u64,
    /// Requests answered with the documented fallback (unknown item id, or
    /// id beyond the model's embedding table). Counted separately from hits
    /// and misses so operators can alert on catalog/model skew.
    pub degraded: u64,
}

impl CacheStats {
    /// Requests observed: each bumps exactly one of hits/misses/degraded.
    pub fn total_requests(&self) -> u64 {
        self.hits + self.misses + self.degraded
    }

    /// Counts accumulated beyond an `earlier` snapshot of these counters
    /// (field-wise saturating difference) — how the serving daemon folds
    /// the increments that land between a hot-swap's stats snapshot and
    /// the retired generation's quiescence.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            degraded: self.degraded.saturating_sub(earlier.degraded),
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    /// Fold another generation's counters in — how the serving daemon
    /// accumulates stats across snapshot hot-swaps.
    fn add_assign(&mut self, rhs: CacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        self.degraded += rhs.degraded;
    }
}

/// A cached sequence service (`2k` vectors) behind a shared pointer.
type SequenceVectors = Arc<Vec<Vec<f32>>>;
/// A cached condensed service (one `2d` vector) behind a shared pointer.
type CondensedVector = Arc<Vec<f32>>;

/// One cache shard: independent maps per service shape.
#[derive(Default)]
struct Shard {
    sequences: RwLock<FxHashMap<u32, SequenceVectors>>,
    condensed: RwLock<FxHashMap<u32, CondensedVector>>,
}

/// A memoizing, thread-safe wrapper around [`KnowledgeService`].
///
/// Eviction is per-shard whole-generation: when a shard reaches its share of
/// the capacity it is cleared (a "flush" cache). That keeps the hot path to
/// one hash probe with no LRU bookkeeping — appropriate for serving scans
/// where batches sweep items in waves — while sharding confines each flush
/// to `1/n_shards` of the cached entries.
pub struct CachedService {
    inner: KnowledgeService,
    /// Optional precomputed condensed table: misses whose id it covers are
    /// served by a row copy (or deterministic dequantization for quantized
    /// snapshots) instead of live matvecs. Sequence services always compute
    /// live — snapshots store only the condensed shape.
    snapshot: Option<ServiceSnapshot>,
    shards: Vec<Shard>,
    /// Capacity bound applied independently to each shard (per shape).
    shard_capacity: usize,
    /// Shared zero fallbacks, returned (not cached) for degraded requests.
    fallback_sequence: SequenceVectors,
    fallback_condensed: CondensedVector,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    degraded: AtomicU64,
}

impl CachedService {
    /// Wrap a service with a cache bounded to `capacity` items per shape.
    ///
    /// The shard count scales with capacity (one shard per four entries, up
    /// to [`MAX_SHARDS`]) so tiny caches keep their full capacity in a
    /// single shard.
    pub fn new(inner: KnowledgeService, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let n_shards = (capacity / 4).clamp(1, MAX_SHARDS);
        let (d, k) = (inner.dim(), inner.k());
        Self {
            inner,
            snapshot: None,
            shards: (0..n_shards).map(|_| Shard::default()).collect(),
            shard_capacity: capacity / n_shards,
            fallback_sequence: Arc::new(vec![vec![0.0; d]; 2 * k]),
            fallback_condensed: Arc::new(vec![0.0; 2 * d]),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Wrap a service with a cache *and* a precomputed condensed table:
    /// condensed misses covered by `snapshot` skip the live matvecs
    /// entirely (dense row copy, or deterministic dequantization for
    /// quantized snapshots), turning the miss path into pure memory reads.
    pub fn with_snapshot(
        inner: KnowledgeService,
        capacity: usize,
        snapshot: ServiceSnapshot,
    ) -> Self {
        assert_eq!(
            snapshot.dim(),
            inner.dim(),
            "snapshot dim must match the service"
        );
        let mut cached = Self::new(inner, capacity);
        cached.snapshot = Some(snapshot);
        cached
    }

    /// The wrapped service.
    pub fn inner(&self) -> &KnowledgeService {
        &self.inner
    }

    /// The attached condensed-table snapshot, if any.
    pub fn snapshot(&self) -> Option<&ServiceSnapshot> {
        self.snapshot.as_ref()
    }

    /// Serve a condensed miss from the attached snapshot when it covers
    /// `id` (shard-aware); `false` means the caller must compute live.
    fn snapshot_condensed_into(&self, id: u32, out: &mut Vec<f32>) -> bool {
        match &self.snapshot {
            Some(snap) if snap.covers(id) => {
                snap.lookup_exact(EntityId(id), out);
                true
            }
            _ => false,
        }
    }

    /// Number of shards the cache was built with.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Fibonacci-style multiplicative hash: consecutive item ids (the common
    /// access pattern for catalog sweeps) land in different shards.
    fn shard_of(&self, item: u32) -> &Shard {
        let h = (item.wrapping_mul(0x9E37_79B1) >> 16) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// True when `item` cannot be served from the model: the id is beyond
    /// the embedding table (indexing it would panic) or the selector has no
    /// key relations for it (an id the catalog never registered). Such
    /// requests get the documented zero fallback and bump
    /// [`CacheStats::degraded`] instead of panicking.
    fn is_degraded(&self, item: EntityId) -> bool {
        item.0 as usize >= self.inner.model().n_entities()
            || self.inner.selector().for_item(item).is_empty()
    }

    /// Cached sequence service (`2k` vectors, Fig. 2 shape).
    ///
    /// Unknown or out-of-range items return a shared all-zero fallback of
    /// the same shape and increment [`CacheStats::degraded`].
    pub fn sequence_service(&self, item: EntityId) -> Arc<Vec<Vec<f32>>> {
        if self.is_degraded(item) {
            self.degraded.fetch_add(1, Ordering::Release);
            return Arc::clone(&self.fallback_sequence);
        }
        let shard = self.shard_of(item.0);
        if let Some(hit) = shard.sequences.read().get(&item.0) {
            self.hits.fetch_add(1, Ordering::Release);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Release);
        // Compute outside any lock; concurrent misses may compute twice,
        // which is benign (the function is pure).
        let fresh = Arc::new(self.inner.sequence_service(item));
        let mut map = shard.sequences.write();
        if !map.contains_key(&item.0) && map.len() >= self.shard_capacity {
            self.evictions
                .fetch_add(map.len() as u64, Ordering::Release);
            map.clear();
        }
        map.insert(item.0, Arc::clone(&fresh));
        fresh
    }

    /// Cached condensed service (`2d` vector, Fig. 3 shape).
    ///
    /// Unknown or out-of-range items return a shared all-zero fallback and
    /// increment [`CacheStats::degraded`].
    pub fn condensed_service(&self, item: EntityId) -> Arc<Vec<f32>> {
        if self.is_degraded(item) {
            self.degraded.fetch_add(1, Ordering::Release);
            return Arc::clone(&self.fallback_condensed);
        }
        let shard = self.shard_of(item.0);
        if let Some(hit) = shard.condensed.read().get(&item.0) {
            self.hits.fetch_add(1, Ordering::Release);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Release);
        let mut v = Vec::new();
        let fresh = if self.snapshot_condensed_into(item.0, &mut v) {
            Arc::new(v)
        } else {
            Arc::new(self.inner.condensed_service(item))
        };
        self.publish_condensed(item.0, &fresh);
        fresh
    }

    fn publish_condensed(&self, key: u32, value: &Arc<Vec<f32>>) {
        let mut map = self.shard_of(key).condensed.write();
        if !map.contains_key(&key) && map.len() >= self.shard_capacity {
            self.evictions
                .fetch_add(map.len() as u64, Ordering::Release);
            map.clear();
        }
        map.insert(key, Arc::clone(value));
    }

    /// Cached sequence services for a batch, order preserved. Hits resolve
    /// with shard read locks; unique misses are computed in parallel, then
    /// published.
    pub fn sequence_service_batch(&self, items: &[EntityId]) -> Vec<Arc<Vec<Vec<f32>>>> {
        let mut out: Vec<Option<Arc<Vec<Vec<f32>>>>> = Vec::with_capacity(items.len());
        let mut missing: Vec<u32> = Vec::new();
        let mut seen = FxHashSet::default();
        for &item in items {
            if self.is_degraded(item) {
                self.degraded.fetch_add(1, Ordering::Release);
                out.push(Some(Arc::clone(&self.fallback_sequence)));
                continue;
            }
            let shard = self.shard_of(item.0);
            match shard.sequences.read().get(&item.0) {
                Some(hit) => {
                    self.hits.fetch_add(1, Ordering::Release);
                    out.push(Some(Arc::clone(hit)));
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Release);
                    out.push(None);
                    if seen.insert(item.0) {
                        missing.push(item.0);
                    }
                }
            }
        }
        if !missing.is_empty() {
            let computed = self.compute_sequences(&missing);
            return fill_batch(out, items, &computed);
        }
        out.into_iter()
            .map(|s| s.expect("all slots resolved"))
            .collect()
    }

    fn compute_sequences(&self, missing: &[u32]) -> FxHashMap<u32, SequenceVectors> {
        let fresh: Vec<Vec<(u32, SequenceVectors)>> = missing
            .par_chunks(MISS_CHUNK)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&id| (id, Arc::new(self.inner.sequence_service(EntityId(id)))))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut computed = FxHashMap::default();
        for (id, value) in fresh.into_iter().flatten() {
            let mut map = self.shard_of(id).sequences.write();
            if !map.contains_key(&id) && map.len() >= self.shard_capacity {
                self.evictions
                    .fetch_add(map.len() as u64, Ordering::Release);
                map.clear();
            }
            map.insert(id, Arc::clone(&value));
            drop(map);
            computed.insert(id, value);
        }
        computed
    }

    /// Cached condensed services for a batch, order preserved. Unique misses
    /// are computed in parallel with per-thread scratch buffers.
    pub fn condensed_service_batch(&self, items: &[EntityId]) -> Vec<Arc<Vec<f32>>> {
        let mut out: Vec<Option<Arc<Vec<f32>>>> = Vec::with_capacity(items.len());
        let mut missing: Vec<u32> = Vec::new();
        let mut seen = FxHashSet::default();
        for &item in items {
            if self.is_degraded(item) {
                self.degraded.fetch_add(1, Ordering::Release);
                out.push(Some(Arc::clone(&self.fallback_condensed)));
                continue;
            }
            let shard = self.shard_of(item.0);
            match shard.condensed.read().get(&item.0) {
                Some(hit) => {
                    self.hits.fetch_add(1, Ordering::Release);
                    out.push(Some(Arc::clone(hit)));
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Release);
                    out.push(None);
                    if seen.insert(item.0) {
                        missing.push(item.0);
                    }
                }
            }
        }
        if missing.is_empty() {
            return out
                .into_iter()
                .map(|s| s.expect("all slots resolved"))
                .collect();
        }
        let d = self.inner.dim();
        let fresh: Vec<Vec<(u32, CondensedVector)>> = missing
            .par_chunks(MISS_CHUNK)
            .map(|chunk| {
                let mut scratch = ServiceScratch::new(d);
                chunk
                    .iter()
                    .map(|&id| {
                        let mut v = vec![0.0f32; 2 * d];
                        if !self.snapshot_condensed_into(id, &mut v) {
                            self.inner
                                .condensed_service_into(EntityId(id), &mut scratch, &mut v);
                        }
                        (id, Arc::new(v))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut computed = FxHashMap::default();
        for (id, value) in fresh.into_iter().flatten() {
            self.publish_condensed(id, &value);
            computed.insert(id, value);
        }
        fill_batch(out, items, &computed)
    }

    /// Snapshot of hit/miss/eviction/degraded counters.
    ///
    /// Increments are `Release` and these loads are `Acquire`, so any
    /// request whose completion is ordered before this call — e.g. every
    /// batch that finished before a hot-swap quiesced this generation —
    /// is guaranteed to be counted. Concurrent in-flight requests may or
    /// may not appear (they are still monotonic: a later read never shows
    /// less), which is why the serving daemon folds a retired
    /// generation's stats only after its last batch reference drops.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Acquire),
            misses: self.misses.load(Ordering::Acquire),
            evictions: self.evictions.load(Ordering::Acquire),
            degraded: self.degraded.load(Ordering::Acquire),
        }
    }
}

/// Resolve remaining `None` slots from the freshly computed map.
fn fill_batch<T>(
    slots: Vec<Option<Arc<T>>>,
    items: &[EntityId],
    computed: &FxHashMap<u32, Arc<T>>,
) -> Vec<Arc<T>> {
    slots
        .into_iter()
        .zip(items)
        .map(|(slot, item)| match slot {
            Some(v) => v,
            None => Arc::clone(&computed[&item.0]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use pkgm_store::{KeyRelationSelector, StoreBuilder};

    fn service() -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..8u32 {
            b.add_raw(i, 0, 8 + i % 2);
            b.add_raw(i, 1, 10);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..8).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(1),
        );
        KnowledgeService::new(model, sel)
    }

    #[test]
    fn cache_returns_identical_vectors() {
        let cached = CachedService::new(service(), 16);
        let a = cached.sequence_service(EntityId(1));
        let b = cached.sequence_service(EntityId(1));
        assert_eq!(a, b);
        assert_eq!(*a, cached.inner().sequence_service(EntityId(1)));
        let stats = cached.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cache_evicts_at_capacity() {
        let cached = CachedService::new(service(), 2);
        for i in 0..6u32 {
            cached.condensed_service(EntityId(i));
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 6);
        assert!(stats.evictions >= 2, "expected evictions, got {stats:?}");
        // correctness survives eviction
        let v = cached.condensed_service(EntityId(0));
        assert_eq!(*v, cached.inner().condensed_service(EntityId(0)));
    }

    #[test]
    fn cache_is_thread_safe() {
        use rayon::prelude::*;
        let cached = CachedService::new(service(), 64);
        let results: Vec<Arc<Vec<f32>>> = (0..64u32)
            .into_par_iter()
            .map(|i| cached.condensed_service(EntityId(i % 8)))
            .collect();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                **r,
                cached.inner().condensed_service(EntityId(i as u32 % 8))
            );
        }
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert!(stats.hits > 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CachedService::new(service(), 0);
    }

    #[test]
    fn shard_count_scales_with_capacity() {
        let svc = service();
        assert_eq!(CachedService::new(svc.clone(), 1).n_shards(), 1);
        assert_eq!(CachedService::new(svc.clone(), 16).n_shards(), 4);
        assert_eq!(CachedService::new(svc, 8192).n_shards(), MAX_SHARDS);
    }

    #[test]
    fn batch_matches_per_item_and_counts_stats() {
        let cached = CachedService::new(service(), 64);
        let items: Vec<EntityId> = (0..8u32).chain(0..8u32).map(EntityId).collect();
        let cond = cached.condensed_service_batch(&items);
        let seq = cached.sequence_service_batch(&items);
        for (i, &item) in items.iter().enumerate() {
            assert_eq!(*cond[i], cached.inner().condensed_service(item));
            assert_eq!(*seq[i], cached.inner().sequence_service(item));
        }
        let stats = cached.stats();
        // Each shape saw 16 requests over 8 unique ids; duplicates within one
        // batch resolve from the computed set, counted as misses.
        assert_eq!(stats.hits + stats.misses, 32);
        assert!(stats.misses >= 16);
        // A second batch is all hits.
        let before = cached.stats().hits;
        cached.condensed_service_batch(&items);
        assert_eq!(cached.stats().hits, before + items.len() as u64);
    }

    #[test]
    fn unknown_items_get_fallback_and_degraded_counter() {
        let cached = CachedService::new(service(), 16);
        let d = cached.inner().dim();
        let k = cached.inner().k();
        // Out of embedding range entirely.
        let far = EntityId(u32::MAX);
        let v = cached.condensed_service(far);
        assert_eq!(v.len(), 2 * d);
        assert!(v.iter().all(|&x| x == 0.0));
        let seq = cached.sequence_service(far);
        assert_eq!(seq.len(), 2 * k);
        assert!(seq.iter().all(|row| row.iter().all(|&x| x == 0.0)));
        // In embedding range but never registered as an item (a value id).
        let value_entity = EntityId(9);
        cached.condensed_service(value_entity);
        let stats = cached.stats();
        assert_eq!(stats.degraded, 3);
        // Degraded requests are neither hits nor misses and are not cached.
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn batch_keeps_order_and_length_with_degraded_items() {
        let cached = CachedService::new(service(), 16);
        let items = [EntityId(0), EntityId(u32::MAX), EntityId(1), EntityId(9)];
        let cond = cached.condensed_service_batch(&items);
        assert_eq!(cond.len(), items.len());
        assert_eq!(*cond[0], cached.inner().condensed_service(items[0]));
        assert!(cond[1].iter().all(|&x| x == 0.0));
        assert_eq!(*cond[2], cached.inner().condensed_service(items[2]));
        let seq = cached.sequence_service_batch(&items);
        assert_eq!(seq.len(), items.len());
        assert_eq!(*seq[0], cached.inner().sequence_service(items[0]));
        assert!(seq[3].iter().all(|row| row.iter().all(|&x| x == 0.0)));
        // 2 degraded ids × 2 batch calls.
        assert_eq!(cached.stats().degraded, 4);
    }

    #[test]
    fn serving_survives_a_panic_while_a_shard_lock_is_held() {
        let cached = CachedService::new(service(), 16);
        let item = EntityId(1);
        let before = cached.condensed_service(item);
        // Panic while holding the shard's write lock: with std locks this
        // would poison the shard; serving must keep answering regardless.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cached.shard_of(item.0).condensed.write();
            panic!("worker died mid-publish");
        }));
        assert!(panicked.is_err());
        let after = cached.condensed_service(item);
        assert_eq!(*before, *after);
        let batch = cached.condensed_service_batch(&[item, EntityId(2)]);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn snapshot_backed_cache_serves_snapshot_rows() {
        let svc = service();
        let snap = ServiceSnapshot::build(&svc).quantize();
        let cached = CachedService::with_snapshot(svc.clone(), 16, snap.clone());
        assert!(cached.snapshot().is_some_and(ServiceSnapshot::is_quantized));
        let mut expect = Vec::new();
        for i in 0..8u32 {
            snap.lookup_exact(EntityId(i), &mut expect);
            let got = cached.condensed_service(EntityId(i));
            assert_eq!(*got, expect, "miss for item {i} must serve snapshot row");
            // Second call is a cache hit returning the same bits.
            assert_eq!(*cached.condensed_service(EntityId(i)), expect);
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.hits, 8);
        // Degraded ids keep the zero fallback — the snapshot is not consulted.
        let far = cached.condensed_service(EntityId(u32::MAX));
        assert!(far.iter().all(|&x| x == 0.0));
        // Batch path serves the same snapshot rows.
        let fresh = CachedService::with_snapshot(svc, 16, snap.clone());
        let items: Vec<EntityId> = (0..8u32).map(EntityId).collect();
        for (i, v) in fresh.condensed_service_batch(&items).iter().enumerate() {
            snap.lookup_exact(items[i], &mut expect);
            assert_eq!(**v, expect);
        }
        // Sequence services always compute live.
        assert_eq!(
            *fresh.sequence_service(EntityId(3)),
            fresh.inner().sequence_service(EntityId(3))
        );
    }

    #[test]
    fn concurrent_stress_mixes_batch_and_single() {
        let cached = std::sync::Arc::new(CachedService::new(service(), 64));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let cached = std::sync::Arc::clone(&cached);
                s.spawn(move || {
                    for round in 0..20u32 {
                        let base = (t + round) % 8;
                        if round % 2 == 0 {
                            let items: Vec<EntityId> =
                                (0..8u32).map(|i| EntityId((base + i) % 8)).collect();
                            for (j, v) in cached.condensed_service_batch(&items).iter().enumerate()
                            {
                                assert_eq!(**v, cached.inner().condensed_service(items[j]));
                            }
                        } else {
                            let v = cached.sequence_service(EntityId(base));
                            assert_eq!(*v, cached.inner().sequence_service(EntityId(base)));
                        }
                    }
                });
            }
        });
        let stats = cached.stats();
        assert!(stats.hits > 0, "stress run should hit the cache: {stats:?}");
        assert!(stats.misses > 0);
    }
}

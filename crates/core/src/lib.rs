//! # pkgm-core — the Pre-trained Knowledge Graph Model (PKGM)
//!
//! Implements the ICDE 2021 paper's primary contribution: pre-training a
//! product knowledge graph so that downstream tasks consume *knowledge
//! service vectors* computed in embedding space instead of raw triples.
//!
//! ## The two modules (paper §II, Table I)
//!
//! | Module   | Pre-training score                    | Serving function             |
//! |----------|---------------------------------------|------------------------------|
//! | Triple   | `f_T(h,r,t) = ‖h + r − t‖₁` (TransE)  | `S_T(h,r) = h + r`           |
//! | Relation | `f_R(h,r)   = ‖M_r·h − r‖₁`           | `S_R(h,r) = M_r·h − r`       |
//!
//! Joint score `f = f_T + f_R`, trained with the margin loss
//! `L = Σ [f(h,r,t) + γ − f(h′,r′,t′)]₊` over uniformly corrupted negatives
//! (head, tail, *or relation* replaced — Eq. 4).
//!
//! ## Crate layout
//!
//! * [`model`] — embeddings, transfer matrices, score & service functions;
//! * [`negative`] — the paper's uniform h/t/r corruption sampler, with a
//!   batch API reporting which slot each corruption replaced;
//! * [`kernels`] — fused, relation-blocked score+gradient kernels with
//!   preallocated scratch accumulation (plus bit-exact reference and
//!   pre-kernel baseline twins for parity tests and benchmarking);
//! * [`trainer`] — margin-loss training with hand-derived gradients, lazy
//!   row-wise Adam, rayon data-parallel minibatches over the fused kernels;
//! * [`eval`] — filtered/raw link prediction (MRR, Hits@k, mean rank) and
//!   relation-existence AUC (evaluating the relation module);
//! * [`eval_kernels`] — fused, candidate-blocked ranking kernels with
//!   exact early exit, relation-grouped head ranking and sorted-merge
//!   filtering (plus bit-exact reference and pre-kernel baseline twins),
//!   and the int8 two-phase quantized kernels built on [`quant`];
//! * [`quant`] — blockwise symmetric int8 quantization with certified L1
//!   lower bounds: prune candidates in the i8 domain, rescore survivors
//!   exactly in f32, keep ranks bit-identical at ~4× less memory traffic;
//! * [`simd`] — runtime-dispatched SIMD kernels (AVX2/SSE4.1 via
//!   `is_x86_feature_detected!`, `PKGM_FORCE_SCALAR` override) with
//!   bit-identical portable scalar twins for every hot primitive;
//! * [`service`] — the serving layer: per-item `2k` service vectors for
//!   sequence models (Fig. 2) and the condensed single vector (Eq. 8–9, 20,
//!   Fig. 3), plus tail-entity completion;
//! * [`serving`] — a sharded, thread-safe memoizing front-end (with batch
//!   entry points) for deployment-style fan-out to many downstream
//!   consumers;
//! * [`snapshot`] — every entity's condensed service precomputed into one
//!   contiguous table for O(1) zero-compute serving;
//! * [`protocol`] — the daemon's length-prefixed binary wire format, with
//!   total decoding into typed errors;
//! * [`batcher`] — dynamic batching with bounded queues and shed-not-stall
//!   admission control, coalescing concurrent lookups into batch calls;
//! * [`daemon`] — the network serving daemon: thread-per-connection TCP
//!   front end, batch workers, atomic snapshot hot-swap under live
//!   traffic, and the matching [`DaemonClient`];
//! * [`baselines`] — TransE (ablation: triple module only), TransH and
//!   DistMult for link-prediction context;
//! * [`serialize`] — compact binary snapshots of trained models, services
//!   and serving tables;
//! * [`artifact`] — atomic (temp + fsync + rename), CRC32-checksummed,
//!   versioned on-disk container shared by every artifact kind;
//! * [`fault`] — deterministic fault-injection ([`fault::FaultPlan`] /
//!   [`fault::FaultyIo`]) and the `pkgm faultcheck` recovery battery;
//! * [`retry`] — the client-side resilience policy: jittered exponential
//!   backoff retrying only provably-unexecuted failures, under a deadline
//!   budget, plus the [`retry::RetryClient`] wrapper over [`DaemonClient`];
//! * [`netcheck`] — the network-layer chaos battery: a deterministic
//!   in-process chaos proxy (dropped/truncated/delayed/corrupted frames,
//!   mid-frame resets, slowloris writes) and the `pkgm netcheck` scenarios;
//! * [`router`] — the shard-router tier: splits batch lookups across
//!   entity-range shard daemons, merges rows back into request order,
//!   follows typed `WrongShard` redirects with bounded map refreshes, and
//!   supervises one spawned daemon per `.shardKofN` file;
//! * [`ooc`] — out-of-core pre-training: streamed triple sources, an
//!   entity-range partitioned embedding table paged under an explicit
//!   memory budget, and the block training schedule (bit-identical to the
//!   resident trainer when one block holds everything).

pub mod artifact;
pub mod baselines;
pub mod batcher;
pub mod daemon;
pub mod eval;
pub mod eval_kernels;
pub mod fault;
pub mod kernels;
pub mod mmap;
pub mod model;
pub mod negative;
pub mod netcheck;
pub mod ooc;
pub mod protocol;
pub mod quant;
pub mod retry;
pub mod router;
pub mod serialize;
pub mod service;
pub mod serving;
pub mod simd;
pub mod snapshot;
pub mod snapshot3;
pub mod trainer;

pub use artifact::{ArtifactError, ArtifactIo, ArtifactKind, StdIo};
pub use batcher::{BatchStats, DynamicBatcher, SubmitError, WaitError};
pub use daemon::{ClientError, Daemon, DaemonClient, DaemonConfig, ServiceHolder, ShardRedirect};
pub use eval::{LinkPredictionReport, RelationExistenceReport};
pub use eval_kernels::{EvalError, EvalScratch, EvalScratchPool, PruneStats, QuantEvalModel};
pub use fault::{Fault, FaultCheckReport, FaultPlan, FaultyIo};
pub use kernels::{ChunkGrads, ScratchPool, TrainScratch};
pub use model::{PkgmConfig, PkgmModel};
pub use negative::{CorruptedPair, Corruption, NegativeSampler};
pub use netcheck::{ChaosProxy, NetFault, NetFaultPlan};
pub use ooc::{OocConfig, OocError, OocReport, OocTrainer, SyntheticTriples, TripleSource};
pub use protocol::{DeadlineStage, ProtocolError, Request, Response};
pub use quant::{QuantScanTable, QuantTable, QUANT_BLOCK};
pub use retry::{RetryClient, RetryPolicy};
pub use router::{RouterError, RouterStats, ShardMap, ShardRouter, Supervisor};
pub use service::{KnowledgeService, ServiceScratch};
pub use serving::{CacheStats, CachedService};
pub use simd::{SimdDispatch, SimdLevel};
pub use snapshot::{ServiceSnapshot, ShardSpec, SnapshotBacking};
pub use snapshot3::{
    open_mapped_snapshot, shard_ranges, snapshot_to_ss3_bytes, Ss3DenseWriter, Ss3QuantWriter,
};
pub use trainer::{
    load_latest_checkpoint, CheckpointConfig, CheckpointScan, GradKernel, ResumeState, TrainConfig,
    TrainError, TrainReport, Trainer,
};

//! Negative sampling: the paper corrupts a positive `(h,r,t)` by replacing
//! the head or tail with a random entity, **or the relation with a random
//! relation** (Eq. 4) — the relation corruption is what trains the relation
//! module to push `‖M_r·h − r‖₁` *up* for relations `h` does not have.

use pkgm_store::{Triple, TripleStore};
use rand::Rng;

/// Which slot a corruption replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Head entity replaced.
    Head,
    /// Tail entity replaced.
    Tail,
    /// Relation replaced.
    Relation,
}

/// One training pair: a positive triple, its generated corruption, and which
/// slot was replaced. The slot tells the fused kernels what is reusable —
/// a tail corruption shares `(h, r)` with its positive, so the cached
/// `M_r·h` projection (and the whole relation-module score) carries over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptedPair {
    /// The positive triple.
    pub pos: Triple,
    /// The corrupted negative.
    pub neg: Triple,
    /// Which slot of `pos` was replaced to produce `neg`.
    pub slot: Corruption,
}

/// Uniform corruption sampler over a store's id spaces.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    n_entities: u32,
    n_relations: u32,
    /// Probability of corrupting the relation (the remaining mass splits
    /// evenly between head and tail).
    pub relation_prob: f64,
    /// If true, resample until the corrupted triple is absent from the
    /// training graph ("filtered" negatives; avoids false negatives).
    pub filtered: bool,
}

impl NegativeSampler {
    /// Sampler matching a store's id spaces. Defaults: 20% relation
    /// corruptions, filtered sampling on.
    pub fn new(store: &TripleStore) -> Self {
        Self {
            n_entities: store.n_entities(),
            n_relations: store.n_relations(),
            relation_prob: 0.2,
            filtered: true,
        }
    }

    /// Set the relation-corruption probability (0 disables relation
    /// negatives entirely — used by the TransE ablation).
    pub fn with_relation_prob(mut self, p: f64) -> Self {
        self.relation_prob = p;
        self
    }

    /// Corrupt `pos` into a negative. Returns the negative and which slot
    /// was replaced. With `filtered`, retries (bounded) until the result is
    /// not a known positive in `store`.
    pub fn corrupt(
        &self,
        pos: Triple,
        store: &TripleStore,
        rng: &mut impl Rng,
    ) -> (Triple, Corruption) {
        for _ in 0..64 {
            let (neg, slot) = self.corrupt_once(pos, rng);
            if neg == pos {
                continue;
            }
            if !self.filtered || !store.contains(neg) {
                return (neg, slot);
            }
        }
        // Pathological graphs (nearly complete): fall back to unfiltered.
        self.corrupt_once(pos, rng)
    }

    /// Generate `negatives` corruptions for every positive, in positive
    /// order, appending [`CorruptedPair`]s to `out` (which is cleared
    /// first).
    ///
    /// The RNG stream is consumed exactly as the equivalent loop of
    /// [`NegativeSampler::corrupt`] calls would consume it, so swapping a
    /// per-pair sampling loop for this batch API changes no random choices —
    /// the trainer's `(seed, epoch, batch, chunk)` determinism contract is
    /// untouched.
    pub fn corrupt_batch_into(
        &self,
        positives: impl IntoIterator<Item = Triple>,
        store: &TripleStore,
        negatives: usize,
        rng: &mut impl Rng,
        out: &mut Vec<CorruptedPair>,
    ) {
        out.clear();
        for pos in positives {
            for _ in 0..negatives {
                let (neg, slot) = self.corrupt(pos, store, rng);
                out.push(CorruptedPair { pos, neg, slot });
            }
        }
    }

    fn corrupt_once(&self, pos: Triple, rng: &mut impl Rng) -> (Triple, Corruption) {
        let roll: f64 = rng.gen();
        if roll < self.relation_prob && self.n_relations > 1 {
            let mut t = pos;
            t.relation = pkgm_store::RelationId(rng.gen_range(0..self.n_relations));
            (t, Corruption::Relation)
        } else if rng.gen_bool(0.5) {
            let mut t = pos;
            t.head = pkgm_store::EntityId(rng.gen_range(0..self.n_entities));
            (t, Corruption::Head)
        } else {
            let mut t = pos;
            t.tail = pkgm_store::EntityId(rng.gen_range(0..self.n_entities));
            (t, Corruption::Tail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgm_store::StoreBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn store() -> TripleStore {
        let mut b = StoreBuilder::new();
        for h in 0..20u32 {
            b.add_raw(h, h % 3, 20 + h % 5);
        }
        b.build()
    }

    #[test]
    fn negatives_differ_from_positive_and_are_filtered() {
        let s = store();
        let sampler = NegativeSampler::new(&s);
        let mut rng = SmallRng::seed_from_u64(1);
        let pos = s.triples()[0];
        for _ in 0..200 {
            let (neg, _) = sampler.corrupt(pos, &s, &mut rng);
            assert_ne!(neg, pos);
            assert!(
                !s.contains(neg),
                "filtered sampler returned a known positive"
            );
        }
    }

    #[test]
    fn exactly_one_slot_changes() {
        let s = store();
        let sampler = NegativeSampler::new(&s);
        let mut rng = SmallRng::seed_from_u64(2);
        let pos = s.triples()[3];
        for _ in 0..200 {
            let (neg, slot) = sampler.corrupt(pos, &s, &mut rng);
            let changed = [
                (neg.head != pos.head, Corruption::Head),
                (neg.tail != pos.tail, Corruption::Tail),
                (neg.relation != pos.relation, Corruption::Relation),
            ];
            assert_eq!(changed.iter().filter(|(c, _)| *c).count(), 1);
            let (_, expect) = changed.iter().find(|(c, _)| *c).unwrap();
            assert_eq!(slot, *expect);
        }
    }

    #[test]
    fn relation_prob_controls_relation_corruptions() {
        let s = store();
        let mut rng = SmallRng::seed_from_u64(3);
        let pos = s.triples()[0];

        let never = NegativeSampler::new(&s).with_relation_prob(0.0);
        for _ in 0..100 {
            let (_, slot) = never.corrupt(pos, &s, &mut rng);
            assert_ne!(slot, Corruption::Relation);
        }

        let often = NegativeSampler::new(&s).with_relation_prob(0.9);
        let rels = (0..300)
            .filter(|_| often.corrupt(pos, &s, &mut rng).1 == Corruption::Relation)
            .count();
        assert!(
            rels > 200,
            "expected ~90% relation corruptions, got {rels}/300"
        );
    }

    #[test]
    fn corrupt_batch_matches_per_pair_loop_and_rng_stream() {
        let s = store();
        let sampler = NegativeSampler::new(&s);
        let positives: Vec<Triple> = s.triples().iter().copied().take(7).collect();
        let negatives = 3;

        // The loop the batch API replaces.
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut expect = Vec::new();
        for &pos in &positives {
            for _ in 0..negatives {
                let (neg, slot) = sampler.corrupt(pos, &s, &mut rng_a);
                expect.push(CorruptedPair { pos, neg, slot });
            }
        }

        let mut rng_b = SmallRng::seed_from_u64(9);
        let mut got = vec![CorruptedPair {
            pos: positives[0],
            neg: positives[0],
            slot: Corruption::Head,
        }]; // stale content must be cleared
        sampler.corrupt_batch_into(
            positives.iter().copied(),
            &s,
            negatives,
            &mut rng_b,
            &mut got,
        );
        assert_eq!(got, expect);

        // Identical RNG streams: both generators continue in lockstep.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn unfiltered_sampler_never_retries_known_positives() {
        let s = store();
        let mut sampler = NegativeSampler::new(&s);
        sampler.filtered = false;
        let mut rng = SmallRng::seed_from_u64(4);
        // Just exercising the path; result only needs to differ from pos.
        let pos = s.triples()[0];
        let (neg, _) = sampler.corrupt(pos, &s, &mut rng);
        assert_ne!(neg, pos);
    }
}

//! The serving layer (paper §II-D/E): per-item knowledge service vectors.
//!
//! After pre-training, PKGM answers queries *in vector space, without
//! touching triple data*:
//!
//! * `S_T(h,r) = h + r` — the (possibly inferred) tail-entity embedding;
//! * `S_R(h,r) = M_r·h − r` — approaches **0** iff `h` has (or should have)
//!   relation `r`.
//!
//! For a target item the service emits vectors for its category's `k` key
//! relations, in two shapes:
//!
//! * **sequence service** (Fig. 2): `[S_1 … S_k, S_{k+1} … S_{2k}]` — the
//!   `2k` vectors appended to a sequence model's input embeddings;
//! * **condensed service** (Fig. 3, Eq. 8–9/20): pair up the two modules'
//!   vectors per relation, concatenate, and average:
//!   `S = (1/k) Σ_j [S_j ; S_{j+k}]` — a single `2d` vector concatenated to
//!   a single-embedding model's item embedding.

use crate::model::PkgmModel;
use pkgm_store::{EntityId, KeyRelationSelector, RelationId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Items per rayon task in the batch entry points: large enough to amortize
/// thread dispatch, small enough to balance uneven per-item work.
const BATCH_CHUNK: usize = 64;

/// Reusable per-thread buffers for service computation, so batch paths do
/// not allocate two `d`-vectors per (item, relation) pair.
#[derive(Debug, Clone)]
pub struct ServiceScratch {
    t: Vec<f32>,
    r: Vec<f32>,
}

impl ServiceScratch {
    /// Scratch space for a model of embedding dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            t: vec![0.0; dim],
            r: vec![0.0; dim],
        }
    }
}

/// A trained PKGM bundled with the key-relation selector — everything a
/// downstream task needs, with no access to the underlying triples.
///
/// ```
/// use pkgm_core::{KnowledgeService, PkgmConfig, PkgmModel};
/// use pkgm_store::{EntityId, KeyRelationSelector, StoreBuilder};
///
/// // A toy KG: items 0..4 with two properties each.
/// let mut b = StoreBuilder::new();
/// for i in 0..4u32 {
///     b.add_raw(i, 0, 4 + i % 2).add_raw(i, 1, 6);
/// }
/// let store = b.build();
/// let items: Vec<(EntityId, u32)> = (0..4).map(|i| (EntityId(i), 0)).collect();
/// let selector = KeyRelationSelector::build(&store, &items, 1, 2);
///
/// let model = PkgmModel::new(
///     store.n_entities() as usize,
///     store.n_relations() as usize,
///     PkgmConfig::new(8),
/// );
/// let service = KnowledgeService::new(model, selector);
///
/// // 2k vectors for sequence models, one 2d vector for single-embedding ones.
/// assert_eq!(service.sequence_service(EntityId(0)).len(), 2 * service.k());
/// assert_eq!(service.condensed_service(EntityId(0)).len(), 2 * service.dim());
/// // Completion works even for missing (h, r) pairs.
/// assert_eq!(service.predict_tail(EntityId(0), pkgm_store::RelationId(1), 3).len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeService {
    model: PkgmModel,
    selector: KeyRelationSelector,
}

impl KnowledgeService {
    /// Bundle a trained model with a selector.
    ///
    /// # Panics
    /// If the model has no relation module — serving requires both modules.
    pub fn new(model: PkgmModel, selector: KeyRelationSelector) -> Self {
        assert!(
            model.cfg.relation_module,
            "KnowledgeService requires the relation module (use PkgmConfig::new)"
        );
        Self { model, selector }
    }

    /// Number of key relations per item (the paper's k = 10).
    pub fn k(&self) -> usize {
        self.selector.k()
    }

    /// Embedding dimension d.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The underlying model.
    pub fn model(&self) -> &PkgmModel {
        &self.model
    }

    /// The key-relation selector.
    pub fn selector(&self) -> &KeyRelationSelector {
        &self.selector
    }

    /// The `k` triple-query vectors `[S_1 … S_k]` for `item`, zero-padded if
    /// the item's category has fewer than `k` key relations (or the item has
    /// no category).
    pub fn triple_vectors(&self, item: EntityId) -> Vec<Vec<f32>> {
        let d = self.dim();
        let rels = self.selector.for_item(item);
        let mut out = Vec::with_capacity(self.k());
        for &r in rels {
            out.push(self.model.service_t(item, r));
        }
        out.resize(self.k(), vec![0.0; d]);
        out
    }

    /// The `k` relation-query vectors `[S_{k+1} … S_{2k}]` for `item`,
    /// zero-padded like [`KnowledgeService::triple_vectors`].
    pub fn relation_vectors(&self, item: EntityId) -> Vec<Vec<f32>> {
        let d = self.dim();
        let rels = self.selector.for_item(item);
        let mut out = Vec::with_capacity(self.k());
        for &r in rels {
            out.push(self.model.service_r(item, r));
        }
        out.resize(self.k(), vec![0.0; d]);
        out
    }

    /// The full `2k`-vector sequence service (triple vectors first, then
    /// relation vectors — the paper's appending order).
    pub fn sequence_service(&self, item: EntityId) -> Vec<Vec<f32>> {
        let mut out = self.triple_vectors(item);
        out.extend(self.relation_vectors(item));
        out
    }

    /// Condensed single-vector service (Eq. 8–9 / Eq. 20):
    /// `S = (1/k) Σ_j [S_j ; S_{j+k}]`, a `2d` vector.
    pub fn condensed_service(&self, item: EntityId) -> Vec<f32> {
        let mut out = vec![0.0f32; 2 * self.dim()];
        let mut scratch = ServiceScratch::new(self.dim());
        self.condensed_service_into(item, &mut scratch, &mut out);
        out
    }

    /// Allocation-free condensed service: writes the `2d` vector into `out`
    /// using caller-provided scratch buffers. This is the hot path behind
    /// [`KnowledgeService::condensed_service_batch`] and snapshot builds.
    ///
    /// Zero-padded slots (categories with fewer than `k` key relations)
    /// contribute nothing to the sum, so they are skipped rather than
    /// materialized.
    ///
    /// # Panics
    /// If `out.len() != 2 * self.dim()`.
    pub fn condensed_service_into(
        &self,
        item: EntityId,
        scratch: &mut ServiceScratch,
        out: &mut [f32],
    ) {
        let d = self.dim();
        assert_eq!(out.len(), 2 * d, "condensed service output must be 2d");
        let k = self.k() as f32;
        out.fill(0.0);
        for &r in self.selector.for_item(item) {
            self.model.service_t_into(item, r, &mut scratch.t);
            self.model.service_r_into(item, r, &mut scratch.r);
            for i in 0..d {
                out[i] += scratch.t[i] / k;
                out[d + i] += scratch.r[i] / k;
            }
        }
    }

    /// Sequence services for a batch of items, computed in parallel with
    /// order preserved (`result[i]` belongs to `items[i]`).
    pub fn sequence_service_batch(&self, items: &[EntityId]) -> Vec<Vec<Vec<f32>>> {
        items
            .par_chunks(BATCH_CHUNK)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&it| self.sequence_service(it))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect()
    }

    /// Condensed services for a batch of items, computed in parallel with a
    /// per-thread [`ServiceScratch`] and order preserved.
    pub fn condensed_service_batch(&self, items: &[EntityId]) -> Vec<Vec<f32>> {
        let d = self.dim();
        items
            .par_chunks(BATCH_CHUNK)
            .map(|chunk| {
                let mut scratch = ServiceScratch::new(d);
                chunk
                    .iter()
                    .map(|&it| {
                        let mut out = vec![0.0f32; 2 * d];
                        self.condensed_service_into(it, &mut scratch, &mut out);
                        out
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect()
    }

    /// Condensed triple-module-only service (`d` dims) — the PKGM-T ablation
    /// for single-embedding models.
    pub fn condensed_triple(&self, item: EntityId) -> Vec<f32> {
        condense(&self.triple_vectors(item), self.dim(), self.k())
    }

    /// Condensed relation-module-only service (`d` dims) — the PKGM-R
    /// ablation for single-embedding models.
    pub fn condensed_relation(&self, item: EntityId) -> Vec<f32> {
        condense(&self.relation_vectors(item), self.dim(), self.k())
    }

    /// Tail-entity completion: the `topn` entities closest (L1) to
    /// `S_T(h,r)` — works whether or not `(h, r, ·)` exists in the KG, which
    /// is the paper's "completion during servicing".
    pub fn predict_tail(&self, h: EntityId, r: RelationId, topn: usize) -> Vec<(EntityId, f32)> {
        let d = self.dim();
        let mut base = vec![0.0f32; d];
        self.model.service_t_into(h, r, &mut base);
        let mut scored: Vec<(EntityId, f32)> = (0..u32::try_from(self.model.n_entities())
            .expect("entity count fits u32"))
            .map(|e| {
                let dist = crate::kernels::l1_dist(&base, self.model.ent(EntityId(e)));
                (EntityId(e), dist)
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored.truncate(topn);
        scored
    }

    /// Existence score `f_R(h,r) = ‖S_R(h,r)‖₁`; small means `h` has (or
    /// should have) relation `r`.
    pub fn relation_exists_score(&self, h: EntityId, r: RelationId) -> f32 {
        self.model.score_relation(h, r)
    }
}

fn condense(vectors: &[Vec<f32>], d: usize, k: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; d];
    for v in vectors {
        for i in 0..d {
            out[i] += v[i] / k as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PkgmConfig;
    use pkgm_store::{StoreBuilder, TripleStore};

    fn setup() -> (TripleStore, KnowledgeService) {
        let mut b = StoreBuilder::new();
        // items 0..4 in category 0 (relations 0,1), 4..8 in category 1 (rel 2)
        for i in 0..4u32 {
            b.add_raw(i, 0, 10 + i % 2);
            b.add_raw(i, 1, 12);
        }
        for i in 4..8u32 {
            b.add_raw(i, 2, 13 + i % 2);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..8u32).map(|i| (EntityId(i), i / 4)).collect();
        let selector = KeyRelationSelector::build(&store, &pairs, 2, 3);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(1),
        );
        (store, KnowledgeService::new(model, selector))
    }

    #[test]
    fn sequence_service_has_2k_vectors_of_dim_d() {
        let (_, svc) = setup();
        let seq = svc.sequence_service(EntityId(0));
        assert_eq!(seq.len(), 2 * svc.k());
        assert!(seq.iter().all(|v| v.len() == svc.dim()));
    }

    #[test]
    fn short_categories_are_zero_padded() {
        let (_, svc) = setup();
        // category 1 has a single relation; k = 3 → 2 padded triple vectors.
        let tv = svc.triple_vectors(EntityId(5));
        assert_eq!(tv.len(), 3);
        assert!(tv[0].iter().any(|&x| x != 0.0));
        assert!(tv[1].iter().all(|&x| x == 0.0));
        assert!(tv[2].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn unknown_items_get_all_zero_service() {
        let (_, svc) = setup();
        // entity 12 is a value, not an item — no category.
        let seq = svc.sequence_service(EntityId(12));
        assert!(seq.iter().all(|v| v.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn sequence_order_is_triple_then_relation() {
        let (_, svc) = setup();
        let item = EntityId(0);
        let seq = svc.sequence_service(item);
        let tv = svc.triple_vectors(item);
        let rv = svc.relation_vectors(item);
        assert_eq!(&seq[..svc.k()], &tv[..]);
        assert_eq!(&seq[svc.k()..], &rv[..]);
    }

    #[test]
    fn service_vectors_match_model_functions() {
        let (_, svc) = setup();
        let item = EntityId(1);
        let rels = svc.selector().for_item(item).to_vec();
        let tv = svc.triple_vectors(item);
        for (j, &r) in rels.iter().enumerate() {
            assert_eq!(tv[j], svc.model().service_t(item, r));
        }
    }

    #[test]
    fn condensed_service_is_mean_of_paired_concats() {
        let (_, svc) = setup();
        let item = EntityId(2);
        let d = svc.dim();
        let k = svc.k();
        let st = svc.triple_vectors(item);
        let sr = svc.relation_vectors(item);
        let s = svc.condensed_service(item);
        assert_eq!(s.len(), 2 * d);
        for i in 0..d {
            let expect_t: f32 = st.iter().map(|v| v[i]).sum::<f32>() / k as f32;
            let expect_r: f32 = sr.iter().map(|v| v[i]).sum::<f32>() / k as f32;
            assert!((s[i] - expect_t).abs() < 1e-6);
            assert!((s[d + i] - expect_r).abs() < 1e-6);
        }
    }

    #[test]
    fn condensed_ablations_have_dim_d() {
        let (_, svc) = setup();
        assert_eq!(svc.condensed_triple(EntityId(0)).len(), svc.dim());
        assert_eq!(svc.condensed_relation(EntityId(0)).len(), svc.dim());
    }

    #[test]
    fn predict_tail_returns_sorted_topn() {
        let (_, svc) = setup();
        let preds = svc.predict_tail(EntityId(0), RelationId(0), 5);
        assert_eq!(preds.len(), 5);
        assert!(preds.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn condensed_service_into_matches_allocating_path() {
        let (_, svc) = setup();
        let mut scratch = ServiceScratch::new(svc.dim());
        let mut out = vec![0.0f32; 2 * svc.dim()];
        // Items across both categories plus a non-item entity (all-zero row).
        for i in 0..14u32 {
            svc.condensed_service_into(EntityId(i), &mut scratch, &mut out);
            assert_eq!(out, svc.condensed_service(EntityId(i)));
        }
    }

    #[test]
    fn batch_services_match_per_item_calls() {
        let (_, svc) = setup();
        let items: Vec<EntityId> = (0..8u32).map(EntityId).collect();
        let seq = svc.sequence_service_batch(&items);
        let cond = svc.condensed_service_batch(&items);
        assert_eq!(seq.len(), items.len());
        assert_eq!(cond.len(), items.len());
        for (i, &item) in items.iter().enumerate() {
            assert_eq!(seq[i], svc.sequence_service(item));
            assert_eq!(cond[i], svc.condensed_service(item));
        }
    }

    #[test]
    #[should_panic(expected = "relation module")]
    fn service_requires_relation_module() {
        let (store, svc) = setup();
        let transe = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::transe(8),
        );
        let _ = KnowledgeService::new(transe, svc.selector().clone());
    }
}

//! Dynamic request batching with admission control.
//!
//! The daemon's connection handlers are thread-per-connection, but the
//! compute layer is most efficient when lookups arrive in batches (the
//! rayon batch APIs on [`CachedService`] amortize thread dispatch and use
//! per-thread scratch). The [`DynamicBatcher`] bridges the two: handlers
//! [`DynamicBatcher::submit`] their item lists into a bounded queue and
//! block on a per-request completion slot; a small pool of batch workers
//! drains the queue, **coalescing whatever is pending** — across
//! connections — into one `condensed_service_batch` call, then fans the
//! rows back out to the waiting handlers.
//!
//! Admission control is shed-not-stall: when the queue already holds
//! `queue_capacity` items, `submit` fails immediately with
//! [`SubmitError::Overloaded`] and the daemon answers with the typed
//! `Overloaded` status. A full queue never blocks the socket threads, so
//! an overloaded daemon stays responsive to pings, stats, and reloads.

use crate::serving::CachedService;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Recover the guard from a poisoned std lock: batcher state is a queue of
/// plain data, valid at every instruction boundary.
fn lock_recover<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the request was shed without side effects.
    Overloaded,
    /// The batcher has been stopped (daemon shutting down).
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "queue full — request shed"),
            SubmitError::Stopped => write!(f, "batcher stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Completion state of one submitted request.
enum SlotState {
    Pending,
    Done(Vec<Arc<Vec<f32>>>),
    Failed(String),
}

/// One submitted request's rendezvous point.
struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

/// Blocking handle for a submitted request.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Block until a batch worker completes this request. Returns the
    /// condensed rows in submission order, or the failure message.
    pub fn wait(self) -> Result<Vec<Arc<Vec<f32>>>, String> {
        let mut state = lock_recover(&self.slot.state);
        loop {
            match std::mem::replace(&mut *state, SlotState::Pending) {
                SlotState::Done(rows) => return Ok(rows),
                SlotState::Failed(why) => return Err(why),
                SlotState::Pending => {
                    state = self
                        .slot
                        .done
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }
}

/// A queued request: the items to look up and where to deliver the rows.
struct Pending {
    items: Vec<u32>,
    slot: Arc<Slot>,
}

/// Queue state under the batcher's mutex.
struct Queue {
    pending: VecDeque<Pending>,
    /// Total items across `pending` — the admission-control quantity.
    queued_items: usize,
    stopped: bool,
}

/// Batch-execution statistics (relaxed counters; see
/// [`CachedService::stats`] for the consistency discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches executed.
    pub batches: u64,
    /// Requests admitted and completed.
    pub requests: u64,
    /// Items served across all batches.
    pub items: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Largest single batch (items) executed so far.
    pub max_batch_items: u64,
}

impl BatchStats {
    /// Mean items per executed batch — the coalescing factor.
    pub fn mean_batch_items(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.items as f64 / self.batches as f64
        }
    }
}

/// The shared batching queue. Workers are driven externally (the daemon
/// owns the threads) via [`DynamicBatcher::run_worker`].
pub struct DynamicBatcher {
    queue: Mutex<Queue>,
    ready: Condvar,
    /// Admission cap: max items queued (not yet picked up by a worker).
    queue_capacity: usize,
    /// Max items a worker coalesces into one service call.
    max_batch_items: usize,
    batches: AtomicU64,
    requests: AtomicU64,
    items: AtomicU64,
    shed: AtomicU64,
    max_batch: AtomicU64,
}

impl DynamicBatcher {
    /// A batcher admitting up to `queue_capacity` queued items and
    /// coalescing up to `max_batch_items` per service call.
    ///
    /// # Panics
    /// If either bound is zero.
    pub fn new(queue_capacity: usize, max_batch_items: usize) -> Self {
        assert!(queue_capacity > 0, "queue capacity must be positive");
        assert!(max_batch_items > 0, "max batch must be positive");
        Self {
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                queued_items: 0,
                stopped: false,
            }),
            ready: Condvar::new(),
            queue_capacity,
            max_batch_items,
            batches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            items: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// Admit a lookup, or shed it. An admitted request is guaranteed a
    /// completion (rows or a failure message) as long as a worker runs.
    ///
    /// An empty item list completes immediately without queuing.
    pub fn submit(&self, items: Vec<u32>) -> Result<Ticket, SubmitError> {
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            done: Condvar::new(),
        });
        if items.is_empty() {
            *lock_recover(&slot.state) = SlotState::Done(Vec::new());
            return Ok(Ticket { slot });
        }
        {
            let mut q = lock_recover(&self.queue);
            if q.stopped {
                return Err(SubmitError::Stopped);
            }
            // A single request larger than the whole queue is still
            // admitted when the queue is empty — otherwise it could never
            // be served at all.
            if q.queued_items + items.len() > self.queue_capacity && q.queued_items > 0 {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded);
            }
            q.queued_items += items.len();
            q.pending.push_back(Pending {
                items,
                slot: Arc::clone(&slot),
            });
        }
        self.ready.notify_one();
        Ok(Ticket { slot })
    }

    /// Worker loop: coalesce pending requests and serve them against the
    /// service returned by `service` — re-read **per batch**, so a hot
    /// swap takes effect at the next batch boundary and every batch runs
    /// against one consistent snapshot. Returns when [`DynamicBatcher::stop`]
    /// is called.
    pub fn run_worker(&self, service: impl Fn() -> Arc<CachedService>) {
        loop {
            let batch = {
                let mut q = lock_recover(&self.queue);
                loop {
                    if !q.pending.is_empty() {
                        break;
                    }
                    if q.stopped {
                        return;
                    }
                    q = self
                        .ready
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                let mut batch: Vec<Pending> = Vec::new();
                let mut taken = 0usize;
                while let Some(front) = q.pending.front() {
                    // Always take at least one request; stop once the next
                    // would push the batch past the cap.
                    if !batch.is_empty() && taken + front.items.len() > self.max_batch_items {
                        break;
                    }
                    let p = q.pending.pop_front().expect("front exists");
                    taken += p.items.len();
                    batch.push(p);
                }
                q.queued_items -= taken;
                batch
            };
            // More work may remain; hand it to a sibling worker.
            self.ready.notify_one();
            self.execute(batch, &service());
        }
    }

    /// Serve one coalesced batch and deliver per-request results.
    fn execute(&self, batch: Vec<Pending>, service: &CachedService) {
        let ids: Vec<pkgm_store::EntityId> = batch
            .iter()
            .flat_map(|p| p.items.iter().copied().map(pkgm_store::EntityId))
            .collect();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.items.fetch_add(ids.len() as u64, Ordering::Relaxed);
        self.max_batch
            .fetch_max(ids.len() as u64, Ordering::Relaxed);
        let rows = service.condensed_service_batch(&ids);
        let mut cursor = rows.into_iter();
        for p in batch {
            let took: Vec<Arc<Vec<f32>>> = cursor.by_ref().take(p.items.len()).collect();
            let mut state = lock_recover(&p.slot.state);
            *state = if took.len() == p.items.len() {
                SlotState::Done(took)
            } else {
                SlotState::Failed("batch result shorter than request".into())
            };
            drop(state);
            p.slot.done.notify_one();
        }
    }

    /// Stop the batcher: wake all workers, fail any still-queued requests
    /// so no handler waits forever, and refuse new submissions.
    pub fn stop(&self) {
        let drained: Vec<Pending> = {
            let mut q = lock_recover(&self.queue);
            q.stopped = true;
            q.queued_items = 0;
            q.pending.drain(..).collect()
        };
        self.ready.notify_all();
        for p in drained {
            *lock_recover(&p.slot.state) = SlotState::Failed("daemon shutting down".into());
            p.slot.done.notify_one();
        }
    }

    /// Whether [`DynamicBatcher::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        lock_recover(&self.queue).stopped
    }

    /// Batch-execution counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            max_batch_items: self.max_batch.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use crate::service::KnowledgeService;
    use pkgm_store::{EntityId, KeyRelationSelector, StoreBuilder};

    fn cached() -> Arc<CachedService> {
        let mut b = StoreBuilder::new();
        for i in 0..8u32 {
            b.add_raw(i, 0, 8 + i % 2);
            b.add_raw(i, 1, 10);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..8).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(1),
        );
        Arc::new(CachedService::new(KnowledgeService::new(model, sel), 64))
    }

    /// Run `f` with one live worker thread serving `svc`.
    fn with_worker<R>(
        batcher: &Arc<DynamicBatcher>,
        svc: &Arc<CachedService>,
        f: impl FnOnce() -> R,
    ) -> R {
        let worker = {
            let batcher = Arc::clone(batcher);
            let svc = Arc::clone(svc);
            std::thread::spawn(move || batcher.run_worker(move || Arc::clone(&svc)))
        };
        let out = f();
        batcher.stop();
        worker.join().expect("worker exits cleanly");
        out
    }

    #[test]
    fn submitted_requests_get_correct_rows() {
        let svc = cached();
        let batcher = Arc::new(DynamicBatcher::new(1024, 64));
        with_worker(&batcher, &svc, || {
            let rows = batcher.submit(vec![0, 3, 7]).unwrap().wait().unwrap();
            assert_eq!(rows.len(), 3);
            for (i, id) in [0u32, 3, 7].into_iter().enumerate() {
                assert_eq!(*rows[i], *svc.condensed_service(EntityId(id)));
            }
        });
    }

    #[test]
    fn empty_lookup_completes_without_a_worker() {
        let batcher = DynamicBatcher::new(4, 4);
        let rows = batcher.submit(vec![]).unwrap().wait().unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        // No worker draining: the queue fills and must shed, not stall.
        let batcher = DynamicBatcher::new(4, 4);
        let _held = batcher.submit(vec![1, 2, 3, 4]).unwrap();
        let err = batcher.submit(vec![5]).unwrap_err();
        assert_eq!(err, SubmitError::Overloaded);
        assert_eq!(batcher.stats().shed, 1);
        // An oversized request is still admitted when the queue is empty.
        let big = DynamicBatcher::new(2, 2);
        assert!(big.submit(vec![1, 2, 3, 4, 5]).is_ok());
    }

    #[test]
    fn stop_fails_queued_requests_and_refuses_new_ones() {
        let batcher = DynamicBatcher::new(16, 16);
        let t = batcher.submit(vec![1]).unwrap();
        batcher.stop();
        assert!(t.wait().is_err());
        assert_eq!(batcher.submit(vec![2]).unwrap_err(), SubmitError::Stopped);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_all_complete() {
        let svc = cached();
        let batcher = Arc::new(DynamicBatcher::new(4096, 32));
        with_worker(&batcher, &svc, || {
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let batcher = Arc::clone(&batcher);
                    let svc = Arc::clone(&svc);
                    s.spawn(move || {
                        for round in 0..50u32 {
                            let ids = vec![(t + round) % 8, (t + round + 1) % 8];
                            let rows = batcher.submit(ids.clone()).unwrap().wait().unwrap();
                            for (i, &id) in ids.iter().enumerate() {
                                assert_eq!(*rows[i], *svc.condensed_service(EntityId(id)));
                            }
                        }
                    });
                }
            });
        });
        let stats = batcher.stats();
        assert_eq!(stats.requests, 8 * 50);
        assert_eq!(stats.items, 8 * 50 * 2);
        assert!(stats.batches <= stats.requests);
        assert!(stats.max_batch_items >= 2);
    }

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_capacity_rejected() {
        DynamicBatcher::new(0, 1);
    }
}

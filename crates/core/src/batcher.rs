//! Dynamic request batching with admission control.
//!
//! The daemon's connection handlers are thread-per-connection, but the
//! compute layer is most efficient when lookups arrive in batches (the
//! rayon batch APIs on [`CachedService`] amortize thread dispatch and use
//! per-thread scratch). The [`DynamicBatcher`] bridges the two: handlers
//! [`DynamicBatcher::submit`] their item lists into a bounded queue and
//! block on a per-request completion slot; a small pool of batch workers
//! drains the queue, **coalescing whatever is pending** — across
//! connections — into one `condensed_service_batch` call, then fans the
//! rows back out to the waiting handlers.
//!
//! Admission control is shed-not-stall: when the queue already holds
//! `queue_capacity` items, `submit` fails immediately with
//! [`SubmitError::Overloaded`] and the daemon answers with the typed
//! `Overloaded` status. A full queue never blocks the socket threads, so
//! an overloaded daemon stays responsive to pings, stats, and reloads.
//!
//! Requests may carry a **deadline** ([`DynamicBatcher::submit_with_deadline`]).
//! Expired work is shed at three points, each counted separately in
//! [`BatchStats`]: dead on arrival at submit (`AtEnqueue`), skipped when a
//! worker dequeues it (`Queued`), and discarded when the batch call
//! finishes past the deadline (`Executing`) — the rows exist but the
//! caller's budget is spent, so delivering them would only masquerade as a
//! success the client never saw. [`Ticket::wait`] also self-releases at
//! the deadline, so a wedged worker can never pin a handler thread past
//! the caller's budget.

use crate::protocol::DeadlineStage;
use crate::serving::CachedService;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recover the guard from a poisoned std lock: batcher state is a queue of
/// plain data, valid at every instruction boundary.
fn lock_recover<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write a final state into a slot and wake its waiter.
fn deliver(slot: &Slot, state: SlotState) {
    *lock_recover(&slot.state) = state;
    slot.done.notify_one();
}

/// Consume one pending chaos injection (saturating at zero).
fn chaos_take_one(counter: &AtomicU64) -> bool {
    counter
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// Fails every still-held request if dropped mid-execution (i.e. the
/// service call panicked); the normal path takes the batch back out first.
struct DeliveryGuard {
    batch: Vec<Pending>,
}

impl Drop for DeliveryGuard {
    fn drop(&mut self) {
        for p in self.batch.drain(..) {
            deliver(&p.slot, SlotState::Failed("batch worker panicked".into()));
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the request was shed without side effects.
    Overloaded,
    /// The batcher has been stopped (daemon shutting down).
    Stopped,
    /// The request's deadline had already passed at submit time — dead on
    /// arrival, shed without side effects.
    DeadlineExceeded,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "queue full — request shed"),
            SubmitError::Stopped => write!(f, "batcher stopped"),
            SubmitError::DeadlineExceeded => write!(f, "deadline already expired at enqueue"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a [`Ticket::wait`] did not return rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The request's deadline expired at this pipeline stage.
    DeadlineExceeded(DeadlineStage),
    /// The batch worker failed the request (shutdown, panic, short batch).
    Failed(String),
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::DeadlineExceeded(stage) => {
                write!(f, "deadline exceeded ({})", stage.name())
            }
            WaitError::Failed(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for WaitError {}

/// Completion state of one submitted request.
enum SlotState {
    Pending,
    Done(Vec<Arc<Vec<f32>>>),
    Failed(String),
    /// The deadline expired at this stage; the rows (if any were computed)
    /// were discarded.
    Expired(DeadlineStage),
}

/// One submitted request's rendezvous point.
struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

/// Blocking handle for a submitted request.
pub struct Ticket {
    slot: Arc<Slot>,
    /// Mirrors the queued request's deadline so the waiter can self-release
    /// even if every worker is wedged.
    deadline: Option<Instant>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Block until a batch worker completes this request. Returns the
    /// condensed rows in submission order, or a typed [`WaitError`].
    ///
    /// A ticket with a deadline never blocks past it: if no worker has
    /// delivered by then — every worker wedged or dead — the wait returns
    /// `DeadlineExceeded(Queued)` and the eventual delivery (if any) goes
    /// to an abandoned slot.
    pub fn wait(self) -> Result<Vec<Arc<Vec<f32>>>, WaitError> {
        let mut state = lock_recover(&self.slot.state);
        loop {
            match std::mem::replace(&mut *state, SlotState::Pending) {
                SlotState::Done(rows) => return Ok(rows),
                SlotState::Failed(why) => return Err(WaitError::Failed(why)),
                SlotState::Expired(stage) => return Err(WaitError::DeadlineExceeded(stage)),
                SlotState::Pending => match self.deadline {
                    None => {
                        state = self
                            .slot
                            .done
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(WaitError::DeadlineExceeded(DeadlineStage::Queued));
                        }
                        let (guard, _timeout) = self
                            .slot
                            .done
                            .wait_timeout(state, deadline - now)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        state = guard;
                    }
                },
            }
        }
    }
}

/// A queued request: the items to look up, where to deliver the rows, and
/// how long the caller will still care.
struct Pending {
    items: Vec<u32>,
    slot: Arc<Slot>,
    deadline: Option<Instant>,
}

impl Pending {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// Queue state under the batcher's mutex.
struct Queue {
    pending: VecDeque<Pending>,
    /// Total items across `pending` — the admission-control quantity.
    queued_items: usize,
    stopped: bool,
}

/// Batch-execution statistics (relaxed counters; see
/// [`CachedService::stats`] for the consistency discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batches executed.
    pub batches: u64,
    /// Requests admitted and completed.
    pub requests: u64,
    /// Items served across all batches.
    pub items: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Largest single batch (items) executed so far.
    pub max_batch_items: u64,
    /// Requests whose deadline had already passed at submit.
    pub expired_enqueue: u64,
    /// Requests whose deadline passed while waiting in the queue.
    pub expired_queued: u64,
    /// Requests whose deadline passed during batch execution (rows were
    /// computed but discarded as dead on arrival).
    pub expired_executing: u64,
}

impl BatchStats {
    /// Mean items per executed batch — the coalescing factor.
    pub fn mean_batch_items(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.items as f64 / self.batches as f64
        }
    }
}

/// The shared batching queue. Workers are driven externally (the daemon
/// owns the threads) via [`DynamicBatcher::run_worker`].
pub struct DynamicBatcher {
    queue: Mutex<Queue>,
    ready: Condvar,
    /// Admission cap: max items queued (not yet picked up by a worker).
    queue_capacity: usize,
    /// Max items a worker coalesces into one service call.
    max_batch_items: usize,
    batches: AtomicU64,
    requests: AtomicU64,
    items: AtomicU64,
    shed: AtomicU64,
    max_batch: AtomicU64,
    expired_enqueue: AtomicU64,
    expired_queued: AtomicU64,
    expired_executing: AtomicU64,
    /// Chaos hook: pending worker panics to inject (each next batch pickup
    /// consumes one and panics *before* dequeuing, so no request is lost).
    inject_panics: AtomicU64,
    /// Chaos hook: microseconds the next batch pickups stall before
    /// executing (consumed one pickup at a time).
    inject_wedge_micros: AtomicU64,
}

impl DynamicBatcher {
    /// A batcher admitting up to `queue_capacity` queued items and
    /// coalescing up to `max_batch_items` per service call.
    ///
    /// # Panics
    /// If either bound is zero.
    pub fn new(queue_capacity: usize, max_batch_items: usize) -> Self {
        assert!(queue_capacity > 0, "queue capacity must be positive");
        assert!(max_batch_items > 0, "max batch must be positive");
        Self {
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                queued_items: 0,
                stopped: false,
            }),
            ready: Condvar::new(),
            queue_capacity,
            max_batch_items,
            batches: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            items: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            expired_enqueue: AtomicU64::new(0),
            expired_queued: AtomicU64::new(0),
            expired_executing: AtomicU64::new(0),
            inject_panics: AtomicU64::new(0),
            inject_wedge_micros: AtomicU64::new(0),
        }
    }

    /// Admit a lookup, or shed it. An admitted request is guaranteed a
    /// completion (rows or a typed failure) as long as a worker runs — and
    /// a deadline-carrying request is guaranteed one even if no worker
    /// ever does.
    ///
    /// An empty item list completes immediately without queuing.
    pub fn submit(&self, items: Vec<u32>) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(items, None)
    }

    /// [`DynamicBatcher::submit`] with an optional deadline: once `deadline`
    /// passes, every pipeline stage sheds the request with a typed
    /// [`DeadlineStage`] instead of serving dead-on-arrival rows. A request
    /// whose deadline has already passed is rejected here with
    /// [`SubmitError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        items: Vec<u32>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.expired_enqueue.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::DeadlineExceeded);
        }
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            done: Condvar::new(),
        });
        if items.is_empty() {
            *lock_recover(&slot.state) = SlotState::Done(Vec::new());
            return Ok(Ticket {
                slot,
                deadline: None,
            });
        }
        {
            let mut q = lock_recover(&self.queue);
            if q.stopped {
                return Err(SubmitError::Stopped);
            }
            // A single request larger than the whole queue is still
            // admitted when the queue is empty — otherwise it could never
            // be served at all.
            if q.queued_items + items.len() > self.queue_capacity && q.queued_items > 0 {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded);
            }
            q.queued_items += items.len();
            q.pending.push_back(Pending {
                items,
                slot: Arc::clone(&slot),
                deadline,
            });
        }
        self.ready.notify_one();
        Ok(Ticket { slot, deadline })
    }

    /// Worker loop: coalesce pending requests and serve them against the
    /// service returned by `service` — re-read **per batch**, so a hot
    /// swap takes effect at the next batch boundary and every batch runs
    /// against one consistent snapshot. Returns when [`DynamicBatcher::stop`]
    /// is called.
    pub fn run_worker(&self, service: impl Fn() -> Arc<CachedService>) {
        loop {
            let batch = {
                let mut q = lock_recover(&self.queue);
                loop {
                    if !q.pending.is_empty() {
                        break;
                    }
                    if q.stopped {
                        return;
                    }
                    q = self
                        .ready
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                // Chaos hook: panic *before* dequeuing, so the queued work
                // survives for whoever the watchdog respawns.
                if chaos_take_one(&self.inject_panics) {
                    drop(q);
                    panic!("injected batch-worker panic (chaos hook)");
                }
                let now = Instant::now();
                let mut batch: Vec<Pending> = Vec::new();
                let mut taken = 0usize;
                while let Some(front) = q.pending.front() {
                    // Shed work that expired while queued without letting
                    // it count against the batch cap.
                    if front.expired(now) {
                        let p = q.pending.pop_front().expect("front exists");
                        q.queued_items -= p.items.len();
                        self.expired_queued.fetch_add(1, Ordering::Relaxed);
                        deliver(&p.slot, SlotState::Expired(DeadlineStage::Queued));
                        continue;
                    }
                    // Always take at least one request; stop once the next
                    // would push the batch past the cap.
                    if !batch.is_empty() && taken + front.items.len() > self.max_batch_items {
                        break;
                    }
                    let p = q.pending.pop_front().expect("front exists");
                    taken += p.items.len();
                    batch.push(p);
                }
                q.queued_items -= taken;
                batch
            };
            // More work may remain; hand it to a sibling worker.
            self.ready.notify_one();
            // Chaos hook: stall before executing — from the outside this
            // is a wedged worker (queue backs up, no batch progress).
            let wedge = self.inject_wedge_micros.swap(0, Ordering::Relaxed);
            if wedge > 0 {
                std::thread::sleep(Duration::from_micros(wedge));
            }
            if batch.is_empty() {
                continue;
            }
            self.execute(batch, &service);
        }
    }

    /// Serve one coalesced batch and deliver per-request results. If the
    /// service re-read or the batch call panics, the delivery guard fails
    /// every slot in the batch before the panic unwinds the worker — a
    /// dying worker never strands a waiting handler.
    fn execute(&self, batch: Vec<Pending>, service: &impl Fn() -> Arc<CachedService>) {
        let mut guard = DeliveryGuard { batch };
        let ids: Vec<pkgm_store::EntityId> = guard
            .batch
            .iter()
            .flat_map(|p| p.items.iter().copied().map(pkgm_store::EntityId))
            .collect();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.requests
            .fetch_add(guard.batch.len() as u64, Ordering::Relaxed);
        self.items.fetch_add(ids.len() as u64, Ordering::Relaxed);
        self.max_batch
            .fetch_max(ids.len() as u64, Ordering::Relaxed);
        let rows = service().condensed_service_batch(&ids);
        let batch = std::mem::take(&mut guard.batch);
        drop(guard);
        let done = Instant::now();
        let mut cursor = rows.into_iter();
        for p in batch {
            let took: Vec<Arc<Vec<f32>>> = cursor.by_ref().take(p.items.len()).collect();
            let state = if took.len() != p.items.len() {
                SlotState::Failed("batch result shorter than request".into())
            } else if p.expired(done) {
                // The rows exist, but the caller's budget ran out while we
                // computed them: deliver the expiry, not a dead-on-arrival
                // success.
                self.expired_executing.fetch_add(1, Ordering::Relaxed);
                SlotState::Expired(DeadlineStage::Executing)
            } else {
                SlotState::Done(took)
            };
            deliver(&p.slot, state);
        }
    }

    /// Stop the batcher: wake all workers, fail any still-queued requests
    /// so no handler waits forever, and refuse new submissions.
    pub fn stop(&self) {
        let drained: Vec<Pending> = {
            let mut q = lock_recover(&self.queue);
            q.stopped = true;
            q.queued_items = 0;
            q.pending.drain(..).collect()
        };
        self.ready.notify_all();
        for p in drained {
            deliver(&p.slot, SlotState::Failed("daemon shutting down".into()));
        }
    }

    /// Whether [`DynamicBatcher::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        lock_recover(&self.queue).stopped
    }

    /// Items currently queued and not yet picked up by a worker — the
    /// watchdog's stall signal.
    pub fn queued_items(&self) -> usize {
        lock_recover(&self.queue).queued_items
    }

    /// Chaos hook: make the next batch pickup panic (before dequeuing, so
    /// no queued request is lost). Used by the netcheck battery to prove
    /// the watchdog restarts a dead worker.
    pub fn inject_worker_panic(&self) {
        self.inject_panics.fetch_add(1, Ordering::Relaxed);
        self.ready.notify_one();
    }

    /// Chaos hook: stall the next batch pickup for `wedge` before it
    /// executes — an externally-observable wedged worker.
    pub fn inject_worker_wedge(&self, wedge: Duration) {
        self.inject_wedge_micros.store(
            wedge.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Batch-execution counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            max_batch_items: self.max_batch.load(Ordering::Relaxed),
            expired_enqueue: self.expired_enqueue.load(Ordering::Relaxed),
            expired_queued: self.expired_queued.load(Ordering::Relaxed),
            expired_executing: self.expired_executing.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use crate::service::KnowledgeService;
    use pkgm_store::{EntityId, KeyRelationSelector, StoreBuilder};

    fn cached() -> Arc<CachedService> {
        let mut b = StoreBuilder::new();
        for i in 0..8u32 {
            b.add_raw(i, 0, 8 + i % 2);
            b.add_raw(i, 1, 10);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..8).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(1),
        );
        Arc::new(CachedService::new(KnowledgeService::new(model, sel), 64))
    }

    /// Run `f` with one live worker thread serving `svc`.
    fn with_worker<R>(
        batcher: &Arc<DynamicBatcher>,
        svc: &Arc<CachedService>,
        f: impl FnOnce() -> R,
    ) -> R {
        let worker = {
            let batcher = Arc::clone(batcher);
            let svc = Arc::clone(svc);
            std::thread::spawn(move || batcher.run_worker(move || Arc::clone(&svc)))
        };
        let out = f();
        batcher.stop();
        worker.join().expect("worker exits cleanly");
        out
    }

    #[test]
    fn submitted_requests_get_correct_rows() {
        let svc = cached();
        let batcher = Arc::new(DynamicBatcher::new(1024, 64));
        with_worker(&batcher, &svc, || {
            let rows = batcher.submit(vec![0, 3, 7]).unwrap().wait().unwrap();
            assert_eq!(rows.len(), 3);
            for (i, id) in [0u32, 3, 7].into_iter().enumerate() {
                assert_eq!(*rows[i], *svc.condensed_service(EntityId(id)));
            }
        });
    }

    #[test]
    fn empty_lookup_completes_without_a_worker() {
        let batcher = DynamicBatcher::new(4, 4);
        let rows = batcher.submit(vec![]).unwrap().wait().unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        // No worker draining: the queue fills and must shed, not stall.
        let batcher = DynamicBatcher::new(4, 4);
        let _held = batcher.submit(vec![1, 2, 3, 4]).unwrap();
        let err = batcher.submit(vec![5]).unwrap_err();
        assert_eq!(err, SubmitError::Overloaded);
        assert_eq!(batcher.stats().shed, 1);
        // An oversized request is still admitted when the queue is empty.
        let big = DynamicBatcher::new(2, 2);
        assert!(big.submit(vec![1, 2, 3, 4, 5]).is_ok());
    }

    #[test]
    fn stop_fails_queued_requests_and_refuses_new_ones() {
        let batcher = DynamicBatcher::new(16, 16);
        let t = batcher.submit(vec![1]).unwrap();
        batcher.stop();
        assert!(t.wait().is_err());
        assert_eq!(batcher.submit(vec![2]).unwrap_err(), SubmitError::Stopped);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_all_complete() {
        let svc = cached();
        let batcher = Arc::new(DynamicBatcher::new(4096, 32));
        with_worker(&batcher, &svc, || {
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let batcher = Arc::clone(&batcher);
                    let svc = Arc::clone(&svc);
                    s.spawn(move || {
                        for round in 0..50u32 {
                            let ids = vec![(t + round) % 8, (t + round + 1) % 8];
                            let rows = batcher.submit(ids.clone()).unwrap().wait().unwrap();
                            for (i, &id) in ids.iter().enumerate() {
                                assert_eq!(*rows[i], *svc.condensed_service(EntityId(id)));
                            }
                        }
                    });
                }
            });
        });
        let stats = batcher.stats();
        assert_eq!(stats.requests, 8 * 50);
        assert_eq!(stats.items, 8 * 50 * 2);
        assert!(stats.batches <= stats.requests);
        assert!(stats.max_batch_items >= 2);
    }

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_capacity_rejected() {
        DynamicBatcher::new(0, 1);
    }

    #[test]
    fn already_expired_deadline_is_shed_at_enqueue() {
        let batcher = DynamicBatcher::new(16, 16);
        let past = Instant::now() - Duration::from_millis(5);
        assert_eq!(
            batcher
                .submit_with_deadline(vec![1, 2], Some(past))
                .unwrap_err(),
            SubmitError::DeadlineExceeded
        );
        let stats = batcher.stats();
        assert_eq!(stats.expired_enqueue, 1);
        assert_eq!(stats.expired_queued, 0);
        assert_eq!(stats.expired_executing, 0);
        // Nothing was queued.
        assert_eq!(batcher.queued_items(), 0);
    }

    #[test]
    fn deadline_expiring_while_queued_is_skipped_at_dequeue() {
        let svc = cached();
        let batcher = Arc::new(DynamicBatcher::new(1024, 64));
        // No worker yet: the request sits in the queue past its deadline.
        let t = batcher
            .submit_with_deadline(vec![1], Some(Instant::now() + Duration::from_millis(10)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        with_worker(&batcher, &svc, || {
            // A fresh request forces the worker through the queue; the
            // expired one in front of it must be skipped, not served.
            let rows = batcher.submit(vec![2]).unwrap().wait().unwrap();
            assert_eq!(rows.len(), 1);
        });
        assert_eq!(
            t.wait().unwrap_err(),
            WaitError::DeadlineExceeded(DeadlineStage::Queued)
        );
        let stats = batcher.stats();
        assert_eq!(stats.expired_queued, 1);
        assert_eq!(stats.expired_executing, 0);
        // The expired request never reached a batch.
        assert_eq!(stats.requests, 1);
        assert_eq!(batcher.queued_items(), 0);
    }

    #[test]
    fn deadline_expiring_during_execution_discards_the_rows() {
        let svc = cached();
        let batcher = Arc::new(DynamicBatcher::new(1024, 64));
        // The wedge stalls the pickup after the dequeue-time expiry check,
        // so the deadline passes while the batch is "executing".
        batcher.inject_worker_wedge(Duration::from_millis(400));
        with_worker(&batcher, &svc, || {
            let t = batcher
                .submit_with_deadline(vec![3], Some(Instant::now() + Duration::from_millis(150)))
                .unwrap();
            // The waiter self-releases at its deadline (stage Queued from
            // its view — no worker had delivered yet).
            assert!(matches!(t.wait(), Err(WaitError::DeadlineExceeded(_))));
            // The worker's own accounting must land on Executing.
            let deadline = Instant::now() + Duration::from_secs(5);
            while batcher.stats().expired_executing == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
            assert_eq!(batcher.stats().expired_executing, 1);
        });
        assert_eq!(batcher.stats().expired_queued, 0);
    }

    #[test]
    fn waiter_self_releases_at_deadline_when_no_worker_runs() {
        let batcher = DynamicBatcher::new(16, 16);
        let start = Instant::now();
        let t = batcher
            .submit_with_deadline(vec![1], Some(start + Duration::from_millis(40)))
            .unwrap();
        assert_eq!(
            t.wait().unwrap_err(),
            WaitError::DeadlineExceeded(DeadlineStage::Queued)
        );
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(40), "released early");
        assert!(waited < Duration::from_secs(5), "blocked far past deadline");
    }

    #[test]
    fn panicking_service_call_fails_the_batch_instead_of_stranding_it() {
        let batcher = Arc::new(DynamicBatcher::new(64, 64));
        let t = batcher.submit(vec![1, 2]).unwrap();
        let worker = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || {
                batcher.run_worker(|| -> Arc<CachedService> { panic!("service blew up mid-batch") })
            })
        };
        match t.wait() {
            Err(WaitError::Failed(why)) => assert!(why.contains("panicked"), "{why}"),
            other => panic!("expected panic failure, got {other:?}"),
        }
        assert!(worker.join().is_err(), "worker thread must have panicked");
    }

    #[test]
    fn injected_panic_hook_preserves_queued_work() {
        let svc = cached();
        let batcher = Arc::new(DynamicBatcher::new(64, 64));
        let t = batcher.submit(vec![4]).unwrap();
        batcher.inject_worker_panic();
        // First worker consumes the injection and dies without dequeuing.
        let doomed = {
            let batcher = Arc::clone(&batcher);
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || batcher.run_worker(move || Arc::clone(&svc)))
        };
        assert!(
            doomed.join().is_err(),
            "injected panic must kill the worker"
        );
        // A replacement worker serves the still-queued request.
        with_worker(&batcher, &svc, || {
            let rows = t.wait().unwrap();
            assert_eq!(*rows[0], *svc.condensed_service(EntityId(4)));
        });
    }
}

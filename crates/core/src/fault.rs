//! Deterministic fault injection for the artifact layer, plus the
//! `pkgm faultcheck` recovery battery.
//!
//! Crash-safety claims are only as good as their tests. [`FaultPlan`] scripts
//! failures by write index — "fail the 3rd write", "truncate at byte N",
//! "flip a bit" — and [`FaultyIo`] plays the script underneath any code that
//! talks to disk through [`ArtifactIo`]. Everything is seeded and
//! reproducible: a failing scenario can be replayed exactly.
//!
//! [`run_faultcheck`] is the end-to-end battery behind `pkgm faultcheck`: it
//! builds a tiny deterministic model/service/snapshot, then proves that
//!
//! * every artifact kind round-trips through atomic writes;
//! * torn writes and bit flips are rejected on load (typed errors, no
//!   panics — each scenario runs under `catch_unwind`);
//! * a kill during a checkpoint write costs at most one checkpoint interval:
//!   resume restarts from the previous valid checkpoint and reaches the
//!   same parameters bit-for-bit as an uninterrupted run;
//! * degraded-mode serving answers unknown ids with fallback vectors.

use crate::artifact::{self, ArtifactError, ArtifactIo, ArtifactKind, StdIo};
use crate::model::{PkgmConfig, PkgmModel};
use crate::serialize;
use crate::service::KnowledgeService;
use crate::serving::CachedService;
use crate::snapshot::ServiceSnapshot;
use crate::trainer::{load_latest_checkpoint, CheckpointConfig, TrainConfig, Trainer};
use pkgm_store::{EntityId, KeyRelationSelector, StoreBuilder, TripleStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One scripted failure, applied to a single `write_atomic` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The write fails before any byte reaches the destination (e.g. ENOSPC
    /// on the temp file, or a kill before the rename). The destination keeps
    /// its previous contents — the atomic-writer guarantee.
    FailWrite,
    /// A crash mid-write with a *non-atomic* writer: only the first `keep`
    /// bytes land at the destination path. This is the torn state the
    /// atomic path prevents; loaders must still reject it.
    TornWrite {
        /// Bytes that reach the destination before the "crash".
        keep: usize,
    },
    /// Silent corruption: the write "succeeds" but one bit is flipped.
    /// The CRC32 in the artifact header must catch it on load.
    FlipBit {
        /// Byte offset (taken modulo the write length).
        byte: usize,
        /// Bit index 0..8.
        bit: u8,
    },
}

/// A deterministic schedule of [`Fault`]s keyed by write index (0-based,
/// counted across all `write_atomic` calls through one [`FaultyIo`]).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan (all writes succeed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Script `fault` for the `nth` write (0-based).
    pub fn with_fault(mut self, nth: u64, fault: Fault) -> Self {
        self.faults.insert(nth, fault);
        self
    }

    /// A seeded random plan: one fault of a random kind at a random write
    /// index below `n_writes`. Same seed, same plan.
    pub fn seeded(seed: u64, n_writes: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17);
        let nth = rng.gen_range(0..n_writes.max(1));
        let fault = match rng.gen_range(0u32..3) {
            0 => Fault::FailWrite,
            1 => Fault::TornWrite {
                keep: rng.gen_range(0..4096),
            },
            _ => Fault::FlipBit {
                byte: rng.gen_range(0..4096),
                bit: rng.gen_range(0u32..8) as u8,
            },
        };
        Self::new().with_fault(nth, fault)
    }
}

/// An [`ArtifactIo`] that executes a [`FaultPlan`] on top of an inner
/// implementation. Reads, removes and listings pass through untouched;
/// writes consult the plan by global write index.
pub struct FaultyIo<I: ArtifactIo = StdIo> {
    inner: I,
    plan: FaultPlan,
    writes: AtomicU64,
    injected: AtomicU64,
}

impl FaultyIo<StdIo> {
    /// Fault the real filesystem according to `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self::over(StdIo, plan)
    }
}

impl<I: ArtifactIo> FaultyIo<I> {
    /// Fault an arbitrary inner [`ArtifactIo`].
    pub fn over(inner: I, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            writes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Writes attempted so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Faults actually fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl<I: ArtifactIo> ArtifactIo for FaultyIo<I> {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
        let n = self.writes.fetch_add(1, Ordering::Relaxed);
        match self.plan.faults.get(&n) {
            None => self.inner.write_atomic(path, bytes),
            Some(Fault::FailWrite) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(ArtifactError::Injected {
                    path: path.to_path_buf(),
                    what: format!("write #{n} failed before reaching disk"),
                })
            }
            Some(Fault::TornWrite { keep }) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                // Deliberately bypass atomicity: a prefix lands at the final
                // path, as a crashed non-atomic writer would leave it.
                let keep = (*keep).min(bytes.len());
                std::fs::write(path, &bytes[..keep]).map_err(|e| ArtifactError::Io {
                    path: path.to_path_buf(),
                    source: e,
                })?;
                Err(ArtifactError::Injected {
                    path: path.to_path_buf(),
                    what: format!("process killed after {keep} of {} bytes", bytes.len()),
                })
            }
            Some(Fault::FlipBit { byte, bit }) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let mut corrupted = bytes.to_vec();
                if !corrupted.is_empty() {
                    let i = byte % corrupted.len();
                    corrupted[i] ^= 1 << (bit % 8);
                }
                // The write itself "succeeds" — the corruption is silent
                // until load time.
                self.inner.write_atomic(path, &corrupted)
            }
        }
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, ArtifactError> {
        self.inner.read(path)
    }

    fn remove(&self, path: &Path) -> Result<(), ArtifactError> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, ArtifactError> {
        self.inner.list(dir)
    }
}

// --- the faultcheck battery -------------------------------------------------

/// Outcome of one faultcheck scenario.
#[derive(Debug)]
pub struct Scenario {
    /// Scenario identifier (stable, used by CI greps).
    pub name: &'static str,
    /// Did the recovery path hold?
    pub passed: bool,
    /// What happened (failure detail, or a one-line summary on success).
    pub detail: String,
}

/// Results of the full battery.
#[derive(Debug, Default)]
pub struct FaultCheckReport {
    /// Every scenario, in execution order.
    pub scenarios: Vec<Scenario>,
}

impl FaultCheckReport {
    /// True iff every scenario passed.
    pub fn passed(&self) -> bool {
        self.scenarios.iter().all(|s| s.passed)
    }

    fn run(&mut self, name: &'static str, f: impl FnOnce() -> Result<String, String>) {
        // A panic inside a scenario is itself a failed recovery path — the
        // whole point is that bad bytes must surface as typed errors.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let (passed, detail) = match outcome {
            Ok(Ok(summary)) => (true, summary),
            Ok(Err(why)) => (false, why),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                (false, format!("PANIC: {msg}"))
            }
        };
        self.scenarios.push(Scenario {
            name,
            passed,
            detail,
        });
    }
}

/// Deterministic tiny fixture: a toy catalog store, a service over it, and
/// its serving snapshot.
fn fixture(seed: u64) -> (TripleStore, KnowledgeService, ServiceSnapshot) {
    let mut b = StoreBuilder::new();
    for i in 0..8u32 {
        b.add_raw(i, 0, 8 + i % 2);
        b.add_raw(i, 1, 10 + (i / 4) % 2);
    }
    let store = b.build();
    let pairs: Vec<(EntityId, u32)> = (0..8).map(|i| (EntityId(i), 0)).collect();
    let selector = KeyRelationSelector::build(&store, &pairs, 2, 2);
    let model = PkgmModel::new(
        store.n_entities() as usize,
        store.n_relations() as usize,
        PkgmConfig::new(8).with_seed(seed),
    );
    let service = KnowledgeService::new(model, selector);
    let snapshot = ServiceSnapshot::build(&service);
    (store, service, snapshot)
}

fn quick_train_cfg(seed: u64, epochs: usize) -> TrainConfig {
    TrainConfig {
        lr: 0.05,
        margin: 2.0,
        batch_size: 16,
        epochs,
        negatives: 1,
        seed,
        normalize_entities: true,
        parallel: false,
        // Pinned layout: replay must not depend on the host's thread count.
        chunk_size: Some(16),
    }
}

/// Run the full recovery battery inside `dir` (created if missing, reused if
/// present). `seed` drives every RNG; the battery is fully deterministic.
pub fn run_faultcheck(dir: &Path, seed: u64) -> FaultCheckReport {
    let mut report = FaultCheckReport::default();
    let io = StdIo;
    std::fs::create_dir_all(dir).ok();
    let (store, service, snapshot) = fixture(seed);

    report.run("roundtrip-all-kinds", || {
        let model = service.model().clone();
        let mp = dir.join("fc-model.pkgm");
        serialize::write_model_file(&io, &mp, &model).map_err(|e| e.to_string())?;
        let back = serialize::read_model_file(&io, &mp).map_err(|e| e.to_string())?;
        if back.ent != model.ent {
            return Err("model roundtrip mismatch".into());
        }
        let sp = dir.join("fc-service.pkgm");
        serialize::write_service_file(&io, &sp, &service).map_err(|e| e.to_string())?;
        serialize::read_service_file(&io, &sp).map_err(|e| e.to_string())?;
        let np = dir.join("fc-snapshot.pkgm");
        serialize::write_snapshot_file(&io, &np, &snapshot).map_err(|e| e.to_string())?;
        let back = serialize::read_snapshot_file(&io, &np).map_err(|e| e.to_string())?;
        if back != snapshot {
            return Err("snapshot roundtrip mismatch".into());
        }
        Ok("model, service and snapshot artifacts roundtrip exactly".into())
    });

    report.run("torn-write-rejected", || {
        let payload = serialize::snapshot_to_bytes(&snapshot);
        let framed_len = artifact::encode(ArtifactKind::Snapshot, &payload).len();
        let cuts = [
            0,
            1,
            artifact::HEADER_LEN - 1,
            artifact::HEADER_LEN,
            framed_len / 2,
            framed_len - 1,
        ];
        for &keep in &cuts {
            let path = dir.join("fc-torn.pkgm");
            let faulty = FaultyIo::new(FaultPlan::new().with_fault(0, Fault::TornWrite { keep }));
            let write = artifact::write_artifact(&faulty, &path, ArtifactKind::Snapshot, &payload);
            if write.is_ok() {
                return Err(format!("torn write at {keep} bytes reported success"));
            }
            if serialize::read_snapshot_file(&io, &path).is_ok() {
                return Err(format!("torn artifact ({keep} bytes) loaded as valid"));
            }
            io.remove(&path).ok();
        }
        Ok(format!(
            "{} torn-write points all rejected on load",
            cuts.len()
        ))
    });

    report.run("bit-flip-rejected", || {
        let payload = serialize::snapshot_to_bytes(&snapshot);
        let framed_len = artifact::encode(ArtifactKind::Snapshot, &payload).len();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB17);
        let samples = 16;
        for _ in 0..samples {
            let byte = rng.gen_range(0..framed_len);
            let bit = rng.gen_range(0u32..8) as u8;
            let path = dir.join("fc-flip.pkgm");
            let faulty =
                FaultyIo::new(FaultPlan::new().with_fault(0, Fault::FlipBit { byte, bit }));
            artifact::write_artifact(&faulty, &path, ArtifactKind::Snapshot, &payload)
                .map_err(|e| e.to_string())?;
            if serialize::read_snapshot_file(&io, &path).is_ok() {
                return Err(format!("flipped bit {bit} of byte {byte} went undetected"));
            }
            io.remove(&path).ok();
        }
        Ok(format!("{samples} random single-bit flips all detected"))
    });

    report.run("kill-during-checkpoint-resumes", || {
        let ckpt_dir = dir.join("fc-ckpts");
        std::fs::remove_dir_all(&ckpt_dir).ok();
        let fresh_model = || {
            PkgmModel::new(
                store.n_entities() as usize,
                store.n_relations() as usize,
                PkgmConfig::new(8).with_seed(seed ^ 1),
            )
        };
        let total_epochs = 6;
        let ckpt = CheckpointConfig {
            dir: ckpt_dir.clone(),
            every: 1,
            keep_last: 3,
        };

        // Reference: uninterrupted run.
        let mut m_ref = fresh_model();
        let mut t_ref = Trainer::new(&m_ref, quick_train_cfg(seed, total_epochs));
        t_ref.train(&mut m_ref, &store);

        // Interrupted run: the 4th checkpoint write is torn mid-file.
        let mut m = fresh_model();
        let mut t = Trainer::new(&m, quick_train_cfg(seed, total_epochs));
        let faulty = FaultyIo::new(FaultPlan::new().with_fault(3, Fault::TornWrite { keep: 40 }));
        let crashed = t.train_with_checkpoints(&mut m, &store, &ckpt, &faulty);
        if crashed.is_ok() {
            return Err("training survived a torn checkpoint write".into());
        }
        drop((m, t)); // the process is gone

        // Restart: the torn ckpt-00004 must be skipped, ckpt-00003 loads.
        let scan = load_latest_checkpoint(&io, &ckpt_dir).map_err(|e| e.to_string())?;
        let resumed = scan
            .resumed
            .ok_or("no valid checkpoint survived the crash")?;
        if resumed.trainer.epochs_done() != 3 {
            return Err(format!(
                "expected resume at epoch 3, got {} (skipped: {:?})",
                resumed.trainer.epochs_done(),
                scan.skipped
            ));
        }
        if scan.skipped.is_empty() {
            return Err("torn checkpoint was not detected".into());
        }
        let (mut m2, mut t2) = (resumed.model, resumed.trainer);
        t2.train_with_checkpoints(&mut m2, &store, &ckpt, &io)
            .map_err(|e| e.to_string())?;
        if m2.ent != m_ref.ent || m2.rel != m_ref.rel || m2.mats != m_ref.mats {
            return Err("resumed run diverged from uninterrupted run".into());
        }
        Ok("kill at checkpoint 4/6 → resumed from 3, final params bit-identical".into())
    });

    report.run("failed-write-keeps-previous-artifact", || {
        let path = dir.join("fc-stable.pkgm");
        serialize::write_snapshot_file(&io, &path, &snapshot).map_err(|e| e.to_string())?;
        let faulty = FaultyIo::new(FaultPlan::new().with_fault(0, Fault::FailWrite));
        let second = serialize::write_snapshot_file(&faulty, &path, &snapshot);
        if second.is_ok() {
            return Err("failed write reported success".into());
        }
        let back = serialize::read_snapshot_file(&io, &path)
            .map_err(|e| format!("previous artifact lost after failed overwrite: {e}"))?;
        if back != snapshot {
            return Err("previous artifact corrupted by failed overwrite".into());
        }
        Ok("failed overwrite left the previous valid artifact intact".into())
    });

    report.run("degraded-serving-no-panic", || {
        let cached = CachedService::new(service.clone(), 16);
        let unknown = EntityId(u32::MAX);
        let v = cached.condensed_service(unknown);
        if v.iter().any(|&x| x != 0.0) {
            return Err("fallback condensed vector is not the documented zero vector".into());
        }
        let seq = cached.sequence_service(unknown);
        if seq.len() != 2 * service.k() {
            return Err("fallback sequence service has the wrong shape".into());
        }
        let batch = cached.condensed_service_batch(&[EntityId(0), unknown, EntityId(1)]);
        if batch.len() != 3 {
            return Err("degraded batch dropped items".into());
        }
        let stats = cached.stats();
        if stats.degraded < 3 {
            return Err(format!(
                "expected ≥3 degraded requests counted, got {}",
                stats.degraded
            ));
        }
        let row = snapshot.condensed_or_fallback(EntityId(u32::MAX));
        if row.1 {
            // degraded flag set — expected; the row must be the mean row.
            if row.0 != snapshot.fallback_row() {
                return Err("snapshot fallback row mismatch".into());
            }
        } else {
            return Err("out-of-range snapshot row not flagged degraded".into());
        }
        Ok(format!(
            "unknown ids served fallbacks, degraded counter at {}",
            stats.degraded
        ))
    });

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 10);
        let b = FaultPlan::seeded(7, 10);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.len(), 1);
    }

    #[test]
    fn faulty_io_counts_writes_and_injections() {
        let dir = std::env::temp_dir().join(format!("pkgm-faultyio-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let io = FaultyIo::new(FaultPlan::new().with_fault(1, Fault::FailWrite));
        let p = dir.join("a.pkgm");
        assert!(io.write_atomic(&p, b"ok").is_ok());
        assert!(matches!(
            io.write_atomic(&p, b"fails"),
            Err(ArtifactError::Injected { .. })
        ));
        assert!(io.write_atomic(&p, b"ok again").is_ok());
        assert_eq!(io.writes(), 3);
        assert_eq!(io.injected(), 1);
        // The failed write never touched the file.
        assert_eq!(io.read(&p).unwrap(), b"ok again");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_battery_passes() {
        let dir = std::env::temp_dir().join(format!("pkgm-faultcheck-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = run_faultcheck(&dir, 42);
        for s in &report.scenarios {
            assert!(s.passed, "scenario {} failed: {}", s.name, s.detail);
        }
        assert!(report.scenarios.len() >= 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}

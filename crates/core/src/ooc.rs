//! Out-of-core pre-training: train a knowledge-graph table **larger than
//! RAM** by partitioning the entity embedding table into contiguous
//! entity-range shards on disk and paging at most two partitions in at a
//! time.
//!
//! ## The block schedule
//!
//! An epoch shuffles all triple indices with the *resident trainer's* RNG
//! (`seed ^ (epoch << 32) ^ 0x5EED`), then stable-partitions them by the
//! *bucket* `(part(head), part(tail))` — a counting sort that preserves the
//! shuffled order within each bucket. Buckets run in ascending order; each
//! bucket is one **block**: its two partitions (entity rows + Adam moments)
//! are loaded, a block-local [`Trainer`] replays the resident minibatch
//! loop over the bucket's triples (same per-batch seeds, same chunk layout,
//! same fused kernels, same Adam step counter `t`), and the updated rows
//! are paged back out before the next block loads.
//!
//! ## Equivalence contract
//!
//! * **One block** (the budget fits the whole table, `P = 1`): the bucket
//!   sort is the identity, the block-local id space *is* the global id
//!   space, and the corruption sampler consumes the identical RNG stream —
//!   training is **bit-for-bit identical** to the resident [`Trainer`]
//!   (asserted by `single_block_training_is_bit_identical_to_resident`).
//! * **Multiple blocks**: the schedule reorders minibatches across buckets
//!   and corruption draws block-local negatives, so parameters differ from
//!   resident training — but the run is **seed-deterministic** (same seeds
//!   → same bits, including across kill/resume cycles) and gated on eval
//!   parity with the resident trainer in `crates/core/tests/ooc_training.rs`.
//!
//! ## On-disk state
//!
//! Everything lives in `OocConfig::dir` as atomic, CRC-checked
//! [`crate::artifact`] files (kind [`ArtifactKind::Checkpoint`]):
//!
//! * `ooc-part-{K:05}of{N:05}.pkgm` — one partition: entity rows + Adam
//!   `m`/`v` moments, stamped with the generation that last wrote it;
//! * `ooc-resident.pkgm` — the small always-resident state (relation
//!   embeddings, transfer matrices, their moments, the Adam step counter
//!   and the epoch/block cursor), written **after** the partitions of each
//!   block commit;
//! * `ooc-manifest.pkgm` — static config (model/train hyper-parameters,
//!   the partition plan) as JSON.
//!
//! A crash between a partition write and the resident commit leaves that
//! partition stamped one generation ahead; [`OocTrainer::resume`] detects
//! the mismatch at load time and refuses to silently re-apply the block.

use std::fmt;
use std::mem;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::artifact::{self, ArtifactError, ArtifactKind, StdIo};
use crate::kernels::{fused_chunk_grads, ChunkGrads, ScratchPool};
use crate::model::{PkgmConfig, PkgmModel};
use crate::negative::{CorruptedPair, Corruption};
use crate::snapshot::ShardSpec;
use crate::snapshot3::{shard_ranges, Ss3DenseWriter};
use crate::trainer::{diverged, EpochStats, TrainConfig, Trainer};
use pkgm_store::{EntityId, KeyRelationSelector, RelationId, Triple, TripleStore};

const MANIFEST_FILE: &str = "ooc-manifest.pkgm";
const RESIDENT_FILE: &str = "ooc-resident.pkgm";
const MANIFEST_VERSION: u32 = 1;

/// A streamed source of training triples: random access by index, id-space
/// bounds, and membership (for filtered negative sampling) — everything the
/// block scheduler needs without requiring the triples to be materialized
/// as a [`TripleStore`].
pub trait TripleSource: Sync {
    /// Entity id space size (ids are `0..n_entities`).
    fn n_entities(&self) -> u32;
    /// Relation id space size.
    fn n_relations(&self) -> u32;
    /// Number of triples.
    fn len(&self) -> usize;
    /// True when there are no triples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The `idx`-th triple (`idx < len()`).
    fn triple(&self, idx: usize) -> Triple;
    /// Is this triple a known positive? (Filtered corruption check.)
    fn contains(&self, t: Triple) -> bool;
}

impl TripleSource for TripleStore {
    fn n_entities(&self) -> u32 {
        TripleStore::n_entities(self)
    }
    fn n_relations(&self) -> u32 {
        TripleStore::n_relations(self)
    }
    fn len(&self) -> usize {
        TripleStore::len(self)
    }
    fn triple(&self, idx: usize) -> Triple {
        self.triples()[idx]
    }
    fn contains(&self, t: Triple) -> bool {
        TripleStore::contains(self, t)
    }
}

/// A deterministic synthetic triple stream: every triple is a pure function
/// of `(seed, idx)` via splitmix64, so arbitrarily large training sets cost
/// O(1) memory. `contains` always answers `false` (no filtering — the
/// stream has no materialized membership), which keeps sampling
/// deterministic and cheap.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticTriples {
    /// Entity id space size.
    pub n_entities: u32,
    /// Relation id space size.
    pub n_relations: u32,
    /// Number of triples the stream yields.
    pub n_triples: usize,
    /// Stream seed.
    pub seed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TripleSource for SyntheticTriples {
    fn n_entities(&self) -> u32 {
        self.n_entities
    }
    fn n_relations(&self) -> u32 {
        self.n_relations
    }
    fn len(&self) -> usize {
        self.n_triples
    }
    fn triple(&self, idx: usize) -> Triple {
        let a = splitmix64(self.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let b = splitmix64(a);
        let c = splitmix64(b);
        Triple::from_raw(
            (a % self.n_entities.max(1) as u64) as u32,
            (c % self.n_relations.max(1) as u64) as u32,
            (b % self.n_entities.max(1) as u64) as u32,
        )
    }
    fn contains(&self, _t: Triple) -> bool {
        false
    }
}

/// Out-of-core training failure.
#[derive(Debug)]
pub enum OocError {
    /// Artifact-layer I/O or integrity failure.
    Artifact(ArtifactError),
    /// Raw I/O failure (directory creation, snapshot emission).
    Io(std::io::Error),
    /// The memory budget cannot hold even one two-partition block.
    Budget(String),
    /// Inconsistent or unusable on-disk state.
    State(String),
}

impl fmt::Display for OocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OocError::Artifact(e) => write!(f, "artifact: {e}"),
            OocError::Io(e) => write!(f, "io: {e}"),
            OocError::Budget(m) => write!(f, "memory budget: {m}"),
            OocError::State(m) => write!(f, "out-of-core state: {m}"),
        }
    }
}

impl std::error::Error for OocError {}

impl From<ArtifactError> for OocError {
    fn from(e: ArtifactError) -> Self {
        OocError::Artifact(e)
    }
}

impl From<std::io::Error> for OocError {
    fn from(e: std::io::Error) -> Self {
        OocError::Io(e)
    }
}

/// Out-of-core training configuration.
#[derive(Debug, Clone)]
pub struct OocConfig {
    /// Model hyper-parameters (the init seed drives the streamed init).
    pub model: PkgmConfig,
    /// Training hyper-parameters (shared with the resident [`Trainer`]).
    pub train: TrainConfig,
    /// Budget in bytes for paged-in entity state. One entity row costs
    /// `3 · dim · 4` bytes (embedding + Adam m + Adam v); a block pages in
    /// at most two partitions, so the partition count is the smallest `P`
    /// with `2 · ceil(n/P)` rows under budget.
    pub mem_budget: usize,
    /// Directory for partition, resident-state and manifest files.
    pub dir: PathBuf,
}

/// Plan the entity-range partitions for `n_entities` rows of dimension
/// `dim` under `mem_budget` bytes. Returns `(row_start, n_rows)` per
/// partition — one partition when everything fits, else the smallest count
/// whose two-partition blocks fit the budget.
pub fn plan_partitions(
    n_entities: u64,
    dim: usize,
    mem_budget: u64,
) -> Result<Vec<(u64, u64)>, OocError> {
    if n_entities == 0 {
        return Err(OocError::State("no entities to partition".into()));
    }
    let bpe = (3 * dim * 4) as u64;
    if n_entities.saturating_mul(bpe) <= mem_budget {
        return Ok(vec![(0, n_entities)]);
    }
    let rows_max = mem_budget / (2 * bpe);
    if rows_max == 0 {
        return Err(OocError::Budget(format!(
            "budget {mem_budget} B cannot hold two entity rows ({} B each paged state)",
            bpe * 2
        )));
    }
    let p = n_entities.div_ceil(rows_max).max(2).min(n_entities);
    if p > u32::MAX as u64 {
        return Err(OocError::Budget(format!(
            "budget {mem_budget} B needs {p} partitions (max {})",
            u32::MAX
        )));
    }
    Ok(shard_ranges(n_entities, p as u32)
        .into_iter()
        .map(|(spec, n)| (spec.row_start, n))
        .collect())
}

/// Shard-file naming shared with the CLI and the router's discovery:
/// `{base}.shard{K}of{N}` (0-based `K`), or `base` itself when `N <= 1`.
pub fn shard_file_path(base: &Path, shard_id: u32, n_shards: u32) -> PathBuf {
    if n_shards <= 1 {
        base.to_path_buf()
    } else {
        let mut s = base.as_os_str().to_os_string();
        s.push(format!(".shard{shard_id}of{n_shards}"));
        PathBuf::from(s)
    }
}

/// Report from one [`OocTrainer::train`] call.
#[derive(Debug, Clone, Serialize)]
pub struct OocReport {
    /// Stats per epoch touched by this call (a mid-epoch resume reports a
    /// partial first entry covering only the blocks it ran).
    pub epochs: Vec<EpochStats>,
    /// Number of entity-range partitions in the plan.
    pub n_partitions: usize,
    /// Blocks executed by this call.
    pub blocks: usize,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
    /// `Some(reason)` if the divergence guard stopped training early.
    pub halted: Option<String>,
}

#[derive(Serialize, Deserialize)]
struct Manifest {
    version: u32,
    n_entities: u64,
    n_relations: u64,
    model: PkgmConfig,
    train: TrainConfig,
    mem_budget: u64,
    partitions: Vec<(u64, u64)>,
}

/// Block-local ↔ global entity id translation for the (up to) two loaded
/// partitions. Locals are `0..len_0` for the first segment and
/// `len_0..len_0+len_1` for the second.
struct BlockSpace {
    segs: [(u64, u64); 2],
}

impl BlockSpace {
    fn one(start: u64, len: u64) -> Self {
        Self {
            segs: [(start, len), (start + len, 0)],
        }
    }

    fn two(s0: u64, l0: u64, s1: u64, l1: u64) -> Self {
        Self {
            segs: [(s0, l0), (s1, l1)],
        }
    }

    fn n_local(&self) -> u64 {
        self.segs[0].1 + self.segs[1].1
    }

    fn to_global(&self, local: u32) -> u32 {
        let l = local as u64;
        if l < self.segs[0].1 {
            (self.segs[0].0 + l) as u32
        } else {
            (self.segs[1].0 + (l - self.segs[0].1)) as u32
        }
    }

    fn to_local(&self, global: u32) -> u32 {
        let g = global as u64;
        let (s0, l0) = self.segs[0];
        if g >= s0 && g < s0 + l0 {
            (g - s0) as u32
        } else {
            let (s1, l1) = self.segs[1];
            debug_assert!(g >= s1 && g < s1 + l1, "entity {global} outside block");
            (l0 + (g - s1)) as u32
        }
    }

    fn localize(&self, t: Triple) -> Triple {
        Triple::from_raw(
            self.to_local(t.head.0),
            t.relation.0,
            self.to_local(t.tail.0),
        )
    }

    fn globalize(&self, t: Triple) -> Triple {
        Triple::from_raw(
            self.to_global(t.head.0),
            t.relation.0,
            self.to_global(t.tail.0),
        )
    }
}

/// The block-local twin of [`crate::negative::NegativeSampler`]: identical
/// branch structure and RNG consumption, but entity replacements draw from
/// the block's local id space and the filtered-membership check translates
/// back to global ids. With one all-covering block the two samplers consume
/// identical RNG streams and produce identical corruptions.
struct OocSampler {
    n_entities: u32,
    n_relations: u32,
    relation_prob: f64,
    filtered: bool,
}

impl OocSampler {
    fn new(block_entities: u32, n_relations: u32) -> Self {
        Self {
            n_entities: block_entities,
            n_relations,
            relation_prob: 0.2,
            filtered: true,
        }
    }

    fn corrupt<S: TripleSource + ?Sized>(
        &self,
        pos: Triple,
        source: &S,
        space: &BlockSpace,
        rng: &mut impl Rng,
    ) -> (Triple, Corruption) {
        for _ in 0..64 {
            let (neg, slot) = self.corrupt_once(pos, rng);
            if neg == pos {
                continue;
            }
            if !self.filtered || !source.contains(space.globalize(neg)) {
                return (neg, slot);
            }
        }
        self.corrupt_once(pos, rng)
    }

    fn corrupt_batch_into<S: TripleSource + ?Sized>(
        &self,
        positives: impl IntoIterator<Item = Triple>,
        source: &S,
        space: &BlockSpace,
        negatives: usize,
        rng: &mut impl Rng,
        out: &mut Vec<CorruptedPair>,
    ) {
        out.clear();
        for pos in positives {
            for _ in 0..negatives {
                let (neg, slot) = self.corrupt(pos, source, space, rng);
                out.push(CorruptedPair { pos, neg, slot });
            }
        }
    }

    fn corrupt_once(&self, pos: Triple, rng: &mut impl Rng) -> (Triple, Corruption) {
        let roll: f64 = rng.gen();
        if roll < self.relation_prob && self.n_relations > 1 {
            let mut t = pos;
            t.relation = RelationId(rng.gen_range(0..self.n_relations));
            (t, Corruption::Relation)
        } else if rng.gen_bool(0.5) {
            let mut t = pos;
            t.head = EntityId(rng.gen_range(0..self.n_entities));
            (t, Corruption::Head)
        } else {
            let mut t = pos;
            t.tail = EntityId(rng.gen_range(0..self.n_entities));
            (t, Corruption::Tail)
        }
    }
}

#[derive(Debug)]
struct PartitionState {
    ent: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

/// The out-of-core trainer: an entity-range partitioned embedding table on
/// disk, block-scheduled training under [`OocConfig::mem_budget`], and
/// per-block warm-start checkpointing. See the module docs for the
/// equivalence contract.
pub struct OocTrainer {
    cfg: OocConfig,
    n_entities: u64,
    n_relations: u64,
    parts: Vec<(u64, u64)>,
    /// Monotone commit counter: bumped once per block. Partition files are
    /// stamped with the generation that wrote them; the resident file's
    /// stamp is authoritative, so a partition stamped ahead marks an
    /// interrupted commit.
    gen: u64,
    t: u64,
    epochs_done: usize,
    blocks_done: usize,
    rel: Vec<f32>,
    mats: Vec<f32>,
    m_rel: Vec<f32>,
    v_rel: Vec<f32>,
    m_mat: Vec<f32>,
    v_mat: Vec<f32>,
    pool: ScratchPool,
}

impl OocTrainer {
    /// Initialize fresh out-of-core state in `cfg.dir`: plan the partition
    /// layout, stream the model init partition-by-partition to disk (one
    /// RNG, identical draw order to [`PkgmModel::new`] — the assembled
    /// table is bit-identical to a resident init with the same seed), and
    /// persist the manifest + resident state.
    pub fn new<S: TripleSource + ?Sized>(source: &S, cfg: OocConfig) -> Result<Self, OocError> {
        let n_entities = TripleSource::n_entities(source) as u64;
        let n_relations = TripleSource::n_relations(source) as u64;
        if n_entities == 0 || n_relations == 0 || source.is_empty() {
            return Err(OocError::State("empty triple source".into()));
        }
        let d = cfg.model.dim;
        let parts = plan_partitions(n_entities, d, cfg.mem_budget as u64)?;
        std::fs::create_dir_all(&cfg.dir)?;

        let mut me = Self {
            cfg,
            n_entities,
            n_relations,
            parts,
            gen: 0,
            t: 0,
            epochs_done: 0,
            blocks_done: 0,
            rel: Vec::new(),
            mats: Vec::new(),
            m_rel: vec![0.0; n_relations as usize * d],
            v_rel: vec![0.0; n_relations as usize * d],
            m_mat: Vec::new(),
            v_mat: Vec::new(),
            pool: ScratchPool::new(),
        };

        // Streamed init: same single RNG and draw order as PkgmModel::new.
        let mut rng = SmallRng::seed_from_u64(me.cfg.model.seed ^ 0x9E37_79B9);
        let bound = 6.0 / (d as f64).sqrt();
        for k in 0..me.parts.len() {
            let (start, len) = me.parts[k];
            let n = len as usize * d;
            let mut ent = vec![0.0f32; n];
            for x in ent.iter_mut() {
                *x = rng.gen_range(-bound..bound) as f32;
            }
            let zeros = vec![0.0f32; n];
            me.write_partition_raw(k, 0, start, len, &ent, &zeros, &zeros)?;
        }
        me.rel = (0..n_relations as usize * d)
            .map(|_| rng.gen_range(-bound..bound) as f32)
            .collect();
        if me.cfg.model.relation_module {
            let nr = n_relations as usize;
            let mut m = vec![0.0f32; nr * d * d];
            for r in 0..nr {
                for i in 0..d {
                    for j in 0..d {
                        let noise =
                            rng.gen_range(-me.cfg.model.init_noise..me.cfg.model.init_noise) as f32;
                        m[r * d * d + i * d + j] = noise + if i == j { 1.0 } else { 0.0 };
                    }
                }
            }
            me.mats = m;
            me.m_mat = vec![0.0; nr * d * d];
            me.v_mat = vec![0.0; nr * d * d];
        }

        me.write_manifest()?;
        me.save_resident()?;
        Ok(me)
    }

    /// Reopen existing out-of-core state for a warm-start resume. Partition
    /// generation stamps are validated lazily as blocks load them.
    pub fn resume(dir: &Path) -> Result<Self, OocError> {
        let payload =
            artifact::read_artifact(&StdIo, &dir.join(MANIFEST_FILE), ArtifactKind::Checkpoint)?;
        let manifest: Manifest = serde_json::from_slice(&payload)
            .map_err(|e| OocError::State(format!("bad manifest: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(OocError::State(format!(
                "manifest version {} (expected {MANIFEST_VERSION})",
                manifest.version
            )));
        }
        let d = manifest.model.dim;
        let nr = manifest.n_relations as usize;
        let mat_len = if manifest.model.relation_module {
            nr * d * d
        } else {
            0
        };

        let bytes =
            artifact::read_artifact(&StdIo, &dir.join(RESIDENT_FILE), ArtifactKind::Checkpoint)?;
        let mut r = Reader::new(&bytes, dir.join(RESIDENT_FILE));
        let gen = r.u64()?;
        let t = r.u64()?;
        let epochs_done = r.u64()? as usize;
        let blocks_done = r.u64()? as usize;
        let rel = r.f32s(nr * d)?;
        let mats = r.f32s(mat_len)?;
        let m_rel = r.f32s(nr * d)?;
        let v_rel = r.f32s(nr * d)?;
        let m_mat = r.f32s(mat_len)?;
        let v_mat = r.f32s(mat_len)?;
        r.done()?;

        Ok(Self {
            cfg: OocConfig {
                model: manifest.model,
                train: manifest.train,
                mem_budget: manifest.mem_budget as usize,
                dir: dir.to_path_buf(),
            },
            n_entities: manifest.n_entities,
            n_relations: manifest.n_relations,
            parts: manifest.partitions,
            gen,
            t,
            epochs_done,
            blocks_done,
            rel,
            mats,
            m_rel,
            v_rel,
            m_mat,
            v_mat,
            pool: ScratchPool::new(),
        })
    }

    /// Partition plan: `(row_start, n_rows)` per partition.
    pub fn partitions(&self) -> &[(u64, u64)] {
        &self.parts
    }

    /// Number of entity-range partitions.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Epochs fully completed so far (across resumes).
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// Training configuration.
    pub fn config(&self) -> &OocConfig {
        &self.cfg
    }

    /// Train until `cfg.train.epochs` epochs are done, resuming from the
    /// persisted epoch/block cursor. Every block commits its partitions and
    /// then the resident state, so a kill at any block boundary loses at
    /// most one in-flight block.
    pub fn train<S: TripleSource + ?Sized>(&mut self, source: &S) -> Result<OocReport, OocError> {
        if source.n_entities() as u64 != self.n_entities
            || source.n_relations() as u64 != self.n_relations
        {
            return Err(OocError::State(format!(
                "source id spaces ({} entities, {} relations) do not match the trained state ({}, {})",
                source.n_entities(),
                source.n_relations(),
                self.n_entities,
                self.n_relations
            )));
        }
        let start = Instant::now();
        let total = self.cfg.train.epochs;
        let mut epochs = Vec::new();
        let mut halted = None;
        let mut best_loss = f32::INFINITY;
        let mut blocks_run = 0usize;
        // A mid-epoch resume reports partial stats for its first epoch —
        // they cover only the remaining blocks, so the divergence guard
        // (which compares full-epoch means) skips that epoch.
        let mut partial_epoch = self.blocks_done > 0;
        while self.epochs_done < total {
            let epoch = self.epochs_done;
            let stats = self.train_epoch(source, epoch as u64, &mut blocks_run)?;
            if !partial_epoch {
                if let Some(reason) = diverged(stats.mean_loss, best_loss) {
                    halted = Some(format!("epoch {}: {reason}", epoch + 1));
                    epochs.push(stats);
                    break;
                }
                best_loss = best_loss.min(stats.mean_loss.max(1e-3));
            }
            partial_epoch = false;
            epochs.push(stats);
            self.epochs_done = epoch + 1;
            self.blocks_done = 0;
            self.save_resident()?;
        }
        Ok(OocReport {
            epochs,
            n_partitions: self.parts.len(),
            blocks: blocks_run,
            wall_secs: start.elapsed().as_secs_f64(),
            halted,
        })
    }

    fn part_of(&self, e: u32) -> usize {
        let g = e as u64;
        self.parts.partition_point(|&(start, len)| start + len <= g)
    }

    fn train_epoch<S: TripleSource + ?Sized>(
        &mut self,
        source: &S,
        epoch: u64,
        blocks_run: &mut usize,
    ) -> Result<EpochStats, OocError> {
        // Identical shuffle to the resident trainer; the bucket grouping
        // below is a *stable* partition of this order.
        let mut order: Vec<u32> = (0..source.len() as u32).collect();
        let mut rng = SmallRng::seed_from_u64(self.cfg.train.seed ^ (epoch << 32) ^ 0x5EED);
        order.shuffle(&mut rng);

        let p = self.parts.len();
        let groups: Vec<(usize, usize, Vec<u32>)> = if p == 1 {
            vec![(0, 0, order)]
        } else {
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); p * p];
            for idx in order {
                let t = source.triple(idx as usize);
                let bi = self.part_of(t.head.0);
                let bj = self.part_of(t.tail.0);
                buckets[bi * p + bj].push(idx);
            }
            buckets
                .into_iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .map(|(id, b)| (id / p, id % p, b))
                .collect()
        };

        let batch_size = self.cfg.train.batch_size.max(1);
        let mut total_loss = 0.0f64;
        let mut total_violations = 0usize;
        let mut total_pairs = 0usize;
        let mut batch_idx = 0u64;
        for (block_idx, (pi, pj, idxs)) in groups.iter().enumerate() {
            let n_batches = idxs.len().div_ceil(batch_size) as u64;
            if block_idx < self.blocks_done {
                // Already committed before a resume: keep the global batch
                // counter (and with it the per-batch seeds) aligned.
                batch_idx += n_batches;
                continue;
            }
            let next_gen = self.gen + 1;
            let (loss, violations, pairs) =
                self.train_block(source, *pi, *pj, idxs, epoch, batch_idx, next_gen)?;
            batch_idx += n_batches;
            total_loss += loss;
            total_violations += violations;
            total_pairs += pairs;
            *blocks_run += 1;
            self.gen = next_gen;
            self.blocks_done = block_idx + 1;
            self.save_resident()?;
        }

        Ok(EpochStats {
            mean_loss: if total_pairs > 0 {
                (total_loss / total_pairs as f64) as f32
            } else {
                0.0
            },
            violation_rate: if total_pairs > 0 {
                total_violations as f32 / total_pairs as f32
            } else {
                0.0
            },
            pairs: total_pairs,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn train_block<S: TripleSource + ?Sized>(
        &mut self,
        source: &S,
        pi: usize,
        pj: usize,
        idxs: &[u32],
        epoch: u64,
        batch_start: u64,
        next_gen: u64,
    ) -> Result<(f64, usize, usize), OocError> {
        let d = self.cfg.model.dim;
        let (si, li) = self.parts[pi];
        let space = if pi == pj {
            BlockSpace::one(si, li)
        } else {
            let (sj, lj) = self.parts[pj];
            BlockSpace::two(si, li, sj, lj)
        };

        let mut st = self.load_partition(pi)?;
        if pj != pi {
            let other = self.load_partition(pj)?;
            st.ent.extend_from_slice(&other.ent);
            st.m.extend_from_slice(&other.m);
            st.v.extend_from_slice(&other.v);
        }
        let block_entities = space.n_local() as usize;

        let mut model = PkgmModel {
            cfg: self.cfg.model.clone(),
            n_entities: block_entities,
            n_relations: self.n_relations as usize,
            ent: st.ent,
            rel: mem::take(&mut self.rel),
            mats: mem::take(&mut self.mats),
        };
        let mut bt = Trainer::new(&model, self.cfg.train.clone());
        bt.m_ent = st.m;
        bt.v_ent = st.v;
        bt.m_rel = mem::take(&mut self.m_rel);
        bt.v_rel = mem::take(&mut self.v_rel);
        bt.m_mat = mem::take(&mut self.m_mat);
        bt.v_mat = mem::take(&mut self.v_mat);
        bt.t = self.t;

        let triples: Vec<Triple> = idxs
            .iter()
            .map(|&i| space.localize(source.triple(i as usize)))
            .collect();
        let sampler = OocSampler::new(block_entities as u32, self.n_relations as u32);

        let batch_size = bt.cfg.batch_size.max(1);
        let mut loss = 0.0f64;
        let mut violations = 0usize;
        let mut pairs = 0usize;
        for (k, batch) in triples.chunks(batch_size).enumerate() {
            let acc = block_batch_gradients(
                &bt,
                &model,
                source,
                &sampler,
                &space,
                &self.pool,
                batch,
                epoch,
                batch_start + k as u64,
            );
            loss += acc.loss;
            violations += acc.violations;
            pairs += acc.pairs;
            bt.apply(&mut model, acc);
        }

        self.t = bt.t;
        self.m_rel = mem::take(&mut bt.m_rel);
        self.v_rel = mem::take(&mut bt.v_rel);
        self.m_mat = mem::take(&mut bt.m_mat);
        self.v_mat = mem::take(&mut bt.v_mat);
        self.rel = mem::take(&mut model.rel);
        self.mats = mem::take(&mut model.mats);

        let ni = li as usize * d;
        self.write_partition_raw(
            pi,
            next_gen,
            si,
            li,
            &model.ent[..ni],
            &bt.m_ent[..ni],
            &bt.v_ent[..ni],
        )?;
        if pj != pi {
            let (sj, lj) = self.parts[pj];
            self.write_partition_raw(
                pj,
                next_gen,
                sj,
                lj,
                &model.ent[ni..],
                &bt.m_ent[ni..],
                &bt.v_ent[ni..],
            )?;
        }
        Ok((loss, violations, pairs))
    }

    /// Load every partition and assemble the full resident model — for
    /// evaluation and tests; requires the whole table to fit in RAM.
    pub fn assemble_model(&self) -> Result<PkgmModel, OocError> {
        let d = self.cfg.model.dim;
        let mut ent = Vec::with_capacity(self.n_entities as usize * d);
        for k in 0..self.parts.len() {
            let st = self.load_partition(k)?;
            ent.extend_from_slice(&st.ent);
        }
        Ok(PkgmModel {
            cfg: self.cfg.model.clone(),
            n_entities: self.n_entities as usize,
            n_relations: self.n_relations as usize,
            ent,
            rel: self.rel.clone(),
            mats: self.mats.clone(),
        })
    }

    /// Stream one PKGMSS3 dense snapshot per partition to
    /// `{base}.shard{K}of{N}` (or `base` when `N = 1`), never holding more
    /// than one partition of entity rows. Row values are bit-identical to a
    /// resident [`crate::snapshot::ServiceSnapshot::build`] +
    /// `shard_slice` over the assembled model, because each condensed row
    /// replays the exact serving arithmetic of
    /// [`crate::service::KnowledgeService::condensed_service_into`].
    pub fn write_snapshots(
        &self,
        selector: &KeyRelationSelector,
        base: &Path,
    ) -> Result<Vec<PathBuf>, OocError> {
        if !self.cfg.model.relation_module {
            return Err(OocError::State(
                "service snapshots require the relation module".into(),
            ));
        }
        let d = self.cfg.model.dim;
        let kf = selector.k() as f32;
        let n_shards = self.parts.len() as u32;
        let mut t_buf = vec![0.0f32; d];
        let mut r_buf = vec![0.0f32; d];
        let mut row = vec![0.0f32; 2 * d];
        let mut out_paths = Vec::with_capacity(self.parts.len());
        let mut block = PkgmModel {
            cfg: self.cfg.model.clone(),
            n_entities: 0,
            n_relations: self.n_relations as usize,
            ent: Vec::new(),
            rel: self.rel.clone(),
            mats: self.mats.clone(),
        };
        for (k, &(start, len)) in self.parts.iter().enumerate() {
            let st = self.load_partition(k)?;
            block.ent = st.ent;
            block.n_entities = len as usize;
            let path = shard_file_path(base, k as u32, n_shards);
            let spec = ShardSpec {
                n_shards,
                shard_id: k as u32,
                row_start: start,
            };
            let mut w = Ss3DenseWriter::create(&path, d, selector.k(), len, spec)?;
            for local in 0..len as usize {
                let gid = (start + local as u64) as u32;
                row.fill(0.0);
                for &r in selector.for_item(EntityId(gid)) {
                    block.service_t_into(EntityId(local as u32), r, &mut t_buf);
                    block.service_r_into(EntityId(local as u32), r, &mut r_buf);
                    for i in 0..d {
                        row[i] += t_buf[i] / kf;
                        row[d + i] += r_buf[i] / kf;
                    }
                }
                w.write_rows(&row)?;
            }
            w.finish()?;
            out_paths.push(path);
        }
        Ok(out_paths)
    }

    fn partition_path(&self, k: usize) -> PathBuf {
        self.cfg
            .dir
            .join(format!("ooc-part-{:05}of{:05}.pkgm", k, self.parts.len()))
    }

    #[allow(clippy::too_many_arguments)]
    fn write_partition_raw(
        &self,
        k: usize,
        gen: u64,
        start: u64,
        len: u64,
        ent: &[f32],
        m: &[f32],
        v: &[f32],
    ) -> Result<(), OocError> {
        let d = self.cfg.model.dim;
        let mut payload = Vec::with_capacity(32 + (ent.len() + m.len() + v.len()) * 4);
        push_u64(&mut payload, gen);
        push_u64(&mut payload, start);
        push_u64(&mut payload, len);
        push_u64(&mut payload, d as u64);
        push_f32s(&mut payload, ent);
        push_f32s(&mut payload, m);
        push_f32s(&mut payload, v);
        artifact::write_artifact(
            &StdIo,
            &self.partition_path(k),
            ArtifactKind::Checkpoint,
            &payload,
        )?;
        Ok(())
    }

    fn load_partition(&self, k: usize) -> Result<PartitionState, OocError> {
        let path = self.partition_path(k);
        let bytes = artifact::read_artifact(&StdIo, &path, ArtifactKind::Checkpoint)?;
        let mut r = Reader::new(&bytes, path.clone());
        let gen = r.u64()?;
        let start = r.u64()?;
        let len = r.u64()?;
        let dim = r.u64()?;
        let (want_start, want_len) = self.parts[k];
        if (start, len, dim as usize) != (want_start, want_len, self.cfg.model.dim) {
            return Err(OocError::State(format!(
                "{}: partition covers rows {start}+{len} dim {dim}, plan expects {want_start}+{want_len} dim {}",
                path.display(),
                self.cfg.model.dim
            )));
        }
        if gen > self.gen {
            return Err(OocError::State(format!(
                "{}: partition generation {gen} is ahead of the committed state ({}) — \
                 an interrupted block left mixed state; restart training from init",
                path.display(),
                self.gen
            )));
        }
        let n = len as usize * self.cfg.model.dim;
        let ent = r.f32s(n)?;
        let m = r.f32s(n)?;
        let v = r.f32s(n)?;
        r.done()?;
        Ok(PartitionState { ent, m, v })
    }

    fn write_manifest(&self) -> Result<(), OocError> {
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            n_entities: self.n_entities,
            n_relations: self.n_relations,
            model: self.cfg.model.clone(),
            train: self.cfg.train.clone(),
            mem_budget: self.cfg.mem_budget as u64,
            partitions: self.parts.clone(),
        };
        let json = serde_json::to_vec(&manifest)
            .map_err(|e| OocError::State(format!("manifest encode: {e}")))?;
        artifact::write_artifact(
            &StdIo,
            &self.cfg.dir.join(MANIFEST_FILE),
            ArtifactKind::Checkpoint,
            &json,
        )?;
        Ok(())
    }

    fn save_resident(&self) -> Result<(), OocError> {
        let mut payload = Vec::with_capacity(
            32 + (self.rel.len()
                + self.mats.len()
                + self.m_rel.len()
                + self.v_rel.len()
                + self.m_mat.len()
                + self.v_mat.len())
                * 4,
        );
        push_u64(&mut payload, self.gen);
        push_u64(&mut payload, self.t);
        push_u64(&mut payload, self.epochs_done as u64);
        push_u64(&mut payload, self.blocks_done as u64);
        push_f32s(&mut payload, &self.rel);
        push_f32s(&mut payload, &self.mats);
        push_f32s(&mut payload, &self.m_rel);
        push_f32s(&mut payload, &self.v_rel);
        push_f32s(&mut payload, &self.m_mat);
        push_f32s(&mut payload, &self.v_mat);
        artifact::write_artifact(
            &StdIo,
            &self.cfg.dir.join(RESIDENT_FILE),
            ArtifactKind::Checkpoint,
            &payload,
        )?;
        Ok(())
    }
}

/// The block-local twin of the resident trainer's `batch_gradients`: same
/// per-batch seed formula, same chunk layout (via
/// [`Trainer::chunk_size_for`]), same scratch/kernel path and ascending
/// fold — only the triples are pre-translated to block-local ids and the
/// sampler is the block-local [`OocSampler`].
#[allow(clippy::too_many_arguments)]
fn block_batch_gradients<S: TripleSource + ?Sized>(
    bt: &Trainer,
    model: &PkgmModel,
    source: &S,
    sampler: &OocSampler,
    space: &BlockSpace,
    pool: &ScratchPool,
    batch: &[Triple],
    epoch: u64,
    batch_idx: u64,
) -> ChunkGrads {
    let margin = bt.cfg.margin;
    let negatives = bt.cfg.negatives.max(1);
    let seed = bt.cfg.seed ^ (epoch << 40) ^ (batch_idx << 8);
    let chunk_size = bt.chunk_size_for(batch.len());

    let chunk_grads = |(chunk_idx, chunk): (usize, &[Triple])| -> ChunkGrads {
        let mut rng = SmallRng::seed_from_u64(seed ^ chunk_idx as u64);
        pool.with_scratch(model, |sc| {
            let mut pairs = std::mem::take(&mut sc.pairs);
            sampler.corrupt_batch_into(
                chunk.iter().copied(),
                source,
                space,
                negatives,
                &mut rng,
                &mut pairs,
            );
            let out = fused_chunk_grads(model, sc, &pairs, margin);
            sc.pairs = pairs;
            out
        })
    };

    let per_chunk: Vec<ChunkGrads> = if bt.cfg.parallel {
        batch
            .par_chunks(chunk_size)
            .enumerate()
            .map(chunk_grads)
            .collect()
    } else {
        batch
            .chunks(chunk_size)
            .enumerate()
            .map(chunk_grads)
            .collect()
    };
    per_chunk
        .into_iter()
        .fold(ChunkGrads::empty(), ChunkGrads::merge)
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f32s(buf: &mut Vec<u8>, xs: &[f32]) {
    buf.reserve(xs.len() * 4);
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
    path: PathBuf,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], path: PathBuf) -> Self {
        Self { buf, off: 0, path }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], OocError> {
        if self.off + n > self.buf.len() {
            return Err(OocError::State(format!(
                "{}: truncated payload ({} of {} bytes)",
                self.path.display(),
                self.buf.len(),
                self.off + n
            )));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, OocError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, OocError> {
        let b = self.take(n * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn done(&self) -> Result<(), OocError> {
        if self.off != self.buf.len() {
            return Err(OocError::State(format!(
                "{}: {} trailing bytes",
                self.path.display(),
                self.buf.len() - self.off
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkgm_store::StoreBuilder;

    fn store(n_items: u32, n_rel: u32) -> TripleStore {
        let mut b = StoreBuilder::new();
        for i in 0..n_items {
            for r in 0..n_rel {
                b.add_raw(i, r, n_items + (i * 7 + r * 3) % (n_items / 2).max(1));
            }
        }
        b.build()
    }

    fn train_cfg() -> TrainConfig {
        TrainConfig {
            lr: 5e-3,
            margin: 2.0,
            batch_size: 16,
            epochs: 3,
            negatives: 2,
            seed: 42,
            normalize_entities: true,
            parallel: false,
            chunk_size: Some(8),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pkgm-ooc-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn plan_keeps_one_partition_when_budget_fits() {
        let parts = plan_partitions(1000, 16, usize::MAX as u64).unwrap();
        assert_eq!(parts, vec![(0, 1000)]);
    }

    #[test]
    fn plan_splits_and_blocks_fit_budget() {
        let dim = 16;
        let bpe = (3 * dim * 4) as u64;
        let n = 1000u64;
        let budget = n * bpe / 3; // forces >= 2 partitions
        let parts = plan_partitions(n, dim, budget).unwrap();
        assert!(parts.len() >= 2, "expected a split, got {parts:?}");
        // contiguous cover
        let mut next = 0u64;
        for &(start, len) in &parts {
            assert_eq!(start, next);
            assert!(len > 0);
            next += len;
        }
        assert_eq!(next, n);
        // any two partitions fit the budget
        let max_len = parts.iter().map(|&(_, l)| l).max().unwrap();
        assert!(2 * max_len * bpe <= budget);
    }

    #[test]
    fn plan_rejects_impossible_budget() {
        assert!(matches!(
            plan_partitions(10, 64, 16),
            Err(OocError::Budget(_))
        ));
    }

    #[test]
    fn synthetic_triples_are_deterministic_and_in_range() {
        let s = SyntheticTriples {
            n_entities: 50,
            n_relations: 7,
            n_triples: 500,
            seed: 9,
        };
        for i in 0..s.len() {
            let t = s.triple(i);
            assert!(t.head.0 < 50 && t.tail.0 < 50 && t.relation.0 < 7);
            assert_eq!(t, s.triple(i));
        }
    }

    #[test]
    fn streamed_init_is_bit_identical_to_resident_init() {
        let s = store(40, 4);
        let model_cfg = PkgmConfig::new(8).with_seed(7);
        let dir = tmp_dir("init");
        let ooc = OocTrainer::new(
            &s,
            OocConfig {
                model: model_cfg.clone(),
                train: train_cfg(),
                mem_budget: 3 * 8 * 4 * 12, // ~12 rows per block -> several partitions
                dir: dir.clone(),
            },
        )
        .unwrap();
        assert!(ooc.n_partitions() >= 2);
        let assembled = ooc.assemble_model().unwrap();
        let resident = PkgmModel::new(
            TripleSource::n_entities(&s) as usize,
            TripleSource::n_relations(&s) as usize,
            model_cfg,
        );
        assert_eq!(bits(&assembled.ent), bits(&resident.ent));
        assert_eq!(bits(&assembled.rel), bits(&resident.rel));
        assert_eq!(bits(&assembled.mats), bits(&resident.mats));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn single_block_training_is_bit_identical_to_resident() {
        let s = store(40, 4);
        let model_cfg = PkgmConfig::new(8).with_seed(7);
        let tcfg = train_cfg();

        let mut resident = PkgmModel::new(
            TripleSource::n_entities(&s) as usize,
            TripleSource::n_relations(&s) as usize,
            model_cfg.clone(),
        );
        let mut rt = Trainer::new(&resident, tcfg.clone());
        let r_report = rt.train(&mut resident, &s);

        let dir = tmp_dir("p1");
        let mut ooc = OocTrainer::new(
            &s,
            OocConfig {
                model: model_cfg,
                train: tcfg,
                mem_budget: usize::MAX,
                dir: dir.clone(),
            },
        )
        .unwrap();
        assert_eq!(ooc.n_partitions(), 1);
        let o_report = ooc.train(&s).unwrap();
        let assembled = ooc.assemble_model().unwrap();

        assert_eq!(bits(&assembled.ent), bits(&resident.ent));
        assert_eq!(bits(&assembled.rel), bits(&resident.rel));
        assert_eq!(bits(&assembled.mats), bits(&resident.mats));
        for (a, b) in r_report.epochs.iter().zip(&o_report.epochs) {
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            assert_eq!(a.pairs, b.pairs);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_block_training_is_deterministic_across_resume() {
        let s = store(60, 3);
        let model_cfg = PkgmConfig::new(8).with_seed(11);
        let budget = 3 * 8 * 4 * 40; // 2 partitions x 20 rows per block
        let mut straight_cfg = train_cfg();
        straight_cfg.epochs = 2;

        let dir_a = tmp_dir("straight");
        let mut a = OocTrainer::new(
            &s,
            OocConfig {
                model: model_cfg.clone(),
                train: straight_cfg.clone(),
                mem_budget: budget,
                dir: dir_a.clone(),
            },
        )
        .unwrap();
        assert!(a.n_partitions() >= 2);
        a.train(&s).unwrap();
        let straight = a.assemble_model().unwrap();

        // Same run split into 1 epoch + resume for the second.
        let dir_b = tmp_dir("resumed");
        let mut first_cfg = straight_cfg.clone();
        first_cfg.epochs = 1;
        let mut b = OocTrainer::new(
            &s,
            OocConfig {
                model: model_cfg,
                train: first_cfg,
                mem_budget: budget,
                dir: dir_b.clone(),
            },
        )
        .unwrap();
        b.train(&s).unwrap();
        drop(b);
        let mut b = OocTrainer::resume(&dir_b).unwrap();
        b.cfg.train.epochs = straight_cfg.epochs;
        assert_eq!(b.epochs_done(), 1);
        b.train(&s).unwrap();
        let resumed = b.assemble_model().unwrap();

        assert_eq!(bits(&straight.ent), bits(&resumed.ent));
        assert_eq!(bits(&straight.rel), bits(&resumed.rel));
        assert_eq!(bits(&straight.mats), bits(&resumed.mats));
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn stale_generation_is_detected() {
        let s = store(30, 3);
        let dir = tmp_dir("gen");
        let ooc = OocTrainer::new(
            &s,
            OocConfig {
                model: PkgmConfig::new(8).with_seed(3),
                train: train_cfg(),
                mem_budget: usize::MAX,
                dir: dir.clone(),
            },
        )
        .unwrap();
        // Forge a partition stamped one generation ahead of the resident
        // commit — the signature of a block interrupted mid-commit.
        let st = ooc.load_partition(0).unwrap();
        let (start, len) = ooc.parts[0];
        ooc.write_partition_raw(0, ooc.gen + 1, start, len, &st.ent, &st.m, &st.v)
            .unwrap();
        let err = ooc.load_partition(0).unwrap_err();
        assert!(matches!(err, OocError::State(_)), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! `pkgm daemon` — the network serving front end.
//!
//! A thread-per-connection TCP server speaking the [`crate::protocol`]
//! frame format. Connection handlers never compute service vectors
//! themselves: lookups go through the [`DynamicBatcher`], which coalesces
//! concurrent requests — across connections — into single
//! [`CachedService::condensed_service_batch`] calls executed by a small
//! pool of batch workers. Admission control sheds (typed `Overloaded`
//! response) instead of stalling, so an overloaded daemon keeps answering
//! pings, stats, and reloads.
//!
//! ## Snapshot hot-swap
//!
//! The serving state lives behind a [`ServiceHolder`]: an
//! `RwLock<Arc<CachedService>>` where readers clone the `Arc` (one brief
//! shared lock per batch) and a reload installs a new `Arc` under the
//! write lock. Batches already in flight finish against the snapshot they
//! started with; the next batch picks up the new one — lookups never fail
//! or block during a swap. After the old service quiesces its
//! [`CacheStats`] are folded into a cumulative total, so statistics
//! survive swaps without double- or under-counting (see
//! [`CachedService::stats`] for the memory-ordering contract).
//!
//! A reload is driven over the wire: `pkgm daemon reload --addr …
//! --snapshot path` sends a [`Request::Reload`] with a **daemon-local**
//! path, and the daemon loads the `PKGMSS1`/`PKGMSS2` artifact through the
//! same CRC-validated [`crate::serialize`] machinery used everywhere else
//! — a corrupt or truncated snapshot is rejected with a typed error and
//! the live table keeps serving.

use crate::batcher::{BatchStats, DynamicBatcher, SubmitError, WaitError};
use crate::protocol::{self, DeadlineStage, ProtocolError, Request, Response};
use crate::serialize;
use crate::service::KnowledgeService;
use crate::serving::{CacheStats, CachedService};
use crate::snapshot::ServiceSnapshot;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Batch worker threads draining the queue (each call fans out over
    /// rayon internally, so a handful saturates a host).
    pub workers: usize,
    /// Max items coalesced into one service call.
    pub max_batch_items: usize,
    /// Max items queued before admission control sheds.
    pub queue_capacity: usize,
    /// Cache capacity (per shape) of each [`CachedService`] generation,
    /// including the ones built by reloads.
    pub cache_capacity: usize,
    /// Admission cap on concurrent connections: a connect past this is
    /// answered with a typed `Overloaded` frame and closed at accept time,
    /// instead of spawning an unbounded handler thread per socket.
    pub max_conns: usize,
    /// How long the batch queue may sit non-empty with zero batch progress
    /// before the watchdog declares the workers wedged and reinforces the
    /// pool.
    pub stall_timeout: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch_items: 1024,
            queue_capacity: 16_384,
            cache_capacity: 65_536,
            max_conns: 1024,
            stall_timeout: Duration::from_secs(2),
        }
    }
}

/// Atomic, stats-preserving holder of the current serving generation.
///
/// `get` takes one shared lock to clone the `Arc`; `swap` installs a new
/// generation under the write lock, waits for in-flight batches on the old
/// one to quiesce, then folds the old generation's [`CacheStats`] into a
/// cumulative total so [`ServiceHolder::cumulative_stats`] never loses
/// counts across hot-swaps.
pub struct ServiceHolder {
    current: RwLock<Arc<CachedService>>,
    folded: Mutex<CacheStats>,
    swaps: AtomicU64,
    /// Swaps whose quiesce wait timed out — late increments from batches
    /// still holding the retired generation were dropped from the
    /// cumulative stats. Nonzero means a worker wedged past
    /// [`SWAP_QUIESCE_TIMEOUT`].
    quiesce_timeouts: AtomicU64,
    /// In-progress swap tracking for the readiness probe: how many swaps
    /// are quiescing and when the earliest began.
    swap_track: Mutex<SwapTrack>,
}

#[derive(Default)]
struct SwapTrack {
    active: u32,
    earliest: Option<Instant>,
}

/// How long [`ServiceHolder::swap`] waits for in-flight batches on the old
/// generation before folding its stats anyway. Batches are bounded by
/// `max_batch_items`, so this is hit only if a worker wedged.
const SWAP_QUIESCE_TIMEOUT: Duration = Duration::from_secs(5);

impl ServiceHolder {
    /// Start with `service` as the live generation.
    pub fn new(service: CachedService) -> Self {
        Self {
            current: RwLock::new(Arc::new(service)),
            folded: Mutex::new(CacheStats::default()),
            swaps: AtomicU64::new(0),
            quiesce_timeouts: AtomicU64::new(0),
            swap_track: Mutex::new(SwapTrack::default()),
        }
    }

    /// The live generation (cloned `Arc`; callers keep batches consistent
    /// by resolving this once per batch).
    pub fn get(&self) -> Arc<CachedService> {
        Arc::clone(&self.current.read())
    }

    /// Install `next` as the live generation. In-flight batches finish
    /// against the generation they started with.
    ///
    /// The retired generation's counters fold in two steps so that
    /// [`ServiceHolder::cumulative_stats`] (which reads under the same
    /// `folded` lock) never observes a window where they are in neither
    /// place — a snapshot of the old counters is folded *atomically with*
    /// the generation replacement, and the increments still landing from
    /// in-flight batches are folded as a delta once the old generation
    /// quiesces. Totals are monotone throughout; only increments arriving
    /// after a (pathological, see [`SWAP_QUIESCE_TIMEOUT`]) quiesce
    /// timeout can be dropped.
    pub fn swap(&self, next: CachedService) {
        {
            let mut track = self.swap_track.lock();
            track.active += 1;
            track.earliest.get_or_insert_with(Instant::now);
        }
        let (old, pre) = {
            let mut folded = self.folded.lock();
            let old = {
                let mut cur = self.current.write();
                std::mem::replace(&mut *cur, Arc::new(next))
            };
            let pre = old.stats();
            *folded += pre;
            (old, pre)
        };
        // Quiesce: batch workers hold transient clones only while a batch
        // executes. Once ours is the last reference, every increment to the
        // old generation's counters is visible to the Acquire read inside
        // `stats()` (the increments are Release).
        let deadline = Instant::now() + SWAP_QUIESCE_TIMEOUT;
        while Arc::strong_count(&old) > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(200));
        }
        if Arc::strong_count(&old) > 1 {
            // In-flight batches still hold the retired generation: their
            // late stat increments are dropped. Count the event instead of
            // losing it silently.
            self.quiesce_timeouts.fetch_add(1, Ordering::Relaxed);
        }
        *self.folded.lock() += old.stats().since(&pre);
        self.swaps.fetch_add(1, Ordering::Release);
        {
            let mut track = self.swap_track.lock();
            track.active -= 1;
            if track.active == 0 {
                track.earliest = None;
            }
        }
    }

    /// Completed hot-swaps.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Acquire)
    }

    /// Swaps whose quiesce wait hit [`SWAP_QUIESCE_TIMEOUT`] and folded
    /// stats anyway (late increments dropped).
    pub fn quiesce_timeouts(&self) -> u64 {
        self.quiesce_timeouts.load(Ordering::Relaxed)
    }

    /// Whether a hot-swap has been quiescing longer than
    /// [`SWAP_QUIESCE_TIMEOUT`] — the readiness probe's "swap wedged"
    /// signal.
    pub fn wedged(&self) -> bool {
        self.swap_track
            .lock()
            .earliest
            .is_some_and(|t| t.elapsed() > SWAP_QUIESCE_TIMEOUT)
    }

    /// Cache statistics across every generation: retired generations'
    /// folded totals plus the live generation's counters, read under the
    /// same lock [`ServiceHolder::swap`] folds under (lock order: `folded`,
    /// then `current`) so the total is consistent — and therefore monotone
    /// — across concurrent hot-swaps.
    pub fn cumulative_stats(&self) -> CacheStats {
        let folded = self.folded.lock();
        let current = Arc::clone(&self.current.read());
        let mut total = *folded;
        total += current.stats();
        total
    }
}

/// Monotonic counters the daemon exposes via the `Stats` request.
#[derive(Default)]
struct DaemonCounters {
    connections: AtomicU64,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
    lookups: AtomicU64,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
    /// Connections shed at accept time by the `max_conns` admission cap.
    conns_rejected: AtomicU64,
    /// Batch workers the watchdog respawned (panicked) or reinforced
    /// (wedged).
    worker_restarts: AtomicU64,
    /// Accept loops the watchdog respawned after a panic.
    acceptor_restarts: AtomicU64,
}

/// State shared by the acceptor, connection handlers, and batch workers.
struct Shared {
    holder: ServiceHolder,
    batcher: DynamicBatcher,
    /// Master copy used to build each reload's [`CachedService`].
    master: KnowledgeService,
    cfg: DaemonConfig,
    addr: SocketAddr,
    counters: DaemonCounters,
    started: Instant,
    shutting_down: AtomicBool,
    /// Open connections, keyed by a connection id, so shutdown can unblock
    /// handler reads by closing the sockets.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    /// Signaled when shutdown is initiated; `Daemon::wait` blocks on it.
    done: (StdMutex<bool>, Condvar),
    /// Chaos hook: pending accept-loop panics (each accepted connection
    /// consumes one and panics, killing the acceptor thread).
    inject_accept_panics: AtomicU64,
}

impl Shared {
    /// Idempotently begin shutdown: refuse new work, wake the acceptor,
    /// and close every open connection so blocked reads return.
    fn initiate_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.batcher.stop();
        // Wake the acceptor out of `accept()`.
        let _ = TcpStream::connect(self.addr);
        for (_, stream) in self.conns.lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let mut done = self
            .done
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done = true;
        self.done.1.notify_all();
    }

    /// Load a snapshot artifact and hot-swap it in — `PKGMSS3` files come
    /// up memory-mapped (O(header) open), everything else resident.
    /// Returns a summary for the reload response.
    fn reload(&self, path: &str) -> Result<serde_json::Value, String> {
        let snap = serialize::open_snapshot_file(std::path::Path::new(path))
            .map_err(|e| format!("cannot load snapshot {path}: {e}"))?;
        if snap.dim() != self.master.dim() {
            return Err(format!(
                "snapshot dim {} does not match serving dim {}",
                snap.dim(),
                self.master.dim()
            ));
        }
        let summary = snapshot_summary_json(&snap, Some(path));
        let next = CachedService::with_snapshot(self.master.clone(), self.cfg.cache_capacity, snap);
        self.holder.swap(next);
        self.counters.reloads.fetch_add(1, Ordering::Relaxed);
        Ok(serde_json::json!({
            "swaps": self.holder.swaps(),
            "snapshot": summary,
        }))
    }

    /// Whether the daemon can serve a lookup right now: a live serving
    /// generation, an accepting batcher, and no hot-swap wedged past its
    /// quiesce timeout.
    fn is_ready(&self) -> bool {
        !self.shutting_down.load(Ordering::SeqCst)
            && !self.batcher.is_stopped()
            && !self.holder.wedged()
    }

    /// The JSON answering a `Health` request: process-level liveness plus
    /// the supervision counters.
    fn health_json(&self) -> serde_json::Value {
        serde_json::json!({
            "status": "ok",
            "uptime_secs": self.started.elapsed().as_secs_f64(),
            "worker_restarts": self.counters.worker_restarts.load(Ordering::Relaxed),
            "acceptor_restarts": self.counters.acceptor_restarts.load(Ordering::Relaxed),
        })
    }

    /// The JSON answering a `Ready` request, with the individual gates so
    /// an operator can see *why* a daemon is not ready.
    fn ready_json(&self) -> serde_json::Value {
        serde_json::json!({
            "ready": self.is_ready(),
            "batcher_accepting": !self.batcher.is_stopped(),
            "swap_wedged": self.holder.wedged(),
            "shutting_down": self.shutting_down.load(Ordering::SeqCst),
            "queued_items": self.batcher.queued_items() as u64,
            "snapshot": self.holder.get().snapshot().is_some(),
        })
    }

    /// The JSON answering a `ShardMap` request: the entity-range shard the
    /// live snapshot covers, in the exact shape the router tier consumes.
    /// A daemon without a snapshot serves the whole id space through the
    /// compute path, so it reports a single whole-table shard.
    fn shard_map_json(&self) -> serde_json::Value {
        let current = self.holder.get();
        let snapshot_json = match current.snapshot() {
            Some(s) => snapshot_summary_json(s, None),
            None => serde_json::Value::Null,
        };
        serde_json::json!({
            "dim": self.master.dim(),
            "ready": self.is_ready(),
            "swaps": self.holder.swaps(),
            "snapshot": snapshot_json,
        })
    }

    /// The stats JSON answering a `Stats` request.
    fn stats_json(&self) -> serde_json::Value {
        let cache = self.holder.cumulative_stats();
        let batch: BatchStats = self.batcher.stats();
        let current = self.holder.get();
        let batch_json = serde_json::json!({
            "batches": batch.batches,
            "requests": batch.requests,
            "items": batch.items,
            "shed": batch.shed,
            "max_batch_items": batch.max_batch_items,
            "mean_batch_items": batch.mean_batch_items(),
            "expired_enqueue": batch.expired_enqueue,
            "expired_queued": batch.expired_queued,
            "expired_executing": batch.expired_executing,
        });
        let cache_json = serde_json::json!({
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "degraded": cache.degraded,
            "total_requests": cache.total_requests(),
        });
        let snapshot_json = match current.snapshot() {
            Some(s) => snapshot_summary_json(s, None),
            None => serde_json::Value::Null,
        };
        serde_json::json!({
            "uptime_secs": self.started.elapsed().as_secs_f64(),
            "dim": self.master.dim(),
            "workers": self.cfg.workers,
            "connections": self.counters.connections.load(Ordering::Relaxed),
            "frames": self.counters.frames.load(Ordering::Relaxed),
            "protocol_errors": self.counters.protocol_errors.load(Ordering::Relaxed),
            "lookups": self.counters.lookups.load(Ordering::Relaxed),
            "reloads": self.counters.reloads.load(Ordering::Relaxed),
            "reload_failures": self.counters.reload_failures.load(Ordering::Relaxed),
            "swaps": self.holder.swaps(),
            "quiesce_timeouts": self.holder.quiesce_timeouts(),
            "conns_rejected": self.counters.conns_rejected.load(Ordering::Relaxed),
            "worker_restarts": self.counters.worker_restarts.load(Ordering::Relaxed),
            "acceptor_restarts": self.counters.acceptor_restarts.load(Ordering::Relaxed),
            "ready": self.is_ready(),
            "batch": batch_json,
            "cache": cache_json,
            "snapshot": snapshot_json,
        })
    }
}

/// The JSON summary of a serving snapshot shared by `stats` and `reload`
/// responses: row count, quantization, backing mode (resident vs mapped)
/// and — when the snapshot is an entity-range shard — which slice of the
/// table it covers.
fn snapshot_summary_json(snap: &crate::ServiceSnapshot, path: Option<&str>) -> serde_json::Value {
    let shard = snap.shard();
    let shard_json = serde_json::json!({
        "shard_id": shard.shard_id,
        "n_shards": shard.n_shards,
        "row_start": shard.row_start,
    });
    match path {
        Some(p) => serde_json::json!({
            "path": p,
            "rows": snap.n_rows(),
            "quantized": snap.is_quantized(),
            "backing": snap.backing().label(),
            "shard": shard_json,
        }),
        None => serde_json::json!({
            "rows": snap.n_rows(),
            "quantized": snap.is_quantized(),
            "backing": snap.backing().label(),
            "shard": shard_json,
        }),
    }
}

/// The supervised thread pool: the acceptor and the batch workers, shared
/// between the daemon handle (for joining) and the watchdog (for
/// respawning).
struct Supervised {
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A running serving daemon. Dropping the handle does **not** stop it;
/// call [`Daemon::shutdown`] or let a `Shutdown` request arrive and
/// [`Daemon::wait`] return.
pub struct Daemon {
    shared: Arc<Shared>,
    supervised: Arc<Mutex<Supervised>>,
    watchdog: Option<JoinHandle<()>>,
    /// Handler threads for accepted connections; finished handles are
    /// reaped opportunistically as new connections arrive.
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `service`, optionally backed by a precomputed `snapshot`.
    pub fn start(
        addr: &str,
        service: KnowledgeService,
        snapshot: Option<ServiceSnapshot>,
        cfg: DaemonConfig,
    ) -> io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let cached = match snapshot {
            Some(snap) => {
                if snap.dim() != service.dim() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "snapshot dim {} does not match service dim {}",
                            snap.dim(),
                            service.dim()
                        ),
                    ));
                }
                CachedService::with_snapshot(service.clone(), cfg.cache_capacity, snap)
            }
            None => CachedService::new(service.clone(), cfg.cache_capacity),
        };
        let shared = Arc::new(Shared {
            holder: ServiceHolder::new(cached),
            batcher: DynamicBatcher::new(cfg.queue_capacity, cfg.max_batch_items),
            master: service,
            cfg: cfg.clone(),
            addr: local,
            counters: DaemonCounters::default(),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            done: (StdMutex::new(false), Condvar::new()),
            inject_accept_panics: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| spawn_worker(&shared, i))
            .collect();
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let watchdog_listener = listener.try_clone()?;
        let acceptor = spawn_acceptor(listener, &shared, &handlers);
        let supervised = Arc::new(Mutex::new(Supervised {
            acceptor: Some(acceptor),
            workers,
        }));
        let watchdog = {
            let shared = Arc::clone(&shared);
            let supervised = Arc::clone(&supervised);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("pkgm-watchdog".into())
                .spawn(move || watchdog_loop(&shared, &supervised, &handlers, watchdog_listener))
                .expect("spawn watchdog")
        };
        Ok(Daemon {
            shared,
            supervised,
            watchdog: Some(watchdog),
            handlers,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Completed hot-swaps so far.
    pub fn swaps(&self) -> u64 {
        self.shared.holder.swaps()
    }

    /// Chaos hook: make the next batch pickup panic. The watchdog is
    /// expected to respawn the dead worker; queued work survives.
    pub fn inject_worker_panic(&self) {
        self.shared.batcher.inject_worker_panic();
    }

    /// Chaos hook: wedge the next batch pickup for `wedge` before it
    /// executes.
    pub fn inject_worker_wedge(&self, wedge: Duration) {
        self.shared.batcher.inject_worker_wedge(wedge);
    }

    /// Chaos hook: make the accept loop panic on its next accepted
    /// connection (that connection is dropped unanswered). The watchdog is
    /// expected to respawn the acceptor.
    pub fn inject_accept_panic(&self) {
        self.shared
            .inject_accept_panics
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Watchdog restart counters so far: `(worker_restarts,
    /// acceptor_restarts)`.
    pub fn restarts(&self) -> (u64, u64) {
        (
            self.shared.counters.worker_restarts.load(Ordering::Relaxed),
            self.shared
                .counters
                .acceptor_restarts
                .load(Ordering::Relaxed),
        )
    }

    /// Block until shutdown is initiated (by [`Daemon::shutdown`] or a
    /// `Shutdown` request over the wire), then join every thread.
    pub fn wait(mut self) {
        {
            let (lock, cv) = &self.shared.done;
            let mut done = lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while !*done {
                done = cv
                    .wait(done)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        self.join();
    }

    /// Initiate shutdown and join every thread. Queued requests fail with
    /// a typed error; open connections are closed.
    pub fn shutdown(mut self) {
        self.shared.initiate_shutdown();
        self.join();
    }

    fn join(&mut self) {
        // The watchdog first: once it exits, nothing respawns threads
        // behind our back while we drain the supervised pool.
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        {
            let mut sup = self.supervised.lock();
            if let Some(a) = sup.acceptor.take() {
                let _ = a.join();
            }
            for w in sup.workers.drain(..) {
                let _ = w.join();
            }
        }
        for h in self.handlers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawn one batch worker serving the holder's current generation.
fn spawn_worker(shared: &Arc<Shared>, i: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("pkgm-batch-{i}"))
        .spawn(move || {
            let holder = &shared.holder;
            shared.batcher.run_worker(|| holder.get());
        })
        .expect("spawn batch worker")
}

/// Spawn the accept loop on `listener`.
fn spawn_acceptor(
    listener: TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let handlers = Arc::clone(handlers);
    std::thread::Builder::new()
        .name("pkgm-accept".into())
        .spawn(move || accept_loop(&listener, &shared, &handlers))
        .expect("spawn acceptor")
}

/// How often the watchdog polls the supervised threads.
const WATCHDOG_TICK: Duration = Duration::from_millis(20);

/// Supervision loop: respawn panicked batch workers and a panicked
/// acceptor, and reinforce the worker pool when the queue stalls (work
/// pending, zero batch progress for `stall_timeout` — a wedged worker
/// cannot be killed, but it can be rendered harmless). Every restart is
/// counted in the stats JSON. Exits when shutdown begins.
fn watchdog_loop(
    shared: &Arc<Shared>,
    supervised: &Arc<Mutex<Supervised>>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    listener: TcpListener,
) {
    let mut next_worker_id = shared.cfg.workers.max(1);
    let mut last_batches = shared.batcher.stats().batches;
    let mut last_progress = Instant::now();
    // Reinforcements are bounded so a pathologically slow host can never
    // trigger an unbounded thread spiral.
    let max_workers = shared.cfg.workers.max(1) * 2;
    loop {
        std::thread::sleep(WATCHDOG_TICK);
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut sup = supervised.lock();
            // Dead workers: join (collecting the panic) and replace.
            let mut alive = Vec::with_capacity(sup.workers.len());
            for w in sup.workers.drain(..) {
                if w.is_finished() {
                    let _ = w.join();
                    shared
                        .counters
                        .worker_restarts
                        .fetch_add(1, Ordering::Relaxed);
                    alive.push(spawn_worker(shared, next_worker_id));
                    next_worker_id += 1;
                } else {
                    alive.push(w);
                }
            }
            sup.workers = alive;
            // Dead acceptor: respawn against the same listener.
            if sup.acceptor.as_ref().is_some_and(JoinHandle::is_finished) {
                let _ = sup.acceptor.take().expect("checked above").join();
                if let Ok(l) = listener.try_clone() {
                    shared
                        .counters
                        .acceptor_restarts
                        .fetch_add(1, Ordering::Relaxed);
                    sup.acceptor = Some(spawn_acceptor(l, shared, handlers));
                }
            }
            // Stall detection: work is queued but no batch has completed
            // for stall_timeout. Dead workers were already replaced above,
            // so this catches *wedged* ones — reinforce the pool (bounded)
            // so queued work drains past the stuck thread.
            let batches = shared.batcher.stats().batches;
            let queued = shared.batcher.queued_items();
            if batches != last_batches || queued == 0 {
                last_batches = batches;
                last_progress = Instant::now();
            } else if last_progress.elapsed() > shared.cfg.stall_timeout {
                if sup.workers.len() < max_workers {
                    shared
                        .counters
                        .worker_restarts
                        .fetch_add(1, Ordering::Relaxed);
                    sup.workers.push(spawn_worker(shared, next_worker_id));
                    next_worker_id += 1;
                }
                last_progress = Instant::now();
            }
        }
        // Shutdown may have begun while we held the lock — if we just
        // respawned an acceptor it would block in accept() forever, so
        // poke it awake the same way initiate_shutdown does.
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = TcpStream::connect(shared.addr);
            return;
        }
    }
}

/// Consume one pending accept-panic injection, if any.
fn chaos_take_accept_panic(shared: &Shared) -> bool {
    shared
        .inject_accept_panics
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// Accept connections until shutdown; each gets its own handler thread.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) if shared.shutting_down.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        // Chaos hook: die here, dropping the accepted connection, so the
        // netcheck battery can prove the watchdog resurrects the acceptor.
        if chaos_take_accept_panic(shared) {
            panic!("injected accept-loop panic (chaos hook)");
        }
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        // Admission control at the socket layer: past `max_conns` live
        // connections, answer with a typed Overloaded frame and close —
        // never spawn an unbounded handler thread per connect-storm socket.
        if shared.conns.lock().len() >= shared.cfg.max_conns {
            shared
                .counters
                .conns_rejected
                .fetch_add(1, Ordering::Relaxed);
            let mut writer = BufWriter::new(stream);
            let resp = protocol::encode_response(&Response::Overloaded);
            let _ = protocol::write_frame(&mut writer, &resp);
            continue;
        }
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        {
            // Check the flag and register the connection under one `conns`
            // lock: `initiate_shutdown` sets the flag *before* taking the
            // lock to close registered streams, so either we see the flag
            // here, or shutdown sees our entry — a connection accepted
            // mid-shutdown can never be left open with a blocked handler.
            let mut conns = shared.conns.lock();
            if shared.shutting_down.load(Ordering::SeqCst) {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            if let Ok(clone) = stream.try_clone() {
                conns.insert(id, clone);
            }
        }
        let shared_conn = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("pkgm-conn-{id}"))
            .spawn(move || {
                handle_connection(stream, &shared_conn);
                shared_conn.conns.lock().remove(&id);
            })
            .expect("spawn connection handler");
        let mut hs = handlers.lock();
        // Reap finished handlers so the vector stays proportional to the
        // number of *live* connections, not total ever accepted.
        hs.retain(|h| !h.is_finished());
        hs.push(handle);
    }
}

/// Serve one connection until clean close, protocol error, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let body = match protocol::read_frame(&mut reader) {
            Ok(Some(body)) => body,
            // Clean close between frames.
            Ok(None) => return,
            Err(e) => {
                // A mid-request disconnect or malformed frame: count it,
                // try to tell the client (often already gone), and close —
                // the framing is unrecoverable after a bad prefix.
                if !shared.shutting_down.load(Ordering::SeqCst) {
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                let resp = protocol::encode_response(&Response::BadRequest(e.to_string()));
                let _ = protocol::write_frame(&mut writer, &resp);
                return;
            }
        };
        shared.counters.frames.fetch_add(1, Ordering::Relaxed);
        let mut shutdown_after_reply = false;
        let framed = match protocol::decode_request(&body) {
            Ok(req) => {
                // Acknowledge a shutdown *before* initiating it — the
                // initiation closes every connection, including this one.
                shutdown_after_reply = matches!(req, Request::Shutdown);
                respond(req, shared)
            }
            Err(e) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                protocol::encode_response(&Response::BadRequest(e.to_string()))
            }
        };
        let wrote = protocol::write_frame(&mut writer, &framed).is_ok();
        if shutdown_after_reply {
            shared.initiate_shutdown();
            return;
        }
        if !wrote || shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Execute one decoded request and encode its response frame.
fn respond(req: Request, shared: &Arc<Shared>) -> Vec<u8> {
    match req {
        Request::Lookup(items) => serve_lookup(items, None, shared),
        Request::LookupDeadline {
            budget_micros,
            items,
        } => {
            // The budget is measured from frame decode; saturate so a
            // hostile u64::MAX budget cannot overflow Instant arithmetic.
            let deadline = Instant::now()
                .checked_add(Duration::from_micros(budget_micros))
                .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400));
            serve_lookup(items, Some(deadline), shared)
        }
        Request::Ping => protocol::encode_response(&Response::Empty),
        Request::Health => {
            let body = serde_json::to_string(&shared.health_json())
                .expect("health json literal serializes");
            protocol::encode_response(&Response::Json(body))
        }
        Request::Ready => {
            let body =
                serde_json::to_string(&shared.ready_json()).expect("ready json literal serializes");
            protocol::encode_response(&Response::Json(body))
        }
        Request::Stats => {
            let body =
                serde_json::to_string(&shared.stats_json()).expect("stats json literal serializes");
            protocol::encode_response(&Response::Json(body))
        }
        Request::ShardMap => {
            let body = serde_json::to_string(&shared.shard_map_json())
                .expect("shard-map json literal serializes");
            protocol::encode_response(&Response::Json(body))
        }
        Request::Reload(path) => match shared.reload(&path) {
            Ok(summary) => {
                let body = serde_json::to_string(&summary).expect("reload json literal serializes");
                protocol::encode_response(&Response::Json(body))
            }
            Err(why) => {
                shared
                    .counters
                    .reload_failures
                    .fetch_add(1, Ordering::Relaxed);
                protocol::encode_response(&Response::ServerError(why))
            }
        },
        // Acknowledged by the connection handler, which initiates the
        // shutdown only after the reply is on the wire.
        Request::Shutdown => protocol::encode_response(&Response::Empty),
    }
}

/// Serve a (possibly deadline-carrying) lookup through the batcher.
fn serve_lookup(items: Vec<u32>, deadline: Option<Instant>, shared: &Arc<Shared>) -> Vec<u8> {
    let row_len = 2 * shared.master.dim() as u32;
    // The protocol-wide MAX_LOOKUP_ITEMS was already enforced at decode
    // time, but at this serving width the response frame caps the batch
    // tighter: reject — don't build a response the framing layer could
    // never send.
    let cap = protocol::max_lookup_items_for_row_len(row_len);
    if items.len() > cap as usize {
        return protocol::encode_response(&Response::BadRequest(format!(
            "lookup of {} items exceeds the {cap}-item cap for {row_len}-float rows \
             (one response frame is capped at {} bytes)",
            items.len(),
            protocol::MAX_FRAME_LEN,
        )));
    }
    // Entity-range shards hold only a slice of the global id space. An id
    // outside this shard's range would silently degrade to the fallback
    // row, so answer with a typed redirect carrying the shard topology the
    // client needs to re-route instead.
    {
        let current = shared.holder.get();
        if let Some(snap) = current.snapshot() {
            let shard = snap.shard();
            if !shard.is_whole_table() {
                if let Some(&id) = items.iter().find(|&&id| !snap.covers(id)) {
                    return protocol::encode_response(&Response::WrongShard {
                        id,
                        shard_id: shard.shard_id,
                        n_shards: shard.n_shards,
                        row_start: shard.row_start,
                        n_rows: snap.n_rows() as u64,
                    });
                }
            }
        }
    }
    shared.counters.lookups.fetch_add(1, Ordering::Relaxed);
    match shared.batcher.submit_with_deadline(items, deadline) {
        Ok(ticket) => match ticket.wait() {
            Ok(rows) => protocol::encode_rows_response(row_len, rows.iter().map(|r| r.as_slice())),
            Err(WaitError::DeadlineExceeded(stage)) => {
                protocol::encode_response(&Response::DeadlineExceeded(stage))
            }
            Err(WaitError::Failed(why)) => protocol::encode_response(&Response::ServerError(why)),
        },
        Err(SubmitError::Overloaded) => protocol::encode_response(&Response::Overloaded),
        Err(SubmitError::DeadlineExceeded) => {
            protocol::encode_response(&Response::DeadlineExceeded(DeadlineStage::AtEnqueue))
        }
        Err(SubmitError::Stopped) => {
            protocol::encode_response(&Response::ServerError("daemon shutting down".into()))
        }
    }
}

/// Client-side failure modes, separating shed load (retryable, expected
/// under overload) from real errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The daemon's response could not be decoded.
    Protocol(ProtocolError),
    /// Admission control shed the request; retry later.
    Overloaded,
    /// The request's deadline budget expired at this stage on the daemon;
    /// it was not executed, and a retry cannot beat the same budget.
    DeadlineExceeded(DeadlineStage),
    /// The request named an entity outside the daemon's shard; re-route
    /// to the shard covering `id` (retrying here can never succeed).
    WrongShard {
        /// The first requested id outside this shard's range.
        id: u32,
        /// The responding shard's index.
        shard_id: u32,
        /// Total shards in the topology.
        n_shards: u32,
        /// First global row the responding shard covers.
        row_start: u64,
        /// Number of rows the responding shard covers.
        n_rows: u64,
    },
    /// The daemon rejected the request as malformed.
    BadRequest(String),
    /// The daemon failed internally.
    Server(String),
    /// The response did not match the request kind.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Overloaded => write!(f, "request shed (daemon overloaded)"),
            ClientError::DeadlineExceeded(stage) => {
                write!(f, "deadline exceeded ({})", stage.name())
            }
            ClientError::WrongShard {
                id,
                shard_id,
                n_shards,
                row_start,
                n_rows,
            } => write!(
                f,
                "wrong shard: id {id} is outside shard {shard_id} of {n_shards} \
                 (covers rows {row_start}..{})",
                row_start + n_rows
            ),
            ClientError::BadRequest(m) => write!(f, "bad request: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl ClientError {
    /// The typed redirect payload, when this error is a
    /// [`ClientError::WrongShard`]. The router (and any caller holding a
    /// multi-shard topology) re-routes from this instead of parsing the
    /// display string.
    pub fn wrong_shard(&self) -> Option<ShardRedirect> {
        match *self {
            ClientError::WrongShard {
                id,
                shard_id,
                n_shards,
                row_start,
                n_rows,
            } => Some(ShardRedirect {
                id,
                shard_id,
                n_shards,
                row_start,
                n_rows,
            }),
            _ => None,
        }
    }
}

/// The payload of a typed `WrongShard` redirect: which id missed, which
/// shard answered, and the row range that shard actually covers. Extracted
/// via [`ClientError::wrong_shard`] / `RetryError::wrong_shard` so callers
/// re-route without string-parsing the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRedirect {
    /// The first requested id outside the responding shard's range.
    pub id: u32,
    /// The responding shard's index.
    pub shard_id: u32,
    /// Total shards in the topology.
    pub n_shards: u32,
    /// First global row the responding shard covers.
    pub row_start: u64,
    /// Number of rows the responding shard covers.
    pub n_rows: u64,
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other),
        }
    }
}

/// Default socket read/write timeout for [`DaemonClient`] — generous next
/// to any healthy round trip, so it only fires against a wedged or
/// unresponsive daemon instead of blocking `stop`/`stats`/`reload` (and
/// the bench clients) forever.
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A failed [`DaemonClient::attempt`], tagged with whether the request
/// frame was fully written before the failure. `request_sent == false`
/// proves the daemon never saw a complete frame — the retry layer's
/// "provably unexecuted" signal for transport errors.
#[derive(Debug)]
pub struct AttemptError {
    /// What went wrong.
    pub error: ClientError,
    /// Whether the request frame was fully handed to the kernel first.
    pub request_sent: bool,
}

impl std::fmt::Display for AttemptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({})",
            self.error,
            if self.request_sent {
                "after full request write"
            } else {
                "before full request write"
            }
        )
    }
}

impl std::error::Error for AttemptError {}

/// Blocking client for the daemon protocol, one request in flight at a
/// time per connection (load generators open one per closed-loop worker).
pub struct DaemonClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl DaemonClient {
    /// Connect to a running daemon with [`DEFAULT_CLIENT_TIMEOUT`] on
    /// socket reads and writes; a daemon that stops answering surfaces as
    /// [`ClientError::Io`] instead of a hang.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Some(DEFAULT_CLIENT_TIMEOUT))
    }

    /// Connect with an explicit socket read/write timeout (`None` blocks
    /// indefinitely, the pre-timeout behaviour).
    pub fn connect_with_timeout(
        addr: &str,
        timeout: Option<Duration>,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Reset the socket read/write timeout mid-connection — the retry
    /// layer derives per-attempt timeouts from the remaining deadline
    /// budget.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        let stream = self.writer.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(())
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.attempt(req).map_err(|e| e.error)
    }

    /// One request/response exchange, reporting whether the request frame
    /// had been fully handed to the kernel when a failure struck. A
    /// write-phase failure (`request_sent == false`) means only a strict
    /// prefix of the frame could have left this process — the daemon can
    /// never assemble and execute it, so retrying cannot double-execute.
    /// Any failure after the frame was fully written is ambiguous: the
    /// daemon may have executed the request even though the response never
    /// arrived.
    pub fn attempt(&mut self, req: &Request) -> Result<Response, AttemptError> {
        if let Err(e) = protocol::write_frame(&mut self.writer, &protocol::encode_request(req)) {
            return Err(AttemptError {
                error: e.into(),
                request_sent: false,
            });
        }
        let sent = |error: ClientError| AttemptError {
            error,
            request_sent: true,
        };
        let body = match protocol::read_frame(&mut self.reader) {
            Ok(Some(body)) => body,
            Ok(None) => {
                return Err(sent(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ))))
            }
            Err(e) => return Err(sent(e.into())),
        };
        match protocol::decode_response(&body) {
            Ok(Response::Overloaded) => Err(sent(ClientError::Overloaded)),
            Ok(Response::DeadlineExceeded(stage)) => {
                Err(sent(ClientError::DeadlineExceeded(stage)))
            }
            Ok(Response::WrongShard {
                id,
                shard_id,
                n_shards,
                row_start,
                n_rows,
            }) => Err(sent(ClientError::WrongShard {
                id,
                shard_id,
                n_shards,
                row_start,
                n_rows,
            })),
            Ok(Response::BadRequest(m)) => Err(sent(ClientError::BadRequest(m))),
            Ok(Response::ServerError(m)) => Err(sent(ClientError::Server(m))),
            Ok(ok) => Ok(ok),
            Err(e) => Err(sent(e.into())),
        }
    }

    /// Condensed service vectors for `items`, in order.
    pub fn lookup(&mut self, items: &[u32]) -> Result<Vec<Vec<f32>>, ClientError> {
        match self.round_trip(&Request::Lookup(items.to_vec()))? {
            Response::Rows { rows, .. } => {
                if rows.len() == items.len() {
                    Ok(rows)
                } else {
                    Err(ClientError::Unexpected("row count mismatch"))
                }
            }
            _ => Err(ClientError::Unexpected("lookup expects rows")),
        }
    }

    /// Condensed service vectors for `items` under a deadline budget: the
    /// daemon sheds the work with a typed
    /// [`ClientError::DeadlineExceeded`] once `budget` elapses on its side.
    pub fn lookup_with_deadline(
        &mut self,
        items: &[u32],
        budget: Duration,
    ) -> Result<Vec<Vec<f32>>, ClientError> {
        let req = Request::LookupDeadline {
            budget_micros: budget.as_micros().min(u64::MAX as u128) as u64,
            items: items.to_vec(),
        };
        match self.round_trip(&req)? {
            Response::Rows { rows, .. } => {
                if rows.len() == items.len() {
                    Ok(rows)
                } else {
                    Err(ClientError::Unexpected("row count mismatch"))
                }
            }
            _ => Err(ClientError::Unexpected("lookup expects rows")),
        }
    }

    /// Liveness probe with a JSON body (uptime, restart counters).
    pub fn health(&mut self) -> Result<serde_json::Value, ClientError> {
        match self.round_trip(&Request::Health)? {
            Response::Json(json) => serde_json::from_str(&json)
                .map_err(|_| ClientError::Unexpected("health payload is not JSON")),
            _ => Err(ClientError::Unexpected("health expects json")),
        }
    }

    /// Readiness probe: `Ok(true)` only when the daemon reports it can
    /// serve a lookup right now.
    pub fn ready(&mut self) -> Result<bool, ClientError> {
        let v = self.ready_json()?;
        Ok(v.get("ready").and_then(serde_json::Value::as_bool) == Some(true))
    }

    /// Readiness probe with the individual gates (`batcher_accepting`,
    /// `swap_wedged`, …) so an operator can see *why* a daemon says no.
    pub fn ready_json(&mut self) -> Result<serde_json::Value, ClientError> {
        match self.round_trip(&Request::Ready)? {
            Response::Json(json) => serde_json::from_str(&json)
                .map_err(|_| ClientError::Unexpected("ready payload is not JSON")),
            _ => Err(ClientError::Unexpected("ready expects json")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Ping)? {
            Response::Empty => Ok(()),
            _ => Err(ClientError::Unexpected("ping expects empty ok")),
        }
    }

    /// Shard-topology query: which entity range does the daemon's live
    /// snapshot cover? The router tier builds its shard map from this.
    pub fn shard_map(&mut self) -> Result<serde_json::Value, ClientError> {
        match self.round_trip(&Request::ShardMap)? {
            Response::Json(json) => serde_json::from_str(&json)
                .map_err(|_| ClientError::Unexpected("shard-map payload is not JSON")),
            _ => Err(ClientError::Unexpected("shard-map expects json")),
        }
    }

    /// Daemon statistics.
    pub fn stats(&mut self) -> Result<serde_json::Value, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Json(json) => serde_json::from_str(&json)
                .map_err(|_| ClientError::Unexpected("stats payload is not JSON")),
            _ => Err(ClientError::Unexpected("stats expects json")),
        }
    }

    /// Hot-swap the daemon's snapshot from a daemon-local path.
    pub fn reload(&mut self, snapshot_path: &str) -> Result<serde_json::Value, ClientError> {
        match self.round_trip(&Request::Reload(snapshot_path.to_string()))? {
            Response::Json(json) => serde_json::from_str(&json)
                .map_err(|_| ClientError::Unexpected("reload payload is not JSON")),
            _ => Err(ClientError::Unexpected("reload expects json")),
        }
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Empty => Ok(()),
            _ => Err(ClientError::Unexpected("shutdown expects empty ok")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use pkgm_store::{EntityId, KeyRelationSelector, StoreBuilder};

    fn master() -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..16u32 {
            b.add_raw(i, 0, 16 + i % 3);
            b.add_raw(i, 1, 20);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..16).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 1, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(3),
        );
        KnowledgeService::new(model, sel)
    }

    #[test]
    fn holder_swap_preserves_every_stat_under_concurrent_batches() {
        // Regression test for the stats/hot-swap race: requests served
        // around repeated swaps must all land in cumulative_stats —
        // nothing lost when a retired generation's counters are folded.
        let svc = master();
        let holder = Arc::new(ServiceHolder::new(CachedService::new(svc.clone(), 64)));
        let stop = Arc::new(AtomicBool::new(false));
        const THREADS: u64 = 4;
        const ROUNDS: u64 = 200;
        const BATCH: u64 = 8;
        let total_requests = std::thread::scope(|s| {
            let swapper = {
                let holder = Arc::clone(&holder);
                let stop = Arc::clone(&stop);
                let svc = svc.clone();
                s.spawn(move || {
                    let mut swaps = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        holder.swap(CachedService::new(svc.clone(), 64));
                        swaps += 1;
                        std::thread::sleep(Duration::from_micros(300));
                    }
                    swaps
                })
            };
            let clients: Vec<_> = (0..THREADS)
                .map(|t| {
                    let holder = Arc::clone(&holder);
                    s.spawn(move || {
                        // Mix known, value-entity (degraded), and
                        // out-of-range (degraded) ids.
                        let items: Vec<EntityId> = (0..BATCH)
                            .map(|i| EntityId(((t * BATCH + i) % 24) as u32))
                            .collect();
                        for _ in 0..ROUNDS {
                            let svc = holder.get();
                            let rows = svc.condensed_service_batch(&items);
                            assert_eq!(rows.len(), items.len());
                        }
                    })
                })
                .collect();
            for c in clients {
                c.join().unwrap();
            }
            stop.store(true, Ordering::SeqCst);
            let swaps = swapper.join().unwrap();
            assert!(swaps >= 1, "swapper must complete at least one swap");
            THREADS * ROUNDS * BATCH
        });
        // One final swap quiesces and folds the last live generation too,
        // making the cumulative total exact.
        holder.swap(CachedService::new(svc, 64));
        let stats = holder.cumulative_stats();
        assert_eq!(
            stats.total_requests(),
            total_requests,
            "stats lost or duplicated across hot-swaps: {stats:?}"
        );
        assert!(stats.degraded > 0, "id mix must exercise degraded path");
    }

    #[test]
    fn cumulative_stats_are_monotone_while_swaps_race_readers() {
        // Regression test for the fold window: between installing a new
        // generation and folding the retired one's counters, a Stats
        // reader once saw totals dip (the old generation's counts were in
        // neither `folded` nor `current`). Totals must never go backwards.
        let svc = master();
        let holder = ServiceHolder::new(CachedService::new(svc.clone(), 64));
        let stop = AtomicBool::new(false);
        let samples = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let (holder, stop) = (&holder, &stop);
                s.spawn(move || {
                    let items: Vec<EntityId> =
                        (0..8).map(|i| EntityId((t * 8 + i) as u32)).collect();
                    while !stop.load(Ordering::SeqCst) {
                        let svc = holder.get();
                        let rows = svc.condensed_service_batch(&items);
                        assert_eq!(rows.len(), items.len());
                    }
                });
            }
            let reader = {
                let (holder, stop, samples) = (&holder, &stop, &samples);
                s.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let total = holder.cumulative_stats().total_requests();
                        assert!(
                            total >= last,
                            "cumulative total went backwards: {last} -> {total}"
                        );
                        last = total;
                        samples.fetch_add(1, Ordering::Relaxed);
                    }
                })
            };
            // Keep swapping until the reader has provably sampled while
            // swaps were in flight; sleep between swaps so the reader and
            // clients get scheduled even on a single-CPU host, and bound
            // by wall clock so a wedged reader cannot spin this forever.
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut swaps = 0u64;
            while (swaps < 40 || samples.load(Ordering::Relaxed) < 50) && Instant::now() < deadline
            {
                holder.swap(CachedService::new(svc.clone(), 64));
                swaps += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            stop.store(true, Ordering::SeqCst);
            reader.join().unwrap();
            assert!(
                samples.load(Ordering::Relaxed) > 0,
                "reader must sample totals"
            );
        });
    }

    #[test]
    fn daemon_rejects_mismatched_snapshot_dim_at_start() {
        let svc = master();
        let mut b = StoreBuilder::new();
        b.add_raw(0, 0, 1);
        let store = b.build();
        let other = KnowledgeService::new(
            PkgmModel::new(
                store.n_entities() as usize,
                store.n_relations() as usize,
                PkgmConfig::new(16).with_seed(1),
            ),
            KeyRelationSelector::build(&store, &[(EntityId(0), 0)], 1, 1),
        );
        let snap = ServiceSnapshot::build(&other);
        let err = Daemon::start("127.0.0.1:0", svc, Some(snap), DaemonConfig::default());
        assert!(err.is_err());
    }
}

//! Network-layer chaos battery behind `pkgm netcheck`.
//!
//! [`fault`](crate::fault) proves the *disk* recovery story; this module
//! proves the *wire* one. A deterministic in-process [`ChaosProxy`] sits
//! between a real [`DaemonClient`](crate::daemon::DaemonClient) and a real
//! [`Daemon`](crate::daemon::Daemon) and plays a scripted
//! [`NetFaultPlan`] — dropped frames, mid-frame truncations (resets),
//! delays, single-bit corruption, slowloris dribbles — keyed by frame
//! index per direction, so every scenario is reproducible from a seed.
//!
//! [`run_netcheck`] asserts the end-to-end resilience contract:
//!
//! * every lookup the client reports as *successful* is bit-exact against
//!   the snapshot — corruption is detected (CRC), never served;
//! * every failure surfaces as a *typed* error — no client panic, no
//!   daemon panic (each scenario runs under `catch_unwind`, and injected
//!   daemon-thread panics must be absorbed by the watchdog);
//! * the retry layer never re-sends a possibly-executed request, retries
//!   shed/unsent work to success, and bounds its attempts;
//! * daemon stats stay monotone while chaos rages.

use crate::daemon::{ClientError, Daemon, DaemonClient, DaemonConfig};
use crate::fault::Scenario;
use crate::model::{PkgmConfig, PkgmModel};
use crate::protocol::{ProtocolError, FRAME_FLAG_CRC, MAX_FRAME_LEN};
use crate::retry::{RetryClient, RetryPolicy};
use crate::service::KnowledgeService;
use crate::snapshot::ServiceSnapshot;
use pkgm_store::{EntityId, KeyRelationSelector, StoreBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One scripted fault, applied to a single whole frame crossing the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The frame vanishes and the connection is reset — the sender's write
    /// succeeded, the receiver never sees a byte of it.
    DropBeforeForward,
    /// Only the first `keep` bytes are forwarded, then the connection is
    /// reset mid-frame.
    TruncateForward {
        /// Bytes forwarded before the reset (clamped to the frame length).
        keep: usize,
    },
    /// The frame arrives intact but late.
    Delay {
        /// Added latency.
        millis: u64,
    },
    /// One bit past the length prefix is flipped; the frame CRC must catch
    /// it at the receiver.
    CorruptByte {
        /// Byte offset (taken modulo the post-prefix length).
        byte: usize,
        /// Bit index, masked to 0..8.
        bit: u8,
    },
    /// The frame dribbles out `chunk` bytes at a time with a pause between
    /// chunks — a slow-writer peer the receiver must tolerate.
    Slowloris {
        /// Bytes per write (min 1).
        chunk: usize,
        /// Pause between chunks.
        gap_millis: u64,
    },
}

/// A deterministic schedule of [`NetFault`]s, keyed by frame index counted
/// per direction across the proxy's lifetime (0-based; retries on fresh
/// connections keep counting, so "fault frame 0, spare frame 1" scripts a
/// fail-once-then-recover history).
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Faults on client→server frames (requests).
    up: BTreeMap<u64, NetFault>,
    /// Faults on server→client frames (responses).
    down: BTreeMap<u64, NetFault>,
}

impl NetFaultPlan {
    /// An empty plan (a faithful proxy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Script `fault` for the `nth` client→server frame.
    pub fn with_up(mut self, nth: u64, fault: NetFault) -> Self {
        self.up.insert(nth, fault);
        self
    }

    /// Script `fault` for the `nth` server→client frame.
    pub fn with_down(mut self, nth: u64, fault: NetFault) -> Self {
        self.down.insert(nth, fault);
        self
    }

    /// A seeded random plan: one fault of a random kind on a random early
    /// frame in a random direction. Same seed, same plan.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4E7C);
        let nth = rng.gen_range(0u64..3);
        let fault = match rng.gen_range(0u32..5) {
            0 => NetFault::DropBeforeForward,
            1 => NetFault::TruncateForward {
                keep: rng.gen_range(0..32),
            },
            2 => NetFault::Delay {
                millis: rng.gen_range(1..40),
            },
            3 => NetFault::CorruptByte {
                byte: rng.gen_range(0..4096),
                bit: rng.gen_range(0u32..8) as u8,
            },
            _ => NetFault::Slowloris {
                chunk: rng.gen_range(1..7),
                gap_millis: rng.gen_range(1..4),
            },
        };
        if rng.gen_bool(0.5) {
            Self::new().with_up(nth, fault)
        } else {
            Self::new().with_down(nth, fault)
        }
    }
}

/// A frame-aware TCP proxy that executes a [`NetFaultPlan`] between a real
/// client and a real daemon. Each accepted connection gets two pump
/// threads (one per direction) that read whole wire frames, consult the
/// plan by global per-direction frame index, and forward / mangle / drop
/// accordingly. Pumps die with their sockets; `shutdown` (or drop) stops
/// the acceptor.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral localhost port, forwarding to the
    /// daemon at `upstream`.
    pub fn start(upstream: &str, plan: NetFaultPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let up_plan = Arc::new(plan.up);
        let down_plan = Arc::new(plan.down);
        let up_frames = Arc::new(AtomicU64::new(0));
        let down_frames = Arc::new(AtomicU64::new(0));
        let upstream = upstream.to_string();
        let stop_flag = Arc::clone(&stop);
        let acceptor = thread::Builder::new()
            .name("pkgm-chaos-proxy".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = conn else { continue };
                    // An unreachable upstream manifests to the client as an
                    // immediate close — the connect-level fault.
                    let Ok(server) = TcpStream::connect(&upstream) else {
                        continue;
                    };
                    let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone())
                    else {
                        continue;
                    };
                    let (plan, frames) = (Arc::clone(&up_plan), Arc::clone(&up_frames));
                    thread::spawn(move || pump(client_rx, server, &plan, &frames));
                    let (plan, frames) = (Arc::clone(&down_plan), Arc::clone(&down_frames));
                    thread::spawn(move || pump(server_rx, client, &plan, &frames));
                }
            })?;
        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the acceptor. In-flight pump threads finish
    /// with their sockets.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Fill `buf` from `r`, tolerating EOF: returns how many bytes landed.
fn read_some(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(m) => n += m,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

/// One direction of one proxied connection: read whole frames from `src`,
/// apply the plan, forward to `dst`. Exiting resets both sockets so the
/// peer observes the fault promptly.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: &BTreeMap<u64, NetFault>,
    frames: &AtomicU64,
) {
    'conn: loop {
        let mut prefix = [0u8; 4];
        let got = match read_some(&mut src, &mut prefix) {
            Ok(n) => n,
            Err(_) => break,
        };
        if got == 0 {
            break; // clean close
        }
        if got < 4 {
            // Torn prefix from a dying peer: forward verbatim and close.
            let _ = dst.write_all(&prefix[..got]);
            break;
        }
        let word = u32::from_le_bytes(prefix);
        let (len, trailer) = if word & FRAME_FLAG_CRC != 0 {
            (word & !FRAME_FLAG_CRC, 4u32)
        } else {
            (word, 0u32)
        };
        if len > MAX_FRAME_LEN {
            // Garbage prefix (hostile peer): forward it for the daemon to
            // reject, then degrade to an unframed byte pipe.
            if dst.write_all(&prefix).is_err() {
                break;
            }
            let mut buf = [0u8; 4096];
            loop {
                match src.read(&mut buf) {
                    Ok(0) | Err(_) => break 'conn,
                    Ok(n) => {
                        if dst.write_all(&buf[..n]).is_err() {
                            break 'conn;
                        }
                    }
                }
            }
        }
        let body_len = (len + trailer) as usize;
        let mut frame = vec![0u8; 4 + body_len];
        frame[..4].copy_from_slice(&prefix);
        let got = match read_some(&mut src, &mut frame[4..]) {
            Ok(n) => n,
            Err(_) => break,
        };
        frame.truncate(4 + got);
        if got < body_len {
            // The sender died mid-frame on its own; pass the torn bytes on.
            let _ = dst.write_all(&frame);
            break;
        }
        let idx = frames.fetch_add(1, Ordering::SeqCst);
        match plan.get(&idx).copied() {
            None => {
                if dst.write_all(&frame).is_err() {
                    break;
                }
            }
            Some(NetFault::Delay { millis }) => {
                thread::sleep(Duration::from_millis(millis));
                if dst.write_all(&frame).is_err() {
                    break;
                }
            }
            Some(NetFault::DropBeforeForward) => break,
            Some(NetFault::TruncateForward { keep }) => {
                let keep = keep.min(frame.len());
                let _ = dst.write_all(&frame[..keep]);
                break;
            }
            Some(NetFault::CorruptByte { byte, bit }) => {
                // Flip past the prefix so the frame still routes to the CRC
                // check (prefix flips can re-route between v1/v2 framing).
                let off = 4 + byte % (frame.len() - 4);
                frame[off] ^= 1 << (bit & 7);
                if dst.write_all(&frame).is_err() {
                    break;
                }
            }
            Some(NetFault::Slowloris { chunk, gap_millis }) => {
                for piece in frame.chunks(chunk.max(1)) {
                    if dst.write_all(piece).is_err() {
                        break 'conn;
                    }
                    let _ = dst.flush();
                    thread::sleep(Duration::from_millis(gap_millis));
                }
            }
        }
        let _ = dst.flush();
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Results of the full network chaos battery.
#[derive(Debug)]
pub struct NetCheckReport {
    /// The seed the battery ran under (reproduces every scenario).
    pub seed: u64,
    /// Every scenario, in execution order.
    pub scenarios: Vec<Scenario>,
}

impl NetCheckReport {
    /// True iff every scenario passed.
    pub fn passed(&self) -> bool {
        self.scenarios.iter().all(|s| s.passed)
    }

    fn run(&mut self, name: &'static str, f: impl FnOnce() -> Result<String, String>) {
        // A panic anywhere in a scenario — client, proxy, or a daemon
        // thread surfacing through join — is itself a failed resilience
        // claim: chaos must produce typed errors, not unwinding.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let (passed, detail) = match outcome {
            Ok(Ok(summary)) => (true, summary),
            Ok(Err(why)) => (false, why),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                (false, format!("panicked: {msg}"))
            }
        };
        self.scenarios.push(Scenario {
            name,
            passed,
            detail,
        });
    }
}

const N_ITEMS: u32 = 16;
const DIM: usize = 6;

/// Deterministic toy service shared by every scenario.
fn fixture(seed: u64) -> (KnowledgeService, ServiceSnapshot) {
    let mut b = StoreBuilder::new();
    for i in 0..N_ITEMS {
        b.add_raw(i, 0, N_ITEMS + i % 3);
        b.add_raw(i, 1, N_ITEMS + 3);
    }
    let store = b.build();
    let pairs: Vec<(EntityId, u32)> = (0..N_ITEMS).map(|i| (EntityId(i), 0)).collect();
    let sel = KeyRelationSelector::build(&store, &pairs, 1, 2);
    let model = PkgmModel::new(
        store.n_entities() as usize,
        store.n_relations() as usize,
        PkgmConfig::new(DIM).with_seed(seed),
    );
    let svc = KnowledgeService::new(model, sel);
    let snap = ServiceSnapshot::build(&svc);
    (svc, snap)
}

fn start_daemon(svc: &KnowledgeService, snap: &ServiceSnapshot, cfg: DaemonConfig) -> Daemon {
    Daemon::start("127.0.0.1:0", svc.clone(), Some(snap.clone()), cfg)
        .expect("daemon binds an ephemeral port")
}

/// Assert `rows` for `items` match the snapshot bit-for-bit.
fn check_bit_exact(snap: &ServiceSnapshot, items: &[u32], rows: &[Vec<f32>]) -> Result<(), String> {
    if rows.len() != items.len() {
        return Err(format!("{} rows for {} items", rows.len(), items.len()));
    }
    let mut want = Vec::new();
    for (&id, row) in items.iter().zip(rows) {
        want.clear();
        if !snap.lookup_exact(EntityId(id), &mut want) {
            return Err(format!("item {id} missing from the snapshot"));
        }
        let got: Vec<u32> = row.iter().map(|x| x.to_bits()).collect();
        let expect: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
        if got != expect {
            return Err(format!("item {id}: served bits differ from the snapshot"));
        }
    }
    Ok(())
}

/// A quick policy for scenarios that should not retry long.
fn quick_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        budget: None,
        seed,
    }
}

/// Run the full chaos battery. Deterministic given `seed`; each scenario
/// builds its own daemon (and usually a [`ChaosProxy`] in front of it).
pub fn run_netcheck(seed: u64) -> NetCheckReport {
    let mut report = NetCheckReport {
        seed,
        scenarios: Vec::new(),
    };
    let (svc, snap) = fixture(seed);
    let items: Vec<u32> = (0..N_ITEMS).collect();

    report.run("clean-path-bit-exact", || {
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let proxy = ChaosProxy::start(&daemon.local_addr().to_string(), NetFaultPlan::new())
            .map_err(|e| format!("proxy: {e}"))?;
        let mut rc = RetryClient::new(proxy.local_addr().to_string(), quick_policy(seed));
        let rows = rc
            .lookup(&items)
            .map_err(|e| format!("clean lookup: {e}"))?;
        check_bit_exact(&snap, &items, &rows)?;
        if rc.stats().retries != 0 {
            return Err("clean path must not retry".into());
        }
        let mut direct =
            DaemonClient::connect(&daemon.local_addr().to_string()).map_err(|e| e.to_string())?;
        if !direct.ready().map_err(|e| e.to_string())? {
            return Err("fresh daemon reports not ready".into());
        }
        let health = direct.health().map_err(|e| e.to_string())?;
        if health.get("status").and_then(|v| v.as_str()) != Some("ok") {
            return Err(format!("health: {health:?}"));
        }
        proxy.shutdown();
        daemon.shutdown();
        Ok("proxied lookup bit-exact; health ok; ready".into())
    });

    report.run("delayed-frames-bit-exact", || {
        let plan = NetFaultPlan::new()
            .with_up(0, NetFault::Delay { millis: 30 })
            .with_down(0, NetFault::Delay { millis: 30 });
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let proxy = ChaosProxy::start(&daemon.local_addr().to_string(), plan)
            .map_err(|e| format!("proxy: {e}"))?;
        let mut rc = RetryClient::new(proxy.local_addr().to_string(), quick_policy(seed));
        let rows = rc
            .lookup(&items)
            .map_err(|e| format!("delayed lookup: {e}"))?;
        check_bit_exact(&snap, &items, &rows)?;
        proxy.shutdown();
        daemon.shutdown();
        Ok("60 ms of injected latency, rows still bit-exact".into())
    });

    report.run("slowloris-response-tolerated", || {
        let plan = NetFaultPlan::new().with_down(
            0,
            NetFault::Slowloris {
                chunk: 5,
                gap_millis: 2,
            },
        );
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let proxy = ChaosProxy::start(&daemon.local_addr().to_string(), plan)
            .map_err(|e| format!("proxy: {e}"))?;
        let mut rc = RetryClient::new(proxy.local_addr().to_string(), quick_policy(seed));
        let rows = rc
            .lookup(&items[..4])
            .map_err(|e| format!("slowloris lookup: {e}"))?;
        check_bit_exact(&snap, &items[..4], &rows)?;
        proxy.shutdown();
        daemon.shutdown();
        Ok("response dribbled 5 bytes at a time decodes bit-exactly".into())
    });

    report.run("corrupt-response-crc-detected", || {
        let plan = NetFaultPlan::new().with_down(0, NetFault::CorruptByte { byte: 11, bit: 3 });
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let proxy = ChaosProxy::start(&daemon.local_addr().to_string(), plan)
            .map_err(|e| format!("proxy: {e}"))?;
        let mut rc = RetryClient::new(proxy.local_addr().to_string(), quick_policy(seed));
        let err = match rc.lookup(&items) {
            Ok(_) => return Err("corrupted response must not decode as success".into()),
            Err(e) => e,
        };
        if !matches!(
            err.last,
            ClientError::Protocol(ProtocolError::CrcMismatch { .. })
        ) {
            return Err(format!("expected CrcMismatch, got {}", err.last));
        }
        if err.attempts != 1 {
            return Err(format!(
                "possibly-executed corruption was retried ({} attempts)",
                err.attempts
            ));
        }
        proxy.shutdown();
        daemon.shutdown();
        Ok("flipped response bit caught by CRC, not retried".into())
    });

    report.run("dropped-request-not-retried", || {
        let plan = NetFaultPlan::new().with_up(0, NetFault::DropBeforeForward);
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let proxy = ChaosProxy::start(&daemon.local_addr().to_string(), plan)
            .map_err(|e| format!("proxy: {e}"))?;
        let mut rc = RetryClient::new(proxy.local_addr().to_string(), quick_policy(seed));
        let err = match rc.lookup(&items) {
            Ok(_) => return Err("dropped request cannot have succeeded".into()),
            Err(e) => e,
        };
        // The full frame left the client before the proxy dropped it, so
        // the failure is ambiguous — exactly the case that must not retry.
        if err.attempts != 1 {
            return Err(format!(
                "ambiguous post-write failure was retried ({} attempts)",
                err.attempts
            ));
        }
        if rc.stats().retries != 0 {
            return Err("retry counter moved on a non-retryable failure".into());
        }
        proxy.shutdown();
        daemon.shutdown();
        Ok("request dropped after full write: typed error, zero retries".into())
    });

    report.run("truncated-response-typed", || {
        let plan = NetFaultPlan::new().with_down(0, NetFault::TruncateForward { keep: 6 });
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let proxy = ChaosProxy::start(&daemon.local_addr().to_string(), plan)
            .map_err(|e| format!("proxy: {e}"))?;
        let mut rc = RetryClient::new(proxy.local_addr().to_string(), quick_policy(seed));
        let err = match rc.lookup(&items) {
            Ok(_) => return Err("truncated response must not decode as success".into()),
            Err(e) => e,
        };
        match err.last {
            ClientError::Protocol(_) | ClientError::Io(_) => {}
            other => return Err(format!("expected a typed transport error, got {other}")),
        }
        if err.attempts != 1 {
            return Err(format!(
                "truncated response retried ({} attempts)",
                err.attempts
            ));
        }
        proxy.shutdown();
        daemon.shutdown();
        Ok("mid-frame reset surfaced as a typed error, not retried".into())
    });

    report.run("connect-refused-bounded-retries", || {
        // A port with nothing behind it: bind, learn the address, drop.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
            l.local_addr().map_err(|e| e.to_string())?.to_string()
        };
        let policy = quick_policy(seed);
        let max_retries = policy.max_retries;
        let mut rc = RetryClient::new(dead, policy);
        let started = Instant::now();
        let err = match rc.lookup(&items) {
            Ok(_) => return Err("lookup against a dead port cannot succeed".into()),
            Err(e) => e,
        };
        if err.attempts != max_retries + 1 {
            return Err(format!(
                "expected {} attempts, made {}",
                max_retries + 1,
                err.attempts
            ));
        }
        if err.reason != "retry count exhausted" {
            return Err(format!("unexpected give-up reason: {}", err.reason));
        }
        if started.elapsed() > Duration::from_secs(5) {
            return Err("bounded retries took unreasonably long".into());
        }
        Ok(format!(
            "{} attempts against a dead port, then a typed give-up",
            err.attempts
        ))
    });

    report.run("overload-shed-retry-succeeds", || {
        // One worker, a two-item queue, and a wedged first batch: fresh
        // lookups shed with Overloaded until the wedge clears, and the
        // retry layer must ride it out.
        let cfg = DaemonConfig {
            workers: 1,
            max_batch_items: 1,
            queue_capacity: 2,
            ..DaemonConfig::default()
        };
        let daemon = start_daemon(&svc, &snap, cfg);
        let addr = daemon.local_addr().to_string();
        daemon.inject_worker_wedge(Duration::from_millis(400));
        let fillers: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                let h = thread::spawn(move || {
                    let mut c = DaemonClient::connect(&addr)?;
                    c.lookup(&[i as u32]).map(|rows| rows.len())
                });
                // Stagger so the first filler wedges the worker before the
                // rest land in the queue.
                thread::sleep(Duration::from_millis(40));
                h
            })
            .collect();
        thread::sleep(Duration::from_millis(60));
        let mut rc = RetryClient::new(
            addr,
            RetryPolicy {
                max_retries: 10,
                base_backoff: Duration::from_millis(60),
                max_backoff: Duration::from_millis(500),
                budget: None,
                seed,
            },
        );
        let rows = rc
            .lookup(&items[..2])
            .map_err(|e| format!("retry under overload gave up: {e}"))?;
        check_bit_exact(&snap, &items[..2], &rows)?;
        let retries = rc.stats().retries;
        for f in fillers {
            match f.join().map_err(|_| "filler client panicked".to_string())? {
                // Fillers are raw clients racing a two-item queue: getting
                // shed themselves is legal; anything else is not.
                Ok(_) | Err(ClientError::Overloaded) => {}
                Err(e) => return Err(format!("filler lookup failed: {e}")),
            }
        }
        daemon.shutdown();
        // The shed may or may not hit depending on scheduling, but when it
        // does the result must still be bit-exact; assert the common case
        // loosely and the correctness invariant strictly (above).
        Ok(format!("recovered through {retries} retries under shed"))
    });

    report.run("deadline-zero-budget-typed", || {
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let addr = daemon.local_addr().to_string();
        // Server side: a zero budget is expired on arrival — typed shed.
        let mut direct = DaemonClient::connect(&addr).map_err(|e| e.to_string())?;
        match direct.lookup_with_deadline(&items, Duration::ZERO) {
            Err(ClientError::DeadlineExceeded(stage)) => {
                let _ = stage; // any stage is legal; AtEnqueue is typical
            }
            Ok(_) => return Err("zero-budget lookup cannot be served in time".into()),
            Err(other) => return Err(format!("expected DeadlineExceeded, got {other}")),
        }
        // Retry layer: deadline failures are final and counted.
        let mut rc = RetryClient::new(addr, quick_policy(seed));
        match rc.lookup_with_deadline(&items, Duration::ZERO) {
            Err(e) if matches!(e.last, ClientError::DeadlineExceeded(_)) => {}
            Err(e) => return Err(format!("expected DeadlineExceeded, got {}", e.last)),
            Ok(_) => return Err("zero-budget retry lookup cannot succeed".into()),
        }
        if rc.stats().deadline_misses != 1 {
            return Err(format!(
                "expected 1 deadline miss, counted {}",
                rc.stats().deadline_misses
            ));
        }
        if rc.stats().retries != 0 {
            return Err("deadline failures must not be retried".into());
        }
        daemon.shutdown();
        Ok("zero budget: typed DeadlineExceeded, no retry, counted".into())
    });

    report.run("worker-panic-recovered-by-watchdog", || {
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let addr = daemon.local_addr().to_string();
        daemon.inject_worker_panic();
        let mut client = DaemonClient::connect(&addr).map_err(|e| e.to_string())?;
        // The doomed worker dies before dequeue, so queued work survives
        // and this lookup is served by a surviving or respawned worker.
        let rows = client
            .lookup(&items)
            .map_err(|e| format!("lookup after worker panic: {e}"))?;
        check_bit_exact(&snap, &items, &rows)?;
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if daemon.restarts().0 >= 1 {
                break;
            }
            if Instant::now() > deadline {
                return Err("watchdog never recorded the worker restart".into());
            }
            thread::sleep(Duration::from_millis(10));
        }
        daemon.shutdown();
        Ok("worker panic absorbed; lookup served; restart counted".into())
    });

    report.run("accept-panic-recovered-by-watchdog", || {
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let addr = daemon.local_addr().to_string();
        daemon.inject_accept_panic();
        // The sacrificial connection kills the acceptor; its socket dies
        // with it. Keep connecting until the respawned acceptor answers.
        let _ = DaemonClient::connect(&addr).map(|mut c| c.ping());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(mut c) = DaemonClient::connect(&addr) {
                if c.ping().is_ok() {
                    break;
                }
            }
            if Instant::now() > deadline {
                return Err("daemon never accepted again after the acceptor panic".into());
            }
            thread::sleep(Duration::from_millis(10));
        }
        if daemon.restarts().1 < 1 {
            return Err("watchdog never recorded the acceptor restart".into());
        }
        daemon.shutdown();
        Ok("acceptor panic absorbed; connections accepted again".into())
    });

    report.run("seeded-random-fault-is-safe", || {
        let plan = NetFaultPlan::seeded(seed);
        let detail = format!("{plan:?}");
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let proxy = ChaosProxy::start(&daemon.local_addr().to_string(), plan)
            .map_err(|e| format!("proxy: {e}"))?;
        let mut rc = RetryClient::new(proxy.local_addr().to_string(), quick_policy(seed));
        match rc.lookup(&items) {
            // Successes must be bit-exact, failures typed — nothing else.
            Ok(rows) => check_bit_exact(&snap, &items, &rows)?,
            Err(e) => {
                let _ = e.to_string();
            }
        }
        // Whatever the proxy did, the daemon itself must still serve.
        let mut direct =
            DaemonClient::connect(&daemon.local_addr().to_string()).map_err(|e| e.to_string())?;
        let rows = direct
            .lookup(&items)
            .map_err(|e| format!("daemon unhealthy after chaos: {e}"))?;
        check_bit_exact(&snap, &items, &rows)?;
        proxy.shutdown();
        daemon.shutdown();
        Ok(format!("survived {detail}"))
    });

    report.run("stats-monotone-under-chaos", || {
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let addr = daemon.local_addr().to_string();
        let mut client = DaemonClient::connect(&addr).map_err(|e| e.to_string())?;
        let keys = [
            "lookups",
            "frames",
            "connections",
            "protocol_errors",
            "worker_restarts",
            "acceptor_restarts",
            "conns_rejected",
            "quiesce_timeouts",
        ];
        let sample = |client: &mut DaemonClient| -> Result<Vec<u64>, String> {
            let stats = client.stats().map_err(|e| e.to_string())?;
            Ok(keys
                .iter()
                .map(|k| stats.get(k).and_then(|v| v.as_u64()).unwrap_or(0))
                .collect())
        };
        let mut last = sample(&mut client)?;
        for round in 0..4u32 {
            let _ = client.lookup(&items);
            if round == 1 {
                daemon.inject_worker_panic();
            }
            if round == 2 {
                // A hostile raw stream bumps protocol_errors.
                if let Ok(mut raw) = TcpStream::connect(&addr) {
                    let _ = raw.write_all(&u32::MAX.to_le_bytes());
                }
            }
            thread::sleep(Duration::from_millis(30));
            let now = sample(&mut client)?;
            for (i, key) in keys.iter().enumerate() {
                if now[i] < last[i] {
                    return Err(format!(
                        "{key} went backwards: {} -> {} (round {round})",
                        last[i], now[i]
                    ));
                }
            }
            last = now;
        }
        daemon.shutdown();
        Ok("8 counters sampled across chaos rounds, all monotone".into())
    });

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_proxy_is_invisible() {
        let (svc, snap) = fixture(41);
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let proxy =
            ChaosProxy::start(&daemon.local_addr().to_string(), NetFaultPlan::new()).unwrap();
        let mut client = DaemonClient::connect(&proxy.local_addr().to_string()).unwrap();
        client.ping().unwrap();
        let items: Vec<u32> = (0..N_ITEMS).collect();
        let rows = client.lookup(&items).unwrap();
        check_bit_exact(&snap, &items, &rows).unwrap();
        client.shutdown().unwrap();
        proxy.shutdown();
        daemon.wait();
    }

    #[test]
    fn corrupting_proxy_yields_crc_mismatch_not_bad_rows() {
        let (svc, snap) = fixture(43);
        let daemon = start_daemon(&svc, &snap, DaemonConfig::default());
        let plan = NetFaultPlan::new().with_down(0, NetFault::CorruptByte { byte: 7, bit: 1 });
        let proxy = ChaosProxy::start(&daemon.local_addr().to_string(), plan).unwrap();
        let mut client = DaemonClient::connect(&proxy.local_addr().to_string()).unwrap();
        match client.lookup(&[0, 1, 2]) {
            Err(ClientError::Protocol(ProtocolError::CrcMismatch { .. })) => {}
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
        proxy.shutdown();
        daemon.shutdown();
        let _ = snap;
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in [1u64, 7, 99] {
            let a = format!("{:?}", NetFaultPlan::seeded(seed));
            let b = format!("{:?}", NetFaultPlan::seeded(seed));
            assert_eq!(a, b);
        }
        assert_ne!(
            format!("{:?}", NetFaultPlan::seeded(1)),
            format!("{:?}", NetFaultPlan::seeded(2))
        );
    }

    #[test]
    fn full_battery_passes() {
        let report = run_netcheck(0xC4A05);
        for s in &report.scenarios {
            assert!(s.passed, "scenario {} failed: {}", s.name, s.detail);
        }
        assert!(report.scenarios.len() >= 8);
    }
}

//! Evaluation: link prediction (the triple module's completion ability) and
//! relation-existence discrimination (the relation module's job).
//!
//! Ranking runs on the fused kernels in [`crate::eval_kernels`]
//! (candidate-blocked scans, exact early exit, relation-grouped head
//! ranking, sorted-merge filtering); the pre-kernel scan survives there as
//! `baseline_rank_*` for benchmarking, and a bit-exact `reference_rank_*`
//! twin pins the contract under the parity suite.

use crate::eval_kernels::{fused_rank_heads, fused_rank_relations, fused_rank_tails, EvalError};
use crate::model::PkgmModel;
use pkgm_store::{RelationId, Triple, TripleStore};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Link-prediction metrics (tail ranking).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkPredictionReport {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean rank (1-based).
    pub mean_rank: f64,
    /// `(k, Hits@k)` pairs in the order requested.
    pub hits: Vec<(usize, f64)>,
    /// Number of test triples ranked.
    pub n: usize,
}

impl LinkPredictionReport {
    /// Hits@k, if it was computed.
    pub fn hits_at(&self, k: usize) -> Option<f64> {
        self.hits.iter().find(|(kk, _)| *kk == k).map(|(_, v)| *v)
    }
}

/// Rank the true tail of each test triple against every entity.
///
/// Scores candidates with the triple module `‖h + r − t′‖₁` (the relation
/// module's `f_R(h,r)` is constant across tail candidates, so it cannot
/// change tail ranks). With `filter`, candidate tails that form *other* known
/// positives in the given store are skipped — the standard "filtered"
/// protocol of the KGE literature.
///
/// Errors if a test triple references an id outside the model's tables.
pub fn rank_tails(
    model: &PkgmModel,
    test: &[Triple],
    filter: Option<&TripleStore>,
    ks: &[usize],
) -> Result<LinkPredictionReport, EvalError> {
    Ok(summarize_ranks(&fused_rank_tails(model, test, filter)?, ks))
}

/// Summarize a list of 1-based ranks into MRR / mean-rank / Hits@k.
pub fn summarize_ranks(ranks: &[usize], ks: &[usize]) -> LinkPredictionReport {
    let n = ranks.len().max(1);
    let mrr = ranks.iter().map(|&r| 1.0 / r as f64).sum::<f64>() / n as f64;
    let mean_rank = ranks.iter().map(|&r| r as f64).sum::<f64>() / n as f64;
    let hits = ks
        .iter()
        .map(|&k| {
            let h = ranks.iter().filter(|&&r| r <= k).count() as f64 / n as f64;
            (k, h)
        })
        .collect();
    LinkPredictionReport {
        mrr,
        mean_rank,
        hits,
        n: ranks.len(),
    }
}

/// Rank the true head of each test triple against every entity, scoring with
/// the **joint** objective `f_T + f_R` — unlike tail ranking, `f_R(h′, r)`
/// varies across head candidates, so the relation module participates.
///
/// The fused kernel groups test triples by relation and shares each
/// candidate's `M_r·h′` projection across the group, so large head-ranking
/// sweeps cost O(|R_test|·|E|·d²) + O(|test|·|E|·d) rather than the naive
/// O(|test|·|E|·d²).
pub fn rank_heads(
    model: &PkgmModel,
    test: &[Triple],
    filter: Option<&TripleStore>,
    ks: &[usize],
) -> Result<LinkPredictionReport, EvalError> {
    Ok(summarize_ranks(&fused_rank_heads(model, test, filter)?, ks))
}

/// Rank the true relation of each test triple against every relation using
/// the joint score — the relation-query analogue of link prediction (recall
/// that the paper's Eq. 4 also corrupts relations, so the model is trained
/// for exactly this discrimination).
pub fn rank_relations(
    model: &PkgmModel,
    test: &[Triple],
    filter: Option<&TripleStore>,
    ks: &[usize],
) -> Result<LinkPredictionReport, EvalError> {
    Ok(summarize_ranks(
        &fused_rank_relations(model, test, filter)?,
        ks,
    ))
}

/// Relation-existence metrics for the relation module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelationExistenceReport {
    /// Area under the ROC curve of `−f_R` as an existence score.
    pub auc: f64,
    /// Mean `f_R` over positive `(h, r)` pairs.
    pub mean_pos_score: f64,
    /// Mean `f_R` over negative `(h, r)` pairs.
    pub mean_neg_score: f64,
    /// Number of positive/negative pairs.
    pub n_pos: usize,
    /// Number of negative pairs.
    pub n_neg: usize,
}

/// How many uniform draws the sparse-head negative sampler makes before
/// giving up on a head (the head is then skipped and the guard counter
/// still bounds total work).
const MAX_NEG_ATTEMPTS: usize = 16;

/// Evaluate how well `f_R(h,r)` separates relations an entity has from
/// relations it does not.
///
/// Positives are sampled from `(h, r)` pairs present in `store`; negatives
/// pair the same heads with relations they lack. AUC is computed exactly
/// from the rank-sum statistic.
pub fn relation_existence_auc(
    model: &PkgmModel,
    store: &TripleStore,
    n_samples: usize,
    rng: &mut impl Rng,
) -> RelationExistenceReport {
    let heads = store.head_entities();
    assert!(!heads.is_empty(), "store has no head entities");
    let n_relations = store.n_relations();

    let mut pos_scores = Vec::with_capacity(n_samples);
    let mut neg_scores = Vec::with_capacity(n_samples);
    let mut guard = 0usize;
    while pos_scores.len() < n_samples && guard < n_samples * 100 {
        guard += 1;
        let h = heads[rng.gen_range(0..heads.len())];
        let rels = store.relations_of(h);
        let missing = n_relations as usize - rels.len();
        if rels.is_empty() || missing == 0 {
            continue;
        }
        let r_pos = rels[rng.gen_range(0..rels.len())];
        // Sample a relation h does NOT have. Rejection sampling succeeds
        // with probability missing/n_relations per draw, so for dense
        // heads (few missing relations) it would spin near-forever; those
        // draw the k-th missing relation directly instead.
        let r_neg = if missing * 4 < n_relations as usize {
            Some(nth_missing_relation(rels, rng.gen_range(0..missing as u32)))
        } else {
            (0..MAX_NEG_ATTEMPTS)
                .map(|_| RelationId(rng.gen_range(0..n_relations)))
                .find(|r| rels.binary_search(r).is_err())
        };
        let Some(r_neg) = r_neg else {
            continue; // astronomically unlikely; the guard caps retries
        };
        pos_scores.push(model.score_relation(h, r_pos) as f64);
        neg_scores.push(model.score_relation(h, r_neg) as f64);
    }

    let auc = auc_lower_is_positive(&pos_scores, &neg_scores);
    RelationExistenceReport {
        auc,
        mean_pos_score: mean(&pos_scores),
        mean_neg_score: mean(&neg_scores),
        n_pos: pos_scores.len(),
        n_neg: neg_scores.len(),
    }
}

/// The `k`-th (0-based) relation id absent from the sorted id list `rels`.
/// Requires `k < n_relations − rels.len()` for the caller's relation count.
fn nth_missing_relation(rels: &[RelationId], mut k: u32) -> RelationId {
    let mut next = 0u32; // smallest id not yet accounted for
    for &r in rels {
        let gap = r.0 - next; // ids next..r.0 are all missing
        if k < gap {
            return RelationId(next + k);
        }
        k -= gap;
        next = r.0 + 1;
    }
    RelationId(next + k)
}

/// AUC where *lower* scores indicate the positive class, computed exactly
/// in O(n log n) from the Mann–Whitney rank-sum statistic with midrank tie
/// handling: sort the pooled scores, sum the positives' midranks `R⁺`,
/// then `U = R⁺ − P(P+1)/2` counts the (pos, neg) pairs where the positive
/// scored *higher* (ties ½), so `AUC = 1 − U / (P·N)`.
fn auc_lower_is_positive(pos: &[f64], neg: &[f64]) -> f64 {
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut all: Vec<(f64, bool)> = pos
        .iter()
        .map(|&s| (s, true))
        .chain(neg.iter().map(|&s| (s, false)))
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut pos_rank_sum = 0.0f64;
    let mut i = 0usize;
    while i < all.len() {
        let mut j = i + 1;
        while j < all.len() && all[j].0 == all[i].0 {
            j += 1;
        }
        // 1-based ranks i+1 ..= j share the midrank (i+1 + j)/2.
        let midrank = (i + 1 + j) as f64 / 2.0;
        let tied_pos = all[i..j].iter().filter(|&&(_, p)| p).count();
        pos_rank_sum += midrank * tied_pos as f64;
        i = j;
    }
    let p = pos.len() as f64;
    let n = neg.len() as f64;
    let u_greater = pos_rank_sum - p * (p + 1.0) / 2.0;
    1.0 - u_greater / (p * n)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PkgmConfig;
    use crate::trainer::{TrainConfig, Trainer};
    use pkgm_store::{EntityId, StoreBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn toy() -> (TripleStore, PkgmModel) {
        let mut b = StoreBuilder::new();
        // Items carry relation 0 plus *either* relation 1 or relation 2, so
        // every head has relations it lacks (needed for existence AUC).
        for i in 0..12u32 {
            b.add_raw(i, 0, 12 + i % 3);
            b.add_raw(i, 1 + i % 2, 15 + i % 2);
        }
        let store = b.build();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(16).with_seed(1),
        );
        let cfg = TrainConfig {
            lr: 0.05,
            margin: 2.0,
            batch_size: 32,
            epochs: 40,
            negatives: 2,
            seed: 1,
            normalize_entities: true,
            parallel: false,
            chunk_size: None,
        };
        Trainer::new(&model, cfg.clone()).train(&mut model, &store);
        (store, model)
    }

    #[test]
    fn summarize_ranks_formulas() {
        let r = summarize_ranks(&[1, 2, 4], &[1, 3, 10]);
        assert!((r.mrr - (1.0 + 0.5 + 0.25) / 3.0).abs() < 1e-12);
        assert!((r.mean_rank - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.hits_at(1), Some(1.0 / 3.0));
        assert_eq!(r.hits_at(3), Some(2.0 / 3.0));
        assert_eq!(r.hits_at(10), Some(1.0));
        assert_eq!(r.hits_at(5), None);
        assert_eq!(r.n, 3);
    }

    #[test]
    fn trained_model_ranks_true_tails_well() {
        let (store, model) = toy();
        let test: Vec<Triple> = store.triples().iter().copied().take(10).collect();
        let report = rank_tails(&model, &test, Some(&store), &[1, 3, 10]).unwrap();
        let random_mrr = 2.0 / store.n_entities() as f64; // generous bound
        assert!(
            report.mrr > random_mrr * 3.0,
            "mrr {} barely above random {}",
            report.mrr,
            random_mrr
        );
        assert!(report.hits_at(10).unwrap() > 0.5);
    }

    #[test]
    fn filtered_ranks_never_worse_than_raw() {
        let (store, model) = toy();
        let test: Vec<Triple> = store.triples().to_vec();
        let raw = rank_tails(&model, &test, None, &[1]).unwrap();
        let filt = rank_tails(&model, &test, Some(&store), &[1]).unwrap();
        assert!(filt.mean_rank <= raw.mean_rank + 1e-9);
        assert!(filt.mrr >= raw.mrr - 1e-9);
    }

    /// A test triple whose every competing candidate is a known positive
    /// must rank exactly 1 under the filtered protocol, whatever the
    /// embeddings say.
    #[test]
    fn rank_is_one_when_every_other_candidate_is_filtered() {
        let mut b = StoreBuilder::new();
        for c in 0..5u32 {
            b.add_raw(0, 0, c); // (0, 0, c) for every entity, incl. (0,0,0)
            b.add_raw(c, 1, 1); // (c, 1, 1) for every entity
        }
        let store = b.build();
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(6),
        );
        let tails = rank_tails(
            &model,
            &[Triple::new(EntityId(0), RelationId(0), EntityId(2))],
            Some(&store),
            &[1],
        )
        .unwrap();
        assert_eq!(tails.mean_rank, 1.0);
        assert_eq!(tails.hits_at(1), Some(1.0));
        let heads = rank_heads(
            &model,
            &[Triple::new(EntityId(3), RelationId(1), EntityId(1))],
            Some(&store),
            &[1],
        )
        .unwrap();
        assert_eq!(heads.mean_rank, 1.0);
    }

    /// An empty filter store filters nothing and must not panic.
    #[test]
    fn empty_filter_store_behaves_like_unfiltered() {
        let (store, model) = toy();
        let empty = StoreBuilder::new().build();
        let test: Vec<Triple> = store.triples().iter().copied().take(8).collect();
        for (filtered, raw) in [
            (
                rank_tails(&model, &test, Some(&empty), &[3]).unwrap(),
                rank_tails(&model, &test, None, &[3]).unwrap(),
            ),
            (
                rank_heads(&model, &test, Some(&empty), &[3]).unwrap(),
                rank_heads(&model, &test, None, &[3]).unwrap(),
            ),
            (
                rank_relations(&model, &test, Some(&empty), &[3]).unwrap(),
                rank_relations(&model, &test, None, &[3]).unwrap(),
            ),
        ] {
            assert_eq!(filtered.mean_rank, raw.mean_rank);
            assert_eq!(filtered.mrr, raw.mrr);
        }
    }

    /// Out-of-range test ids are a clean error, not a panic.
    #[test]
    fn out_of_range_test_ids_return_errors() {
        let (_, model) = toy();
        let n = model.n_entities() as u32;
        let bad = [Triple::new(EntityId(n), RelationId(0), EntityId(0))];
        assert!(rank_tails(&model, &bad, None, &[1]).is_err());
        assert!(rank_heads(&model, &bad, None, &[1]).is_err());
        assert!(rank_relations(&model, &bad, None, &[1]).is_err());
    }

    #[test]
    fn relation_existence_auc_beats_chance_after_training() {
        let (store, model) = toy();
        let mut rng = SmallRng::seed_from_u64(7);
        let report = relation_existence_auc(&model, &store, 100, &mut rng);
        assert!(report.auc > 0.6, "AUC {} ≈ chance", report.auc);
        assert!(report.mean_pos_score < report.mean_neg_score);
        assert!(report.n_pos > 0 && report.n_neg > 0);
    }

    /// A head holding all but one of many relations must not stall the
    /// negative sampler: the dense path enumerates missing relations
    /// directly instead of rejection-sampling against long odds.
    #[test]
    fn existence_auc_terminates_with_dense_heads() {
        let n_rels = 64u32;
        let mut b = StoreBuilder::new();
        for r in 0..n_rels - 1 {
            b.add_raw(0, r, 100 + r); // head 0 has 63 of the 64 relations
        }
        b.add_raw(1, n_rels - 1, 200);
        let store = b.build();
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(4).with_seed(9),
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let report = relation_existence_auc(&model, &store, 50, &mut rng);
        assert_eq!(report.n_pos, 50);
        assert_eq!(report.n_neg, 50);
    }

    #[test]
    fn nth_missing_relation_walks_gaps() {
        let rels: Vec<RelationId> = [1u32, 2, 5].iter().map(|&r| RelationId(r)).collect();
        // Missing ids (for, say, 8 relations): 0, 3, 4, 6, 7.
        for (k, want) in [(0u32, 0u32), (1, 3), (2, 4), (3, 6), (4, 7)] {
            assert_eq!(nth_missing_relation(&rels, k), RelationId(want));
        }
        assert_eq!(nth_missing_relation(&[], 3), RelationId(3));
    }

    #[test]
    fn auc_helper_is_exact() {
        assert_eq!(auc_lower_is_positive(&[0.0, 0.1], &[1.0, 2.0]), 1.0);
        assert_eq!(auc_lower_is_positive(&[3.0], &[1.0]), 0.0);
        assert_eq!(auc_lower_is_positive(&[1.0], &[1.0]), 0.5);
        assert_eq!(auc_lower_is_positive(&[], &[1.0]), 0.5);
    }

    /// The rank-sum AUC matches the O(P·N) pairwise definition on random
    /// inputs, ties included.
    #[test]
    fn auc_matches_pairwise_on_random_inputs() {
        fn pairwise(pos: &[f64], neg: &[f64]) -> f64 {
            let mut wins = 0.0f64;
            for &p in pos {
                for &n in neg {
                    if p < n {
                        wins += 1.0;
                    } else if p == n {
                        wins += 0.5;
                    }
                }
            }
            wins / (pos.len() as f64 * neg.len() as f64)
        }
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..50 {
            let np = rng.gen_range(1..40);
            let nn = rng.gen_range(1..40);
            // Coarse quantization forces plenty of exact ties.
            let draw = |rng: &mut SmallRng| (rng.gen_range(0..12) as f64) * 0.25;
            let pos: Vec<f64> = (0..np).map(|_| draw(&mut rng)).collect();
            let neg: Vec<f64> = (0..nn).map(|_| draw(&mut rng)).collect();
            let fast = auc_lower_is_positive(&pos, &neg);
            let slow = pairwise(&pos, &neg);
            assert!(
                (fast - slow).abs() < 1e-12,
                "rank-sum {fast} vs pairwise {slow} (P={np}, N={nn})"
            );
        }
    }

    #[test]
    fn head_ranking_beats_chance_after_training() {
        let (store, model) = toy();
        let test: Vec<Triple> = store.triples().iter().copied().take(10).collect();
        let report = rank_heads(&model, &test, Some(&store), &[10]).unwrap();
        // 12 items share each tail, so several heads are plausible; still the
        // true head should rank well inside the 17-entity space.
        assert!(
            report.hits_at(10).unwrap() > 0.5,
            "hits@10 {:?}",
            report.hits
        );
        assert!(report.mean_rank < store.n_entities() as f64 / 2.0);
    }

    #[test]
    fn relation_ranking_prefers_true_relation() {
        let (store, model) = toy();
        let test: Vec<Triple> = store.triples().to_vec();
        let report = rank_relations(&model, &test, Some(&store), &[1]).unwrap();
        // 3 relations → chance Hits@1 = 1/3; trained should clearly beat it.
        assert!(
            report.hits_at(1).unwrap() > 0.5,
            "relation Hits@1 {} ≈ chance",
            report.hits_at(1).unwrap()
        );
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let mut b = StoreBuilder::new();
        for i in 0..10u32 {
            b.add_raw(i, 0, 10 + i % 2);
        }
        let store = b.build();
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(2),
        );
        let test: Vec<Triple> = store.triples().to_vec();
        let report = rank_tails(&model, &test, None, &[1]).unwrap();
        // Untrained: mean rank should be in the middle of the entity range,
        // not near 1.
        assert!(report.mean_rank > 2.0);
    }
}

//! Evaluation: link prediction (the triple module's completion ability) and
//! relation-existence discrimination (the relation module's job).

use crate::model::PkgmModel;
use pkgm_store::{EntityId, RelationId, Triple, TripleStore};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Link-prediction metrics (tail ranking).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkPredictionReport {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean rank (1-based).
    pub mean_rank: f64,
    /// `(k, Hits@k)` pairs in the order requested.
    pub hits: Vec<(usize, f64)>,
    /// Number of test triples ranked.
    pub n: usize,
}

impl LinkPredictionReport {
    /// Hits@k, if it was computed.
    pub fn hits_at(&self, k: usize) -> Option<f64> {
        self.hits.iter().find(|(kk, _)| *kk == k).map(|(_, v)| *v)
    }
}

/// Rank the true tail of each test triple against every entity.
///
/// Scores candidates with the triple module `‖h + r − t′‖₁` (the relation
/// module's `f_R(h,r)` is constant across tail candidates, so it cannot
/// change tail ranks). With `filter`, candidate tails that form *other* known
/// positives in the given store are skipped — the standard "filtered"
/// protocol of the KGE literature.
pub fn rank_tails(
    model: &PkgmModel,
    test: &[Triple],
    filter: Option<&TripleStore>,
    ks: &[usize],
) -> LinkPredictionReport {
    let d = model.dim();
    let n_entities = model.n_entities();

    let ranks: Vec<usize> = test
        .par_iter()
        .map(|&t| {
            let mut base = vec![0.0f32; d];
            model.service_t_into(t.head, t.relation, &mut base);
            let true_score = l1_dist(&base, model.ent(t.tail));
            let known = filter.map(|s| s.tails(t.head, t.relation));
            // rank = 1 + number of candidates scoring strictly better.
            let mut better = 0usize;
            for c in 0..n_entities as u32 {
                if c == t.tail.0 {
                    continue;
                }
                if let Some(known) = known {
                    if known.binary_search(&EntityId(c)).is_ok() {
                        continue;
                    }
                }
                if l1_dist(&base, model.ent(EntityId(c))) < true_score {
                    better += 1;
                }
            }
            better + 1
        })
        .collect();

    summarize_ranks(&ranks, ks)
}

/// Summarize a list of 1-based ranks into MRR / mean-rank / Hits@k.
pub fn summarize_ranks(ranks: &[usize], ks: &[usize]) -> LinkPredictionReport {
    let n = ranks.len().max(1);
    let mrr = ranks.iter().map(|&r| 1.0 / r as f64).sum::<f64>() / n as f64;
    let mean_rank = ranks.iter().map(|&r| r as f64).sum::<f64>() / n as f64;
    let hits = ks
        .iter()
        .map(|&k| {
            let h = ranks.iter().filter(|&&r| r <= k).count() as f64 / n as f64;
            (k, h)
        })
        .collect();
    LinkPredictionReport {
        mrr,
        mean_rank,
        hits,
        n: ranks.len(),
    }
}

/// Rank the true head of each test triple against every entity, scoring with
/// the **joint** objective `f_T + f_R` — unlike tail ranking, `f_R(h′, r)`
/// varies across head candidates, so the relation module participates. This
/// is O(|E|·d²) per triple; use modest test sets.
pub fn rank_heads(
    model: &PkgmModel,
    test: &[Triple],
    filter: Option<&TripleStore>,
    ks: &[usize],
) -> LinkPredictionReport {
    let n_entities = model.n_entities() as u32;
    let ranks: Vec<usize> = test
        .par_iter()
        .map(|&t| {
            let true_score = model.score(t);
            let known = filter.map(|s| s.heads(t.relation, t.tail));
            let mut better = 0usize;
            for c in 0..n_entities {
                if c == t.head.0 {
                    continue;
                }
                if let Some(known) = known {
                    if known.binary_search(&EntityId(c)).is_ok() {
                        continue;
                    }
                }
                let cand = Triple::new(EntityId(c), t.relation, t.tail);
                if model.score(cand) < true_score {
                    better += 1;
                }
            }
            better + 1
        })
        .collect();
    summarize_ranks(&ranks, ks)
}

/// Rank the true relation of each test triple against every relation using
/// the joint score — the relation-query analogue of link prediction (recall
/// that the paper's Eq. 4 also corrupts relations, so the model is trained
/// for exactly this discrimination).
pub fn rank_relations(
    model: &PkgmModel,
    test: &[Triple],
    filter: Option<&TripleStore>,
    ks: &[usize],
) -> LinkPredictionReport {
    let n_relations = model.n_relations() as u32;
    let ranks: Vec<usize> = test
        .par_iter()
        .map(|&t| {
            let true_score = model.score(t);
            let mut better = 0usize;
            for c in 0..n_relations {
                if c == t.relation.0 {
                    continue;
                }
                let cand = Triple::new(t.head, RelationId(c), t.tail);
                if let Some(s) = filter {
                    if s.contains(cand) {
                        continue;
                    }
                }
                if model.score(cand) < true_score {
                    better += 1;
                }
            }
            better + 1
        })
        .collect();
    summarize_ranks(&ranks, ks)
}

/// Relation-existence metrics for the relation module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelationExistenceReport {
    /// Area under the ROC curve of `−f_R` as an existence score.
    pub auc: f64,
    /// Mean `f_R` over positive `(h, r)` pairs.
    pub mean_pos_score: f64,
    /// Mean `f_R` over negative `(h, r)` pairs.
    pub mean_neg_score: f64,
    /// Number of positive/negative pairs.
    pub n_pos: usize,
    /// Number of negative pairs.
    pub n_neg: usize,
}

/// Evaluate how well `f_R(h,r)` separates relations an entity has from
/// relations it does not.
///
/// Positives are sampled from `(h, r)` pairs present in `store`; negatives
/// pair the same heads with relations they lack. AUC is computed exactly
/// from the rank-sum statistic.
pub fn relation_existence_auc(
    model: &PkgmModel,
    store: &TripleStore,
    n_samples: usize,
    rng: &mut impl Rng,
) -> RelationExistenceReport {
    let heads = store.head_entities();
    assert!(!heads.is_empty(), "store has no head entities");
    let n_relations = store.n_relations();

    let mut pos_scores = Vec::with_capacity(n_samples);
    let mut neg_scores = Vec::with_capacity(n_samples);
    let mut guard = 0usize;
    while pos_scores.len() < n_samples && guard < n_samples * 100 {
        guard += 1;
        let h = heads[rng.gen_range(0..heads.len())];
        let rels = store.relations_of(h);
        if rels.is_empty() || rels.len() == n_relations as usize {
            continue;
        }
        let r_pos = rels[rng.gen_range(0..rels.len())];
        // sample a relation h does NOT have
        let r_neg = loop {
            let r = RelationId(rng.gen_range(0..n_relations));
            if rels.binary_search(&r).is_err() {
                break r;
            }
        };
        pos_scores.push(model.score_relation(h, r_pos) as f64);
        neg_scores.push(model.score_relation(h, r_neg) as f64);
    }

    let auc = auc_lower_is_positive(&pos_scores, &neg_scores);
    RelationExistenceReport {
        auc,
        mean_pos_score: mean(&pos_scores),
        mean_neg_score: mean(&neg_scores),
        n_pos: pos_scores.len(),
        n_neg: neg_scores.len(),
    }
}

/// AUC where *lower* scores indicate the positive class.
fn auc_lower_is_positive(pos: &[f64], neg: &[f64]) -> f64 {
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in pos {
        for &n in neg {
            if p < n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[inline]
fn l1_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PkgmConfig;
    use crate::trainer::{TrainConfig, Trainer};
    use pkgm_store::StoreBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> (TripleStore, PkgmModel) {
        let mut b = StoreBuilder::new();
        // Items carry relation 0 plus *either* relation 1 or relation 2, so
        // every head has relations it lacks (needed for existence AUC).
        for i in 0..12u32 {
            b.add_raw(i, 0, 12 + i % 3);
            b.add_raw(i, 1 + i % 2, 15 + i % 2);
        }
        let store = b.build();
        let mut model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(16).with_seed(1),
        );
        let cfg = TrainConfig {
            lr: 0.05,
            margin: 2.0,
            batch_size: 32,
            epochs: 40,
            negatives: 2,
            seed: 1,
            normalize_entities: true,
            parallel: false,
            chunk_size: None,
        };
        Trainer::new(&model, cfg.clone()).train(&mut model, &store);
        (store, model)
    }

    #[test]
    fn summarize_ranks_formulas() {
        let r = summarize_ranks(&[1, 2, 4], &[1, 3, 10]);
        assert!((r.mrr - (1.0 + 0.5 + 0.25) / 3.0).abs() < 1e-12);
        assert!((r.mean_rank - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.hits_at(1), Some(1.0 / 3.0));
        assert_eq!(r.hits_at(3), Some(2.0 / 3.0));
        assert_eq!(r.hits_at(10), Some(1.0));
        assert_eq!(r.hits_at(5), None);
        assert_eq!(r.n, 3);
    }

    #[test]
    fn trained_model_ranks_true_tails_well() {
        let (store, model) = toy();
        let test: Vec<Triple> = store.triples().iter().copied().take(10).collect();
        let report = rank_tails(&model, &test, Some(&store), &[1, 3, 10]);
        let random_mrr = 2.0 / store.n_entities() as f64; // generous bound
        assert!(
            report.mrr > random_mrr * 3.0,
            "mrr {} barely above random {}",
            report.mrr,
            random_mrr
        );
        assert!(report.hits_at(10).unwrap() > 0.5);
    }

    #[test]
    fn filtered_ranks_never_worse_than_raw() {
        let (store, model) = toy();
        let test: Vec<Triple> = store.triples().to_vec();
        let raw = rank_tails(&model, &test, None, &[1]);
        let filt = rank_tails(&model, &test, Some(&store), &[1]);
        assert!(filt.mean_rank <= raw.mean_rank + 1e-9);
        assert!(filt.mrr >= raw.mrr - 1e-9);
    }

    #[test]
    fn relation_existence_auc_beats_chance_after_training() {
        let (store, model) = toy();
        let mut rng = SmallRng::seed_from_u64(7);
        let report = relation_existence_auc(&model, &store, 100, &mut rng);
        assert!(report.auc > 0.6, "AUC {} ≈ chance", report.auc);
        assert!(report.mean_pos_score < report.mean_neg_score);
        assert!(report.n_pos > 0 && report.n_neg > 0);
    }

    #[test]
    fn auc_helper_is_exact() {
        assert_eq!(auc_lower_is_positive(&[0.0, 0.1], &[1.0, 2.0]), 1.0);
        assert_eq!(auc_lower_is_positive(&[3.0], &[1.0]), 0.0);
        assert_eq!(auc_lower_is_positive(&[1.0], &[1.0]), 0.5);
        assert_eq!(auc_lower_is_positive(&[], &[1.0]), 0.5);
    }

    #[test]
    fn head_ranking_beats_chance_after_training() {
        let (store, model) = toy();
        let test: Vec<Triple> = store.triples().iter().copied().take(10).collect();
        let report = rank_heads(&model, &test, Some(&store), &[10]);
        // 12 items share each tail, so several heads are plausible; still the
        // true head should rank well inside the 17-entity space.
        assert!(
            report.hits_at(10).unwrap() > 0.5,
            "hits@10 {:?}",
            report.hits
        );
        assert!(report.mean_rank < store.n_entities() as f64 / 2.0);
    }

    #[test]
    fn relation_ranking_prefers_true_relation() {
        let (store, model) = toy();
        let test: Vec<Triple> = store.triples().to_vec();
        let report = rank_relations(&model, &test, Some(&store), &[1]);
        // 3 relations → chance Hits@1 = 1/3; trained should clearly beat it.
        assert!(
            report.hits_at(1).unwrap() > 0.5,
            "relation Hits@1 {} ≈ chance",
            report.hits_at(1).unwrap()
        );
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let mut b = StoreBuilder::new();
        for i in 0..10u32 {
            b.add_raw(i, 0, 10 + i % 2);
        }
        let store = b.build();
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(2),
        );
        let test: Vec<Triple> = store.triples().to_vec();
        let report = rank_tails(&model, &test, None, &[1]);
        // Untrained: mean rank should be in the middle of the entity range,
        // not near 1.
        assert!(report.mean_rank > 2.0);
    }
}

//! Precomputed serving table: every entity's condensed service in one
//! contiguous block — dense `f32` or int8-quantized.
//!
//! A [`ServiceSnapshot`] trades memory (`n_entities × 2d` floats) for O(1)
//! zero-compute lookups — no matvecs, no hashing, no locks. It is the
//! deployment shape for read-only serving fleets: build once after
//! pre-training (or via `pkgm snapshot`), ship the bytes, and answer
//! condensed-service queries with a row slice.
//!
//! ## Quantized snapshots
//!
//! At the paper's scale (142.6M items × 2·64 floats ≈ 68 GiB) the dense
//! table dominates a serving host's RAM. [`ServiceSnapshot::quantize`]
//! converts the table to a [`QuantTable`] — blockwise symmetric int8 with
//! per-(row, block) scales — at ~29% of the dense bytes, keeping a small
//! set of worst-quantizing rows verbatim in f32 so no lookup degrades
//! badly. Quantized lookups dequantize deterministically
//! (`q_i · s_block`, fixed order), so a quantized snapshot serialized to
//! `PKGMSS2` and reloaded reproduces [`ServiceSnapshot::lookup_exact`]
//! outputs bit-for-bit; legacy dense `PKGMSS1` artifacts still load and
//! serve unchanged.

use std::borrow::Cow;

use crate::quant::QuantTable;
use crate::service::{KnowledgeService, ServiceScratch};
use crate::snapshot3::{MappedDense, MappedQuant};
use pkgm_store::EntityId;
use rayon::prelude::*;

/// Rows per rayon task when building the table.
const BUILD_CHUNK: usize = 128;

/// Cap on verbatim f32 rows kept by [`ServiceSnapshot::quantize`], as a
/// divisor of the row count: at most `n_rows / EXACT_ROW_DIVISOR` rows.
pub(crate) const EXACT_ROW_DIVISOR: usize = 64;

/// Rows whose measured quantization error exceeds this multiple of the
/// median row error are candidates for verbatim storage.
pub(crate) const EXACT_ERR_FACTOR: f32 = 4.0;

/// How a snapshot's row storage is held in the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotBacking {
    /// Rows decoded into owned heap memory (`PKGMSS1`/`PKGMSS2`, or a
    /// fully-validated `PKGMSS3` decode).
    Resident,
    /// Rows served zero-copy out of an [`crate::mmap::MmapRegion`] over a
    /// `PKGMSS3` file — startup cost independent of table size.
    Mapped,
}

impl SnapshotBacking {
    /// Stable lower-case label for logs and stats JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SnapshotBacking::Resident => "resident",
            SnapshotBacking::Mapped => "mapped",
        }
    }
}

/// Which contiguous entity-id range a snapshot holds: shard `shard_id`
/// of `n_shards`, covering global ids
/// `[row_start, row_start + n_rows)`. Unsharded snapshots use the
/// default `{ n_shards: 1, shard_id: 0, row_start: 0 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Total shards the table was split into (≥ 1).
    pub n_shards: u32,
    /// This file's shard index (`< n_shards`).
    pub shard_id: u32,
    /// Global entity id of this shard's first row.
    pub row_start: u64,
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self {
            n_shards: 1,
            shard_id: 0,
            row_start: 0,
        }
    }
}

impl ShardSpec {
    /// True for the unsharded whole-table spec.
    pub fn is_whole_table(&self) -> bool {
        self.n_shards == 1 && self.row_start == 0
    }
}

/// Row storage behind a snapshot: the dense f32 table or its quantized
/// form plus verbatim escape rows, each either owned (resident) or
/// served zero-copy out of a mapped `PKGMSS3` region.
#[derive(Debug, Clone)]
pub(crate) enum Storage {
    Dense(Vec<f32>),
    Quantized(QuantizedRows),
    MappedDense(MappedDense),
    MappedQuantized(MappedQuant),
}

/// Quantized condensed table plus the verbatim f32 rows kept for the
/// worst-quantizing entities.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QuantizedRows {
    quant: QuantTable,
    /// Sorted entity ids whose rows are stored verbatim (served from
    /// `exact_rows` instead of dequantization).
    exact_ids: Vec<u32>,
    /// `exact_ids.len() × 2d` verbatim rows, parallel to `exact_ids`.
    exact_rows: Vec<f32>,
}

impl QuantizedRows {
    /// Serve row `id` into `out` (exact if escaped, else dequantized).
    fn row_into(&self, id: usize, out: &mut [f32]) {
        let row_len = self.quant.row_len();
        if let Ok(e) = self.exact_ids.binary_search(&(id as u32)) {
            out.copy_from_slice(&self.exact_rows[e * row_len..(e + 1) * row_len]);
        } else {
            self.quant.dequantize_into(id, out);
        }
    }
}

/// Table of condensed service vectors, one `2d` row per entity — dense
/// f32 or int8-quantized with verbatim escape rows, resident in heap
/// memory or memory-mapped from a `PKGMSS3` file.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    dim: usize,
    k: usize,
    storage: Storage,
    /// Column-wise mean of the *served* rows (zeros for an empty table):
    /// the degraded-mode answer for ids beyond the table. Derived from
    /// `storage` for `PKGMSS1`/`PKGMSS2` loads; `PKGMSS3` stores it as a
    /// section so a mapped open never scans the table.
    fallback: Vec<f32>,
    /// Which global entity-id range this table covers.
    shard: ShardSpec,
}

/// Snapshots compare by *served content* — dim, k, shard range, fallback
/// row, and the logical row storage (dense table, or quantized parts) —
/// regardless of backing, so a mapped `PKGMSS3` equals the resident
/// snapshot it was written from.
impl PartialEq for ServiceSnapshot {
    fn eq(&self, other: &Self) -> bool {
        if self.dim != other.dim
            || self.k != other.k
            || self.shard != other.shard
            || self.fallback != other.fallback
        {
            return false;
        }
        match (self.dense_table(), other.dense_table()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => return false,
        }
        match (self.quant_slices(), other.quant_slices()) {
            (Some(a), Some(b)) => {
                a.block == b.block
                    && a.data == b.data
                    && a.scales == b.scales
                    && a.row_errs == b.row_errs
                    && a.exact_ids == b.exact_ids
                    && a.exact_rows == b.exact_rows
            }
            _ => false,
        }
    }
}

/// Raw quantized storage slices, valid for both resident and mapped
/// backings — the serialization inputs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QuantSlices<'a> {
    pub data: &'a [i8],
    pub scales: &'a [f32],
    pub row_errs: &'a [f32],
    pub block: usize,
    pub exact_ids: &'a [u32],
    pub exact_rows: &'a [f32],
}

/// Column-wise mean of a row-major table (zeros when there are no rows).
fn mean_row(rows: &[f32], row_len: usize) -> Vec<f32> {
    let mut mean = vec![0.0f32; row_len];
    let n_rows = rows.len().checked_div(row_len).unwrap_or(0);
    if n_rows == 0 {
        return mean;
    }
    for row in rows.chunks_exact(row_len) {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n_rows as f32;
    }
    mean
}

/// Column-wise mean of the rows a [`QuantizedRows`] storage *serves*
/// (dequantized or exact), in the same accumulation order as
/// [`mean_row`] — quantize-then-save and load-from-parts must both call
/// this so the fallback row reproduces bitwise.
fn mean_served_row(q: &QuantizedRows, row_len: usize) -> Vec<f32> {
    let n_rows = q.quant.n_rows();
    let mut mean = vec![0.0f32; row_len];
    if n_rows == 0 {
        return mean;
    }
    let mut row = vec![0.0f32; row_len];
    for id in 0..n_rows {
        q.row_into(id, &mut row);
        for (m, &x) in mean.iter_mut().zip(&row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n_rows as f32;
    }
    mean
}

impl ServiceSnapshot {
    /// Precompute the condensed service of every entity in `service`'s
    /// model, in parallel with per-thread scratch buffers.
    pub fn build(service: &KnowledgeService) -> Self {
        let d = service.dim();
        let row_len = 2 * d;
        let n = service.model().n_entities();
        let mut rows = vec![0.0f32; n * row_len];
        rows.par_chunks_mut(row_len * BUILD_CHUNK)
            .enumerate()
            .for_each(|(ci, block)| {
                let mut scratch = ServiceScratch::new(d);
                for (j, row) in block.chunks_mut(row_len).enumerate() {
                    let id = u32::try_from(ci * BUILD_CHUNK + j).expect("entity count fits u32");
                    service.condensed_service_into(EntityId(id), &mut scratch, row);
                }
            });
        let fallback = mean_row(&rows, row_len);
        Self {
            dim: d,
            k: service.k(),
            storage: Storage::Dense(rows),
            fallback,
            shard: ShardSpec::default(),
        }
    }

    /// Reassemble a dense snapshot from its stored parts (used by
    /// `serialize::snapshot_from_bytes` for `PKGMSS1` payloads).
    pub(crate) fn from_parts(dim: usize, k: usize, rows: Vec<f32>) -> Self {
        assert!(dim > 0, "snapshot dim must be positive");
        assert_eq!(
            rows.len() % (2 * dim),
            0,
            "snapshot table must be whole rows"
        );
        let fallback = mean_row(&rows, 2 * dim);
        Self {
            dim,
            k,
            storage: Storage::Dense(rows),
            fallback,
            shard: ShardSpec::default(),
        }
    }

    /// Reassemble a quantized snapshot from its stored parts (the
    /// `PKGMSS2` loader). Shape mismatches between the parts are reported
    /// as errors, not panics — on-disk bytes are untrusted.
    pub(crate) fn from_quantized_parts(
        dim: usize,
        k: usize,
        quant: QuantTable,
        exact_ids: Vec<u32>,
        exact_rows: Vec<f32>,
    ) -> Result<Self, String> {
        if dim == 0 {
            return Err("snapshot dim must be positive".into());
        }
        if quant.row_len() != 2 * dim {
            return Err(format!(
                "quantized rows are {} long, expected {}",
                quant.row_len(),
                2 * dim
            ));
        }
        if exact_rows.len() != exact_ids.len() * 2 * dim {
            return Err(format!(
                "expected {} exact-row floats, found {}",
                exact_ids.len() * 2 * dim,
                exact_rows.len()
            ));
        }
        if !exact_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err("exact-row ids are not strictly increasing".into());
        }
        if let Some(&last) = exact_ids.last() {
            if last as usize >= quant.n_rows() {
                return Err(format!(
                    "exact-row id {last} beyond the {}-row table",
                    quant.n_rows()
                ));
            }
        }
        let q = QuantizedRows {
            quant,
            exact_ids,
            exact_rows,
        };
        let fallback = mean_served_row(&q, 2 * dim);
        Ok(Self {
            dim,
            k,
            storage: Storage::Quantized(q),
            fallback,
            shard: ShardSpec::default(),
        })
    }

    /// Mark this snapshot as shard `shard.shard_id` of `shard.n_shards`,
    /// covering global ids `[shard.row_start, row_start + n_rows)` — the
    /// builder-side step before writing per-shard `PKGMSS3` files.
    pub fn with_shard(mut self, shard: ShardSpec) -> Result<Self, String> {
        if shard.n_shards == 0 || shard.shard_id >= shard.n_shards {
            return Err(format!(
                "invalid shard spec: shard {} of {}",
                shard.shard_id, shard.n_shards
            ));
        }
        let end = shard.row_start.checked_add(self.n_rows() as u64);
        if end.is_none_or(|e| e > u64::from(u32::MAX) + 1) {
            return Err("shard row range exceeds the u32 id space".into());
        }
        self.shard = shard;
        Ok(self)
    }

    /// Extract one entity-range shard from a whole, dense table: rows
    /// `[shard.row_start, row_start + len)` become a new dense snapshot
    /// carrying `shard`, with its fallback recomputed over the shard's
    /// own rows (matching what [`crate::Ss3DenseWriter`] stores).
    pub fn shard_slice(&self, shard: ShardSpec, len: u64) -> Result<ServiceSnapshot, String> {
        if !self.shard.is_whole_table() {
            return Err("cannot re-shard an already-sharded snapshot".into());
        }
        let table = self.dense_table().ok_or_else(|| {
            "shard_slice requires a dense table (quantize per shard after slicing)".to_string()
        })?;
        let end = shard
            .row_start
            .checked_add(len)
            .filter(|&e| e <= self.n_rows() as u64)
            .ok_or_else(|| {
                format!(
                    "shard rows {}..{:?} exceed the {}-row table",
                    shard.row_start,
                    shard.row_start.checked_add(len),
                    self.n_rows()
                )
            })?;
        if len == 0 {
            return Err("a shard must cover at least one row".into());
        }
        let row_len = 2 * self.dim;
        let rows = table[shard.row_start as usize * row_len..end as usize * row_len].to_vec();
        ServiceSnapshot::from_parts(self.dim, self.k, rows).with_shard(shard)
    }

    /// Rebind a loaded snapshot to its on-disk shard spec and stored
    /// fallback row — the `PKGMSS3` loaders use the file's fallback
    /// section verbatim so mapped and resident backings serve identical
    /// degraded-mode bytes.
    pub(crate) fn with_shard_and_fallback(mut self, shard: ShardSpec, fallback: Vec<f32>) -> Self {
        assert_eq!(fallback.len(), 2 * self.dim, "fallback must be one row");
        self.shard = shard;
        self.fallback = fallback;
        self
    }

    /// Assemble a snapshot directly from validated storage — the mapped
    /// `PKGMSS3` open path.
    pub(crate) fn from_storage(
        dim: usize,
        k: usize,
        storage: Storage,
        fallback: Vec<f32>,
        shard: ShardSpec,
    ) -> Self {
        assert_eq!(fallback.len(), 2 * dim, "fallback must be one row");
        Self {
            dim,
            k,
            storage,
            fallback,
            shard,
        }
    }

    /// The quantized form of this snapshot: the condensed table as a
    /// blockwise int8 [`QuantTable`], with the worst-quantizing rows
    /// (error > [`EXACT_ERR_FACTOR`]× the median, capped at
    /// `n_rows / `[`EXACT_ROW_DIVISOR`]) kept verbatim in f32. Already
    /// quantized snapshots are returned as-is.
    pub fn quantize(&self) -> ServiceSnapshot {
        let row_len = 2 * self.dim;
        let rows: &[f32] = match &self.storage {
            Storage::Quantized(_) | Storage::MappedQuantized(_) => return self.clone(),
            Storage::Dense(rows) => rows,
            Storage::MappedDense(m) => m.table(),
        };
        let quant = QuantTable::quantize_table(rows, row_len);
        let errs = quant.row_errs();
        let mut sorted = errs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite quant errors"));
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        let mut escapes: Vec<u32> = (0..quant.n_rows() as u32)
            .filter(|&i| errs[i as usize] > EXACT_ERR_FACTOR * median)
            .collect();
        // Worst offenders first (ties by id for determinism), capped.
        escapes.sort_by(|&a, &b| {
            errs[b as usize]
                .partial_cmp(&errs[a as usize])
                .expect("finite quant errors")
                .then(a.cmp(&b))
        });
        escapes.truncate(quant.n_rows() / EXACT_ROW_DIVISOR);
        escapes.sort_unstable();
        let mut exact_rows = Vec::with_capacity(escapes.len() * row_len);
        for &id in &escapes {
            exact_rows.extend_from_slice(&rows[id as usize * row_len..][..row_len]);
        }
        let q = QuantizedRows {
            quant,
            exact_ids: escapes,
            exact_rows,
        };
        let fallback = mean_served_row(&q, row_len);
        ServiceSnapshot {
            dim: self.dim,
            k: self.k,
            storage: Storage::Quantized(q),
            fallback,
            shard: self.shard,
        }
    }

    /// Embedding dimension `d` (rows are `2d` long).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Key relations per item the source service used.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entity rows in the table.
    pub fn n_rows(&self) -> usize {
        match &self.storage {
            Storage::Dense(rows) => rows.len() / (2 * self.dim),
            Storage::Quantized(q) => q.quant.n_rows(),
            Storage::MappedDense(m) => m.n_rows(),
            Storage::MappedQuantized(m) => m.n_rows(),
        }
    }

    /// Whether rows are stored int8-quantized.
    pub fn is_quantized(&self) -> bool {
        matches!(
            self.storage,
            Storage::Quantized(_) | Storage::MappedQuantized(_)
        )
    }

    /// How the row storage is held: [`SnapshotBacking::Resident`] heap
    /// memory or a [`SnapshotBacking::Mapped`] `PKGMSS3` region.
    pub fn backing(&self) -> SnapshotBacking {
        match &self.storage {
            Storage::Dense(_) | Storage::Quantized(_) => SnapshotBacking::Resident,
            Storage::MappedDense(_) | Storage::MappedQuantized(_) => SnapshotBacking::Mapped,
        }
    }

    /// The global entity-id range this snapshot covers.
    pub fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// True when global id `id` falls inside this snapshot's shard range
    /// `[row_start, row_start + n_rows)` — i.e. a lookup serves a real
    /// row rather than the degraded fallback.
    pub fn covers(&self, id: u32) -> bool {
        self.local_row(id).is_some()
    }

    /// Translate a global entity id to this shard's local row index.
    fn local_row(&self, id: u32) -> Option<usize> {
        let local = (id as u64).checked_sub(self.shard.row_start)?;
        if (local as usize) < self.n_rows() {
            Some(local as usize)
        } else {
            None
        }
    }

    /// Bytes of logical row storage (the `bytes_per_entity` bench basis;
    /// excludes the fallback row). For mapped backings this counts the
    /// on-disk section bytes served through the mapping, not process RSS.
    pub fn storage_bytes(&self) -> usize {
        match &self.storage {
            Storage::Dense(rows) => 4 * rows.len(),
            Storage::Quantized(q) => {
                q.quant.storage_bytes() + 4 * q.exact_ids.len() + 4 * q.exact_rows.len()
            }
            Storage::MappedDense(m) => 4 * m.table().len(),
            Storage::MappedQuantized(m) => {
                m.data().len()
                    + 4 * m.scales().len()
                    + 4 * m.row_errs().len()
                    + 4 * m.exact_ids().len()
                    + 4 * m.exact_rows_f32().len()
            }
        }
    }

    /// O(1) condensed-service lookup; `None` for ids beyond the table.
    ///
    /// Dense tables and verbatim escape rows borrow; quantized rows
    /// dequantize into an owned buffer. Allocation-sensitive callers
    /// should use [`ServiceSnapshot::lookup_exact`] with a reused buffer.
    pub fn condensed(&self, item: EntityId) -> Option<Cow<'_, [f32]>> {
        let row_len = 2 * self.dim;
        let id = self.local_row(item.0)?;
        match &self.storage {
            Storage::Dense(rows) => Some(Cow::Borrowed(&rows[id * row_len..(id + 1) * row_len])),
            Storage::MappedDense(m) => {
                Some(Cow::Borrowed(&m.table()[id * row_len..(id + 1) * row_len]))
            }
            Storage::Quantized(q) => {
                if let Ok(e) = q.exact_ids.binary_search(&(id as u32)) {
                    Some(Cow::Borrowed(&q.exact_rows[e * row_len..(e + 1) * row_len]))
                } else {
                    let mut out = vec![0.0f32; row_len];
                    q.quant.dequantize_into(id, &mut out);
                    Some(Cow::Owned(out))
                }
            }
            Storage::MappedQuantized(m) => {
                if let Ok(e) = m.exact_ids().binary_search(&(id as u32)) {
                    Some(Cow::Borrowed(
                        &m.exact_rows_f32()[e * row_len..(e + 1) * row_len],
                    ))
                } else {
                    let mut out = vec![0.0f32; row_len];
                    m.dequantize_into(id, &mut out);
                    Some(Cow::Owned(out))
                }
            }
        }
    }

    /// Degraded-mode lookup: the entity's row if the id is in range, else
    /// the table-mean [`ServiceSnapshot::fallback_row`]. The flag is `true`
    /// iff the fallback was served, so callers can count degraded answers.
    pub fn condensed_or_fallback(&self, item: EntityId) -> (Cow<'_, [f32]>, bool) {
        match self.condensed(item) {
            Some(row) => (row, false),
            None => (Cow::Borrowed(&self.fallback[..]), true),
        }
    }

    /// Allocation-free lookup into a reused buffer (resized to `2d`):
    /// writes the served row — dense, verbatim escape, or
    /// deterministically dequantized — and returns `true`; for ids beyond
    /// the table writes the fallback row and returns `false` (degraded).
    ///
    /// "Exact" is the serialization contract: the bytes written here are
    /// a pure function of the snapshot's stored parts, so a `PKGMSS2`
    /// round-trip reproduces them bit-for-bit.
    pub fn lookup_exact(&self, item: EntityId, out: &mut Vec<f32>) -> bool {
        let row_len = 2 * self.dim;
        out.resize(row_len, 0.0);
        let id = match self.local_row(item.0) {
            Some(local) => local,
            None => {
                out.copy_from_slice(&self.fallback);
                return false;
            }
        };
        match &self.storage {
            Storage::Dense(rows) => {
                out.copy_from_slice(&rows[id * row_len..(id + 1) * row_len]);
            }
            Storage::MappedDense(m) => {
                out.copy_from_slice(&m.table()[id * row_len..(id + 1) * row_len]);
            }
            Storage::Quantized(q) => q.row_into(id, out),
            Storage::MappedQuantized(m) => m.row_into(id, out),
        }
        true
    }

    /// The fallback served for out-of-range ids: the column-wise mean of
    /// every served row (all zeros for an empty table). A `2d` slice.
    pub fn fallback_row(&self) -> &[f32] {
        &self.fallback
    }

    /// The contiguous row-major f32 table (`n_rows × 2d`), when rows are
    /// stored dense (resident or mapped); `None` for quantized snapshots.
    pub fn dense_table(&self) -> Option<&[f32]> {
        match &self.storage {
            Storage::Dense(rows) => Some(rows),
            Storage::MappedDense(m) => Some(m.table()),
            Storage::Quantized(_) | Storage::MappedQuantized(_) => None,
        }
    }

    /// The resident quantized parts (table, sorted escape ids, escape
    /// rows). `None` for dense *and* for mapped-quantized storage — use
    /// [`ServiceSnapshot::quant_slices`] for backing-agnostic access.
    #[cfg(test)]
    pub(crate) fn quant_parts(&self) -> Option<(&QuantTable, &[u32], &[f32])> {
        match &self.storage {
            Storage::Quantized(q) => Some((&q.quant, &q.exact_ids, &q.exact_rows)),
            _ => None,
        }
    }

    /// Raw quantized storage slices for either backing — the `PKGMSS2`/
    /// `PKGMSS3` serialization inputs. `None` for dense storage.
    pub(crate) fn quant_slices(&self) -> Option<QuantSlices<'_>> {
        match &self.storage {
            Storage::Dense(_) | Storage::MappedDense(_) => None,
            Storage::Quantized(q) => Some(QuantSlices {
                data: q.quant.data(),
                scales: q.quant.scales(),
                row_errs: q.quant.row_errs(),
                block: q.quant.block(),
                exact_ids: &q.exact_ids,
                exact_rows: &q.exact_rows,
            }),
            Storage::MappedQuantized(m) => Some(QuantSlices {
                data: m.data(),
                scales: m.scales(),
                row_errs: m.row_errs(),
                block: m.block(),
                exact_ids: m.exact_ids(),
                exact_rows: m.exact_rows_f32(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use pkgm_store::{KeyRelationSelector, StoreBuilder};

    fn service_n(n: u32) -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..n {
            b.add_raw(i, 0, n + i % 3);
            b.add_raw(i, 1, n + 3);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..n).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 2, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(3),
        );
        KnowledgeService::new(model, sel)
    }

    fn service() -> KnowledgeService {
        service_n(6)
    }

    #[test]
    fn snapshot_rows_match_live_service() {
        let svc = service();
        let snap = ServiceSnapshot::build(&svc);
        assert_eq!(snap.n_rows(), svc.model().n_entities());
        assert_eq!(snap.dim(), svc.dim());
        assert_eq!(snap.k(), svc.k());
        assert!(!snap.is_quantized());
        for i in 0..snap.n_rows() as u32 {
            let row = snap.condensed(EntityId(i)).expect("row in range");
            assert_eq!(&row[..], svc.condensed_service(EntityId(i)).as_slice());
        }
    }

    #[test]
    fn out_of_range_lookup_is_none() {
        let snap = ServiceSnapshot::build(&service());
        assert!(snap.condensed(EntityId(snap.n_rows() as u32)).is_none());
        assert!(snap.condensed(EntityId(u32::MAX)).is_none());
    }

    #[test]
    fn fallback_is_the_mean_row_and_flags_degraded() {
        let snap = ServiceSnapshot::build(&service());
        let row_len = 2 * snap.dim();
        let n = snap.n_rows();
        let table = snap.dense_table().expect("dense snapshot");
        for i in 0..row_len {
            let expect: f32 = (0..n).map(|r| table[r * row_len + i]).sum::<f32>() / n as f32;
            assert!((snap.fallback_row()[i] - expect).abs() < 1e-6);
        }
        let (row, degraded) = snap.condensed_or_fallback(EntityId(0));
        assert!(!degraded);
        assert_eq!(
            &row[..],
            &snap.condensed(EntityId(0)).expect("in range")[..]
        );
        let (row, degraded) = snap.condensed_or_fallback(EntityId(u32::MAX));
        assert!(degraded);
        assert_eq!(&row[..], snap.fallback_row());
    }

    #[test]
    fn table_is_contiguous_row_major() {
        let svc = service();
        let snap = ServiceSnapshot::build(&svc);
        let row_len = 2 * snap.dim();
        let row2 = snap.condensed(EntityId(2)).expect("row 2");
        let table = snap.dense_table().expect("dense snapshot");
        assert_eq!(&table[2 * row_len..3 * row_len], &row2[..]);
    }

    #[test]
    fn quantized_snapshot_serves_close_rows_at_a_fraction_of_the_bytes() {
        let svc = service_n(200);
        let dense = ServiceSnapshot::build(&svc);
        let quant = dense.quantize();
        assert!(quant.is_quantized());
        assert_eq!(quant.n_rows(), dense.n_rows());
        assert_eq!(quant.dim(), dense.dim());
        assert_eq!(quant.k(), dense.k());
        assert!(
            quant.storage_bytes() * 10 <= dense.storage_bytes() * 4,
            "quantized {} B vs dense {} B",
            quant.storage_bytes(),
            dense.storage_bytes()
        );
        let (qt, ids, _) = quant.quant_parts().expect("quantized parts");
        let mut buf = Vec::new();
        for i in 0..quant.n_rows() as u32 {
            assert!(quant.lookup_exact(EntityId(i), &mut buf));
            let orig = dense.condensed(EntityId(i)).expect("dense row");
            let tol = if ids.binary_search(&i).is_ok() {
                0.0
            } else {
                qt.max_abs_err(i as usize)
            };
            for (q, o) in buf.iter().zip(&orig[..]) {
                assert!((q - o).abs() <= tol, "row {i}: |{q} - {o}| > {tol}");
            }
        }
    }

    #[test]
    fn quantize_is_idempotent_and_exact_rows_are_verbatim() {
        let svc = service_n(200);
        let quant = ServiceSnapshot::build(&svc).quantize();
        assert_eq!(quant.quantize(), quant);
        let dense = ServiceSnapshot::build(&svc);
        let (_, ids, rows) = quant.quant_parts().expect("quantized parts");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "escape ids sorted");
        let row_len = 2 * quant.dim();
        for (e, &id) in ids.iter().enumerate() {
            assert_eq!(
                &rows[e * row_len..(e + 1) * row_len],
                &dense.condensed(EntityId(id)).expect("dense row")[..]
            );
        }
    }

    #[test]
    fn quantized_lookup_exact_matches_condensed_and_flags_degraded() {
        let quant = ServiceSnapshot::build(&service_n(100)).quantize();
        let mut buf = Vec::new();
        for i in 0..quant.n_rows() as u32 {
            assert!(quant.lookup_exact(EntityId(i), &mut buf));
            let row = quant.condensed(EntityId(i)).expect("in range");
            assert_eq!(buf.as_slice(), &row[..], "row {i}");
        }
        assert!(!quant.lookup_exact(EntityId(u32::MAX), &mut buf));
        assert_eq!(buf.as_slice(), quant.fallback_row());
        assert!(quant.condensed(EntityId(u32::MAX)).is_none());
        assert!(quant.dense_table().is_none());
    }

    /// An explicitly constructed escape set: escaped rows serve the
    /// verbatim f32 bytes (borrowed), all other rows dequantize (owned).
    #[test]
    fn escape_rows_are_served_verbatim() {
        let row_len = 16;
        let rows: Vec<f32> = (0..4 * row_len).map(|i| (i as f32 * 0.37).sin()).collect();
        let qt = QuantTable::quantize_table(&rows, row_len);
        let exact_ids = vec![2u32];
        let exact_rows = rows[2 * row_len..3 * row_len].to_vec();
        let snap =
            ServiceSnapshot::from_quantized_parts(8, 2, qt.clone(), exact_ids, exact_rows).unwrap();
        let mut buf = Vec::new();
        assert!(snap.lookup_exact(EntityId(2), &mut buf));
        assert_eq!(buf.as_slice(), &rows[2 * row_len..3 * row_len]);
        match snap.condensed(EntityId(2)).expect("in range") {
            Cow::Borrowed(r) => assert_eq!(r, &rows[2 * row_len..3 * row_len]),
            Cow::Owned(_) => panic!("escape row should serve borrowed bytes"),
        }
        match snap.condensed(EntityId(1)).expect("in range") {
            Cow::Owned(r) => {
                let mut expect = vec![0.0f32; row_len];
                qt.dequantize_into(1, &mut expect);
                assert_eq!(r, expect);
            }
            Cow::Borrowed(_) => panic!("quantized row should dequantize into an owned buffer"),
        }
    }

    #[test]
    fn from_quantized_parts_rejects_broken_shapes() {
        let quant = ServiceSnapshot::build(&service_n(100)).quantize();
        let (qt, ids, rows) = quant.quant_parts().expect("quantized parts");
        let (qt, ids, rows) = (qt.clone(), ids.to_vec(), rows.to_vec());
        let d = quant.dim();
        let k = quant.k();
        let rebuilt =
            ServiceSnapshot::from_quantized_parts(d, k, qt.clone(), ids.clone(), rows.clone())
                .expect("valid parts");
        assert_eq!(rebuilt, quant);
        // Wrong dim for the quant table's row length.
        assert!(ServiceSnapshot::from_quantized_parts(
            d + 1,
            k,
            qt.clone(),
            ids.clone(),
            rows.clone()
        )
        .is_err());
        // Exact rows not matching the id count (one stray float).
        let mut stray = rows.clone();
        stray.push(0.0);
        assert!(
            ServiceSnapshot::from_quantized_parts(d, k, qt.clone(), ids.clone(), stray).is_err()
        );
        // Unsorted and out-of-range escape ids.
        if ids.len() >= 2 {
            let mut bad = ids.clone();
            bad.swap(0, 1);
            assert!(
                ServiceSnapshot::from_quantized_parts(d, k, qt.clone(), bad, rows.clone()).is_err()
            );
        }
        let bad = vec![quant.n_rows() as u32];
        let bad_rows = vec![0.0f32; 2 * d];
        assert!(ServiceSnapshot::from_quantized_parts(d, k, qt, bad, bad_rows).is_err());
    }
}

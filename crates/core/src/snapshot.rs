//! Precomputed serving table: every entity's condensed service in one
//! contiguous `f32` block.
//!
//! A [`ServiceSnapshot`] trades memory (`n_entities × 2d` floats) for O(1)
//! zero-compute lookups — no matvecs, no hashing, no locks. It is the
//! deployment shape for read-only serving fleets: build once after
//! pre-training (or via `pkgm snapshot`), ship the bytes, and answer
//! condensed-service queries with a row slice.

use crate::service::{KnowledgeService, ServiceScratch};
use pkgm_store::EntityId;
use rayon::prelude::*;

/// Rows per rayon task when building the table.
const BUILD_CHUNK: usize = 128;

/// Dense table of condensed service vectors, one `2d` row per entity.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    dim: usize,
    k: usize,
    rows: Vec<f32>,
    /// Column-wise mean of all rows (zeros for an empty table): the
    /// degraded-mode answer for ids beyond the table. Derived from `rows`,
    /// so it is recomputed on load rather than serialized.
    fallback: Vec<f32>,
}

/// Column-wise mean of a row-major table (zeros when there are no rows).
fn mean_row(rows: &[f32], row_len: usize) -> Vec<f32> {
    let mut mean = vec![0.0f32; row_len];
    let n_rows = rows.len().checked_div(row_len).unwrap_or(0);
    if n_rows == 0 {
        return mean;
    }
    for row in rows.chunks_exact(row_len) {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n_rows as f32;
    }
    mean
}

impl ServiceSnapshot {
    /// Precompute the condensed service of every entity in `service`'s
    /// model, in parallel with per-thread scratch buffers.
    pub fn build(service: &KnowledgeService) -> Self {
        let d = service.dim();
        let row_len = 2 * d;
        let n = service.model().n_entities();
        let mut rows = vec![0.0f32; n * row_len];
        rows.par_chunks_mut(row_len * BUILD_CHUNK)
            .enumerate()
            .for_each(|(ci, block)| {
                let mut scratch = ServiceScratch::new(d);
                for (j, row) in block.chunks_mut(row_len).enumerate() {
                    let id = u32::try_from(ci * BUILD_CHUNK + j).expect("entity count fits u32");
                    service.condensed_service_into(EntityId(id), &mut scratch, row);
                }
            });
        let fallback = mean_row(&rows, row_len);
        Self {
            dim: d,
            k: service.k(),
            rows,
            fallback,
        }
    }

    /// Reassemble a snapshot from its stored parts (used by
    /// `serialize::snapshot_from_bytes`).
    pub(crate) fn from_parts(dim: usize, k: usize, rows: Vec<f32>) -> Self {
        assert!(dim > 0, "snapshot dim must be positive");
        assert_eq!(
            rows.len() % (2 * dim),
            0,
            "snapshot table must be whole rows"
        );
        let fallback = mean_row(&rows, 2 * dim);
        Self {
            dim,
            k,
            rows,
            fallback,
        }
    }

    /// Embedding dimension `d` (rows are `2d` long).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Key relations per item the source service used.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entity rows in the table.
    pub fn n_rows(&self) -> usize {
        self.rows.len() / (2 * self.dim)
    }

    /// O(1) condensed-service lookup; `None` for ids beyond the table.
    pub fn condensed(&self, item: EntityId) -> Option<&[f32]> {
        let row_len = 2 * self.dim;
        let start = (item.0 as usize).checked_mul(row_len)?;
        self.rows.get(start..start + row_len)
    }

    /// Degraded-mode lookup: the entity's row if the id is in range, else
    /// the table-mean [`ServiceSnapshot::fallback_row`]. The flag is `true`
    /// iff the fallback was served, so callers can count degraded answers.
    pub fn condensed_or_fallback(&self, item: EntityId) -> (&[f32], bool) {
        match self.condensed(item) {
            Some(row) => (row, false),
            None => (&self.fallback, true),
        }
    }

    /// The fallback served for out-of-range ids: the column-wise mean of
    /// every row (all zeros for an empty table). A `2d` slice.
    pub fn fallback_row(&self) -> &[f32] {
        &self.fallback
    }

    /// The raw row-major table (`n_rows × 2d`).
    pub fn table(&self) -> &[f32] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use pkgm_store::{KeyRelationSelector, StoreBuilder};

    fn service() -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..6u32 {
            b.add_raw(i, 0, 6 + i % 3);
            b.add_raw(i, 1, 9);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..6).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 2, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(3),
        );
        KnowledgeService::new(model, sel)
    }

    #[test]
    fn snapshot_rows_match_live_service() {
        let svc = service();
        let snap = ServiceSnapshot::build(&svc);
        assert_eq!(snap.n_rows(), svc.model().n_entities());
        assert_eq!(snap.dim(), svc.dim());
        assert_eq!(snap.k(), svc.k());
        for i in 0..snap.n_rows() as u32 {
            let row = snap.condensed(EntityId(i)).expect("row in range");
            assert_eq!(row, svc.condensed_service(EntityId(i)).as_slice());
        }
    }

    #[test]
    fn out_of_range_lookup_is_none() {
        let snap = ServiceSnapshot::build(&service());
        assert!(snap.condensed(EntityId(snap.n_rows() as u32)).is_none());
        assert!(snap.condensed(EntityId(u32::MAX)).is_none());
    }

    #[test]
    fn fallback_is_the_mean_row_and_flags_degraded() {
        let snap = ServiceSnapshot::build(&service());
        let row_len = 2 * snap.dim();
        let n = snap.n_rows();
        for i in 0..row_len {
            let expect: f32 = (0..n).map(|r| snap.table()[r * row_len + i]).sum::<f32>() / n as f32;
            assert!((snap.fallback_row()[i] - expect).abs() < 1e-6);
        }
        let (row, degraded) = snap.condensed_or_fallback(EntityId(0));
        assert!(!degraded);
        assert_eq!(row, snap.condensed(EntityId(0)).expect("in range"));
        let (row, degraded) = snap.condensed_or_fallback(EntityId(u32::MAX));
        assert!(degraded);
        assert_eq!(row, snap.fallback_row());
    }

    #[test]
    fn table_is_contiguous_row_major() {
        let svc = service();
        let snap = ServiceSnapshot::build(&svc);
        let row_len = 2 * snap.dim();
        let row2 = snap.condensed(EntityId(2)).expect("row 2");
        assert_eq!(&snap.table()[2 * row_len..3 * row_len], row2);
    }
}

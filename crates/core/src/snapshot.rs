//! Precomputed serving table: every entity's condensed service in one
//! contiguous block — dense `f32` or int8-quantized.
//!
//! A [`ServiceSnapshot`] trades memory (`n_entities × 2d` floats) for O(1)
//! zero-compute lookups — no matvecs, no hashing, no locks. It is the
//! deployment shape for read-only serving fleets: build once after
//! pre-training (or via `pkgm snapshot`), ship the bytes, and answer
//! condensed-service queries with a row slice.
//!
//! ## Quantized snapshots
//!
//! At the paper's scale (142.6M items × 2·64 floats ≈ 68 GiB) the dense
//! table dominates a serving host's RAM. [`ServiceSnapshot::quantize`]
//! converts the table to a [`QuantTable`] — blockwise symmetric int8 with
//! per-(row, block) scales — at ~29% of the dense bytes, keeping a small
//! set of worst-quantizing rows verbatim in f32 so no lookup degrades
//! badly. Quantized lookups dequantize deterministically
//! (`q_i · s_block`, fixed order), so a quantized snapshot serialized to
//! `PKGMSS2` and reloaded reproduces [`ServiceSnapshot::lookup_exact`]
//! outputs bit-for-bit; legacy dense `PKGMSS1` artifacts still load and
//! serve unchanged.

use std::borrow::Cow;

use crate::quant::QuantTable;
use crate::service::{KnowledgeService, ServiceScratch};
use pkgm_store::EntityId;
use rayon::prelude::*;

/// Rows per rayon task when building the table.
const BUILD_CHUNK: usize = 128;

/// Cap on verbatim f32 rows kept by [`ServiceSnapshot::quantize`], as a
/// divisor of the row count: at most `n_rows / EXACT_ROW_DIVISOR` rows.
const EXACT_ROW_DIVISOR: usize = 64;

/// Rows whose measured quantization error exceeds this multiple of the
/// median row error are candidates for verbatim storage.
const EXACT_ERR_FACTOR: f32 = 4.0;

/// Row storage behind a snapshot: the dense f32 table or its quantized
/// form plus verbatim escape rows.
#[derive(Debug, Clone, PartialEq)]
enum Storage {
    Dense(Vec<f32>),
    Quantized(QuantizedRows),
}

/// Quantized condensed table plus the verbatim f32 rows kept for the
/// worst-quantizing entities.
#[derive(Debug, Clone, PartialEq)]
struct QuantizedRows {
    quant: QuantTable,
    /// Sorted entity ids whose rows are stored verbatim (served from
    /// `exact_rows` instead of dequantization).
    exact_ids: Vec<u32>,
    /// `exact_ids.len() × 2d` verbatim rows, parallel to `exact_ids`.
    exact_rows: Vec<f32>,
}

impl QuantizedRows {
    /// Serve row `id` into `out` (exact if escaped, else dequantized).
    fn row_into(&self, id: usize, out: &mut [f32]) {
        let row_len = self.quant.row_len();
        if let Ok(e) = self.exact_ids.binary_search(&(id as u32)) {
            out.copy_from_slice(&self.exact_rows[e * row_len..(e + 1) * row_len]);
        } else {
            self.quant.dequantize_into(id, out);
        }
    }
}

/// Table of condensed service vectors, one `2d` row per entity — dense
/// f32 or int8-quantized with verbatim escape rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    dim: usize,
    k: usize,
    storage: Storage,
    /// Column-wise mean of the *served* rows (zeros for an empty table):
    /// the degraded-mode answer for ids beyond the table. Derived from
    /// `storage`, so it is recomputed on load rather than serialized.
    fallback: Vec<f32>,
}

/// Column-wise mean of a row-major table (zeros when there are no rows).
fn mean_row(rows: &[f32], row_len: usize) -> Vec<f32> {
    let mut mean = vec![0.0f32; row_len];
    let n_rows = rows.len().checked_div(row_len).unwrap_or(0);
    if n_rows == 0 {
        return mean;
    }
    for row in rows.chunks_exact(row_len) {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n_rows as f32;
    }
    mean
}

/// Column-wise mean of the rows a [`QuantizedRows`] storage *serves*
/// (dequantized or exact), in the same accumulation order as
/// [`mean_row`] — quantize-then-save and load-from-parts must both call
/// this so the fallback row reproduces bitwise.
fn mean_served_row(q: &QuantizedRows, row_len: usize) -> Vec<f32> {
    let n_rows = q.quant.n_rows();
    let mut mean = vec![0.0f32; row_len];
    if n_rows == 0 {
        return mean;
    }
    let mut row = vec![0.0f32; row_len];
    for id in 0..n_rows {
        q.row_into(id, &mut row);
        for (m, &x) in mean.iter_mut().zip(&row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n_rows as f32;
    }
    mean
}

impl ServiceSnapshot {
    /// Precompute the condensed service of every entity in `service`'s
    /// model, in parallel with per-thread scratch buffers.
    pub fn build(service: &KnowledgeService) -> Self {
        let d = service.dim();
        let row_len = 2 * d;
        let n = service.model().n_entities();
        let mut rows = vec![0.0f32; n * row_len];
        rows.par_chunks_mut(row_len * BUILD_CHUNK)
            .enumerate()
            .for_each(|(ci, block)| {
                let mut scratch = ServiceScratch::new(d);
                for (j, row) in block.chunks_mut(row_len).enumerate() {
                    let id = u32::try_from(ci * BUILD_CHUNK + j).expect("entity count fits u32");
                    service.condensed_service_into(EntityId(id), &mut scratch, row);
                }
            });
        let fallback = mean_row(&rows, row_len);
        Self {
            dim: d,
            k: service.k(),
            storage: Storage::Dense(rows),
            fallback,
        }
    }

    /// Reassemble a dense snapshot from its stored parts (used by
    /// `serialize::snapshot_from_bytes` for `PKGMSS1` payloads).
    pub(crate) fn from_parts(dim: usize, k: usize, rows: Vec<f32>) -> Self {
        assert!(dim > 0, "snapshot dim must be positive");
        assert_eq!(
            rows.len() % (2 * dim),
            0,
            "snapshot table must be whole rows"
        );
        let fallback = mean_row(&rows, 2 * dim);
        Self {
            dim,
            k,
            storage: Storage::Dense(rows),
            fallback,
        }
    }

    /// Reassemble a quantized snapshot from its stored parts (the
    /// `PKGMSS2` loader). Shape mismatches between the parts are reported
    /// as errors, not panics — on-disk bytes are untrusted.
    pub(crate) fn from_quantized_parts(
        dim: usize,
        k: usize,
        quant: QuantTable,
        exact_ids: Vec<u32>,
        exact_rows: Vec<f32>,
    ) -> Result<Self, String> {
        if dim == 0 {
            return Err("snapshot dim must be positive".into());
        }
        if quant.row_len() != 2 * dim {
            return Err(format!(
                "quantized rows are {} long, expected {}",
                quant.row_len(),
                2 * dim
            ));
        }
        if exact_rows.len() != exact_ids.len() * 2 * dim {
            return Err(format!(
                "expected {} exact-row floats, found {}",
                exact_ids.len() * 2 * dim,
                exact_rows.len()
            ));
        }
        if !exact_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err("exact-row ids are not strictly increasing".into());
        }
        if let Some(&last) = exact_ids.last() {
            if last as usize >= quant.n_rows() {
                return Err(format!(
                    "exact-row id {last} beyond the {}-row table",
                    quant.n_rows()
                ));
            }
        }
        let q = QuantizedRows {
            quant,
            exact_ids,
            exact_rows,
        };
        let fallback = mean_served_row(&q, 2 * dim);
        Ok(Self {
            dim,
            k,
            storage: Storage::Quantized(q),
            fallback,
        })
    }

    /// The quantized form of this snapshot: the condensed table as a
    /// blockwise int8 [`QuantTable`], with the worst-quantizing rows
    /// (error > [`EXACT_ERR_FACTOR`]× the median, capped at
    /// `n_rows / `[`EXACT_ROW_DIVISOR`]) kept verbatim in f32. Already
    /// quantized snapshots are returned as-is.
    pub fn quantize(&self) -> ServiceSnapshot {
        let row_len = 2 * self.dim;
        let rows = match &self.storage {
            Storage::Quantized(_) => return self.clone(),
            Storage::Dense(rows) => rows,
        };
        let quant = QuantTable::quantize_table(rows, row_len);
        let errs = quant.row_errs();
        let mut sorted = errs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite quant errors"));
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        let mut escapes: Vec<u32> = (0..quant.n_rows() as u32)
            .filter(|&i| errs[i as usize] > EXACT_ERR_FACTOR * median)
            .collect();
        // Worst offenders first (ties by id for determinism), capped.
        escapes.sort_by(|&a, &b| {
            errs[b as usize]
                .partial_cmp(&errs[a as usize])
                .expect("finite quant errors")
                .then(a.cmp(&b))
        });
        escapes.truncate(quant.n_rows() / EXACT_ROW_DIVISOR);
        escapes.sort_unstable();
        let mut exact_rows = Vec::with_capacity(escapes.len() * row_len);
        for &id in &escapes {
            exact_rows.extend_from_slice(&rows[id as usize * row_len..][..row_len]);
        }
        let q = QuantizedRows {
            quant,
            exact_ids: escapes,
            exact_rows,
        };
        let fallback = mean_served_row(&q, row_len);
        ServiceSnapshot {
            dim: self.dim,
            k: self.k,
            storage: Storage::Quantized(q),
            fallback,
        }
    }

    /// Embedding dimension `d` (rows are `2d` long).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Key relations per item the source service used.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entity rows in the table.
    pub fn n_rows(&self) -> usize {
        match &self.storage {
            Storage::Dense(rows) => rows.len() / (2 * self.dim),
            Storage::Quantized(q) => q.quant.n_rows(),
        }
    }

    /// Whether rows are stored int8-quantized.
    pub fn is_quantized(&self) -> bool {
        matches!(self.storage, Storage::Quantized(_))
    }

    /// Bytes held by the row storage (the resident footprint the
    /// `bytes_per_entity` bench fields report; excludes the fallback row).
    pub fn storage_bytes(&self) -> usize {
        match &self.storage {
            Storage::Dense(rows) => 4 * rows.len(),
            Storage::Quantized(q) => {
                q.quant.storage_bytes() + 4 * q.exact_ids.len() + 4 * q.exact_rows.len()
            }
        }
    }

    /// O(1) condensed-service lookup; `None` for ids beyond the table.
    ///
    /// Dense tables and verbatim escape rows borrow; quantized rows
    /// dequantize into an owned buffer. Allocation-sensitive callers
    /// should use [`ServiceSnapshot::lookup_exact`] with a reused buffer.
    pub fn condensed(&self, item: EntityId) -> Option<Cow<'_, [f32]>> {
        let row_len = 2 * self.dim;
        let start = (item.0 as usize).checked_mul(row_len)?;
        match &self.storage {
            Storage::Dense(rows) => rows.get(start..start + row_len).map(Cow::Borrowed),
            Storage::Quantized(q) => {
                let id = item.0 as usize;
                if id >= q.quant.n_rows() {
                    return None;
                }
                if let Ok(e) = q.exact_ids.binary_search(&item.0) {
                    Some(Cow::Borrowed(&q.exact_rows[e * row_len..(e + 1) * row_len]))
                } else {
                    let mut out = vec![0.0f32; row_len];
                    q.quant.dequantize_into(id, &mut out);
                    Some(Cow::Owned(out))
                }
            }
        }
    }

    /// Degraded-mode lookup: the entity's row if the id is in range, else
    /// the table-mean [`ServiceSnapshot::fallback_row`]. The flag is `true`
    /// iff the fallback was served, so callers can count degraded answers.
    pub fn condensed_or_fallback(&self, item: EntityId) -> (Cow<'_, [f32]>, bool) {
        match self.condensed(item) {
            Some(row) => (row, false),
            None => (Cow::Borrowed(&self.fallback[..]), true),
        }
    }

    /// Allocation-free lookup into a reused buffer (resized to `2d`):
    /// writes the served row — dense, verbatim escape, or
    /// deterministically dequantized — and returns `true`; for ids beyond
    /// the table writes the fallback row and returns `false` (degraded).
    ///
    /// "Exact" is the serialization contract: the bytes written here are
    /// a pure function of the snapshot's stored parts, so a `PKGMSS2`
    /// round-trip reproduces them bit-for-bit.
    pub fn lookup_exact(&self, item: EntityId, out: &mut Vec<f32>) -> bool {
        let row_len = 2 * self.dim;
        out.resize(row_len, 0.0);
        let id = item.0 as usize;
        match &self.storage {
            Storage::Dense(rows) => {
                if let Some(row) =
                    (id.checked_mul(row_len)).and_then(|start| rows.get(start..start + row_len))
                {
                    out.copy_from_slice(row);
                    return true;
                }
            }
            Storage::Quantized(q) => {
                if id < q.quant.n_rows() {
                    q.row_into(id, out);
                    return true;
                }
            }
        }
        out.copy_from_slice(&self.fallback);
        false
    }

    /// The fallback served for out-of-range ids: the column-wise mean of
    /// every served row (all zeros for an empty table). A `2d` slice.
    pub fn fallback_row(&self) -> &[f32] {
        &self.fallback
    }

    /// The contiguous row-major f32 table (`n_rows × 2d`), when rows are
    /// stored dense; `None` for quantized snapshots.
    pub fn dense_table(&self) -> Option<&[f32]> {
        match &self.storage {
            Storage::Dense(rows) => Some(rows),
            Storage::Quantized(_) => None,
        }
    }

    /// The quantized parts (table, sorted escape ids, escape rows), when
    /// rows are stored quantized — the `PKGMSS2` serialization inputs.
    pub(crate) fn quant_parts(&self) -> Option<(&QuantTable, &[u32], &[f32])> {
        match &self.storage {
            Storage::Dense(_) => None,
            Storage::Quantized(q) => Some((&q.quant, &q.exact_ids, &q.exact_rows)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PkgmConfig, PkgmModel};
    use pkgm_store::{KeyRelationSelector, StoreBuilder};

    fn service_n(n: u32) -> KnowledgeService {
        let mut b = StoreBuilder::new();
        for i in 0..n {
            b.add_raw(i, 0, n + i % 3);
            b.add_raw(i, 1, n + 3);
        }
        let store = b.build();
        let pairs: Vec<(EntityId, u32)> = (0..n).map(|i| (EntityId(i), 0)).collect();
        let sel = KeyRelationSelector::build(&store, &pairs, 2, 2);
        let model = PkgmModel::new(
            store.n_entities() as usize,
            store.n_relations() as usize,
            PkgmConfig::new(8).with_seed(3),
        );
        KnowledgeService::new(model, sel)
    }

    fn service() -> KnowledgeService {
        service_n(6)
    }

    #[test]
    fn snapshot_rows_match_live_service() {
        let svc = service();
        let snap = ServiceSnapshot::build(&svc);
        assert_eq!(snap.n_rows(), svc.model().n_entities());
        assert_eq!(snap.dim(), svc.dim());
        assert_eq!(snap.k(), svc.k());
        assert!(!snap.is_quantized());
        for i in 0..snap.n_rows() as u32 {
            let row = snap.condensed(EntityId(i)).expect("row in range");
            assert_eq!(&row[..], svc.condensed_service(EntityId(i)).as_slice());
        }
    }

    #[test]
    fn out_of_range_lookup_is_none() {
        let snap = ServiceSnapshot::build(&service());
        assert!(snap.condensed(EntityId(snap.n_rows() as u32)).is_none());
        assert!(snap.condensed(EntityId(u32::MAX)).is_none());
    }

    #[test]
    fn fallback_is_the_mean_row_and_flags_degraded() {
        let snap = ServiceSnapshot::build(&service());
        let row_len = 2 * snap.dim();
        let n = snap.n_rows();
        let table = snap.dense_table().expect("dense snapshot");
        for i in 0..row_len {
            let expect: f32 = (0..n).map(|r| table[r * row_len + i]).sum::<f32>() / n as f32;
            assert!((snap.fallback_row()[i] - expect).abs() < 1e-6);
        }
        let (row, degraded) = snap.condensed_or_fallback(EntityId(0));
        assert!(!degraded);
        assert_eq!(
            &row[..],
            &snap.condensed(EntityId(0)).expect("in range")[..]
        );
        let (row, degraded) = snap.condensed_or_fallback(EntityId(u32::MAX));
        assert!(degraded);
        assert_eq!(&row[..], snap.fallback_row());
    }

    #[test]
    fn table_is_contiguous_row_major() {
        let svc = service();
        let snap = ServiceSnapshot::build(&svc);
        let row_len = 2 * snap.dim();
        let row2 = snap.condensed(EntityId(2)).expect("row 2");
        let table = snap.dense_table().expect("dense snapshot");
        assert_eq!(&table[2 * row_len..3 * row_len], &row2[..]);
    }

    #[test]
    fn quantized_snapshot_serves_close_rows_at_a_fraction_of_the_bytes() {
        let svc = service_n(200);
        let dense = ServiceSnapshot::build(&svc);
        let quant = dense.quantize();
        assert!(quant.is_quantized());
        assert_eq!(quant.n_rows(), dense.n_rows());
        assert_eq!(quant.dim(), dense.dim());
        assert_eq!(quant.k(), dense.k());
        assert!(
            quant.storage_bytes() * 10 <= dense.storage_bytes() * 4,
            "quantized {} B vs dense {} B",
            quant.storage_bytes(),
            dense.storage_bytes()
        );
        let (qt, ids, _) = quant.quant_parts().expect("quantized parts");
        let mut buf = Vec::new();
        for i in 0..quant.n_rows() as u32 {
            assert!(quant.lookup_exact(EntityId(i), &mut buf));
            let orig = dense.condensed(EntityId(i)).expect("dense row");
            let tol = if ids.binary_search(&i).is_ok() {
                0.0
            } else {
                qt.max_abs_err(i as usize)
            };
            for (q, o) in buf.iter().zip(&orig[..]) {
                assert!((q - o).abs() <= tol, "row {i}: |{q} - {o}| > {tol}");
            }
        }
    }

    #[test]
    fn quantize_is_idempotent_and_exact_rows_are_verbatim() {
        let svc = service_n(200);
        let quant = ServiceSnapshot::build(&svc).quantize();
        assert_eq!(quant.quantize(), quant);
        let dense = ServiceSnapshot::build(&svc);
        let (_, ids, rows) = quant.quant_parts().expect("quantized parts");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "escape ids sorted");
        let row_len = 2 * quant.dim();
        for (e, &id) in ids.iter().enumerate() {
            assert_eq!(
                &rows[e * row_len..(e + 1) * row_len],
                &dense.condensed(EntityId(id)).expect("dense row")[..]
            );
        }
    }

    #[test]
    fn quantized_lookup_exact_matches_condensed_and_flags_degraded() {
        let quant = ServiceSnapshot::build(&service_n(100)).quantize();
        let mut buf = Vec::new();
        for i in 0..quant.n_rows() as u32 {
            assert!(quant.lookup_exact(EntityId(i), &mut buf));
            let row = quant.condensed(EntityId(i)).expect("in range");
            assert_eq!(buf.as_slice(), &row[..], "row {i}");
        }
        assert!(!quant.lookup_exact(EntityId(u32::MAX), &mut buf));
        assert_eq!(buf.as_slice(), quant.fallback_row());
        assert!(quant.condensed(EntityId(u32::MAX)).is_none());
        assert!(quant.dense_table().is_none());
    }

    /// An explicitly constructed escape set: escaped rows serve the
    /// verbatim f32 bytes (borrowed), all other rows dequantize (owned).
    #[test]
    fn escape_rows_are_served_verbatim() {
        let row_len = 16;
        let rows: Vec<f32> = (0..4 * row_len).map(|i| (i as f32 * 0.37).sin()).collect();
        let qt = QuantTable::quantize_table(&rows, row_len);
        let exact_ids = vec![2u32];
        let exact_rows = rows[2 * row_len..3 * row_len].to_vec();
        let snap =
            ServiceSnapshot::from_quantized_parts(8, 2, qt.clone(), exact_ids, exact_rows).unwrap();
        let mut buf = Vec::new();
        assert!(snap.lookup_exact(EntityId(2), &mut buf));
        assert_eq!(buf.as_slice(), &rows[2 * row_len..3 * row_len]);
        match snap.condensed(EntityId(2)).expect("in range") {
            Cow::Borrowed(r) => assert_eq!(r, &rows[2 * row_len..3 * row_len]),
            Cow::Owned(_) => panic!("escape row should serve borrowed bytes"),
        }
        match snap.condensed(EntityId(1)).expect("in range") {
            Cow::Owned(r) => {
                let mut expect = vec![0.0f32; row_len];
                qt.dequantize_into(1, &mut expect);
                assert_eq!(r, expect);
            }
            Cow::Borrowed(_) => panic!("quantized row should dequantize into an owned buffer"),
        }
    }

    #[test]
    fn from_quantized_parts_rejects_broken_shapes() {
        let quant = ServiceSnapshot::build(&service_n(100)).quantize();
        let (qt, ids, rows) = quant.quant_parts().expect("quantized parts");
        let (qt, ids, rows) = (qt.clone(), ids.to_vec(), rows.to_vec());
        let d = quant.dim();
        let k = quant.k();
        let rebuilt =
            ServiceSnapshot::from_quantized_parts(d, k, qt.clone(), ids.clone(), rows.clone())
                .expect("valid parts");
        assert_eq!(rebuilt, quant);
        // Wrong dim for the quant table's row length.
        assert!(ServiceSnapshot::from_quantized_parts(
            d + 1,
            k,
            qt.clone(),
            ids.clone(),
            rows.clone()
        )
        .is_err());
        // Exact rows not matching the id count (one stray float).
        let mut stray = rows.clone();
        stray.push(0.0);
        assert!(
            ServiceSnapshot::from_quantized_parts(d, k, qt.clone(), ids.clone(), stray).is_err()
        );
        // Unsorted and out-of-range escape ids.
        if ids.len() >= 2 {
            let mut bad = ids.clone();
            bad.swap(0, 1);
            assert!(
                ServiceSnapshot::from_quantized_parts(d, k, qt.clone(), bad, rows.clone()).is_err()
            );
        }
        let bad = vec![quant.n_rows() as u32];
        let bad_rows = vec![0.0f32; 2 * d];
        assert!(ServiceSnapshot::from_quantized_parts(d, k, qt, bad, bad_rows).is_err());
    }
}
